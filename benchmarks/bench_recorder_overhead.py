"""Flight-recorder overhead bench: off / coarse / fine.

The recorder is an opt-in observer: with ``record_timeseries`` unset no
recorder object exists (only the legacy minimal util sampler when traces
are requested), so a plain headline run must stay within noise of the
pre-recorder wall time.  Coarse (1 ms cadence) and fine (100 us cadence)
recording quantify the opt-in cost of sampling the full standard series
set (frequency, per-core C-state, utilization, power, queues, NIC and
app counters).
"""

import statistics
import time

from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.experiments import RunSettings
from repro.metrics.report import format_table

#: Median wall time of the same macro experiment at the pre-telemetry
#: commit (e0c2572), measured on the machine that generated the committed
#: report.  Informational: re-measure when regenerating the report on
#: different hardware.
PRE_REFACTOR_BASELINE_S = 0.454


def _macro_run(record_timeseries=None):
    config = ExperimentConfig.from_settings(
        RunSettings.quick(), app="apache", policy="ncap.cons",
        target_rps=24_000.0,
    )
    t0 = time.perf_counter()
    result = run_experiment(config, record_timeseries=record_timeseries)
    elapsed = time.perf_counter() - t0
    assert result.responses_received > 0
    if record_timeseries is not None:
        assert "cpu.util" in result.timeseries
    return elapsed


def test_recorder_overhead(benchmark, save_report):
    def compute():
        off = [_macro_run() for _ in range(5)]
        coarse = [_macro_run("coarse") for _ in range(5)]
        fine = [_macro_run("fine") for _ in range(5)]
        return off, coarse, fine

    off, coarse, fine = benchmark.pedantic(compute, rounds=1, iterations=1)
    off_median = statistics.median(off)
    coarse_median = statistics.median(coarse)
    fine_median = statistics.median(fine)
    off_ratio = off_median / PRE_REFACTOR_BASELINE_S
    coarse_ratio = coarse_median / off_median
    fine_ratio = fine_median / off_median
    rows = [
        ["recorder off, median of 5 (s)", round(off_median, 3)],
        ["coarse (1 ms), median of 5 (s)", round(coarse_median, 3)],
        ["fine (100 us), median of 5 (s)", round(fine_median, 3)],
        ["pre-recorder baseline (s)", PRE_REFACTOR_BASELINE_S],
        ["disabled-path ratio vs baseline", round(off_ratio, 3)],
        ["coarse cost (coarse / off)", round(coarse_ratio, 3)],
        ["fine cost (fine / off)", round(fine_ratio, 3)],
    ]
    report = format_table(
        ["metric", "value"], rows,
        title="Flight-recorder overhead — headline, quick settings",
    )
    save_report("recorder_overhead", report)

    # Quiet-machine target for the disabled path is within noise of the
    # baseline (<= 1.03); the CI bound is generous for shared runners.
    assert off_ratio < 1.5
    # Coarse recording samples ~14 series once per simulated ms; it must
    # stay cheap enough to leave on for any figure run.
    assert coarse_ratio < 1.5
    # Fine is 10x the sampling rate; still bounded for sweep use.
    assert fine_ratio < 3.0
