"""Ablation bench: TOE slack (Section 7 of the paper).

A TCP-offload-engine NIC holds packets longer before the host sees them.
For a reactive policy that extra hold time lands directly on the response
path; NCAP overlaps it with the wake-up/boost it already issued at wire
arrival, so its latency should grow more slowly.
"""

from repro.experiments import RunSettings, ablations


def test_ablation_toe_slack(benchmark, save_report, jobs):
    points = benchmark.pedantic(
        lambda: ablations.sweep_toe_slack(settings=RunSettings.quick(), jobs=jobs),
        rounds=1,
        iterations=1,
    )
    save_report(
        "ablation_toe_slack",
        ablations.format_report(points, "Ablation — TOE hold time (rx DMA latency)"),
    )

    def p95(policy, value):
        return next(
            p.p95_ms for p in points if p.policy == policy and p.value == value
        )

    values = sorted({p.value for p in points})
    lo, hi = values[0], values[-1]
    ncap_growth = p95("ncap.cons", hi) - p95("ncap.cons", lo)
    base_growth = p95("ond.idle", hi) - p95("ond.idle", lo)
    # NCAP's latency grows no faster than the reactive baseline's as the
    # in-NIC hold time rises (it hides the extra delivery latency).
    assert ncap_growth <= base_growth + 0.5  # ms tolerance
