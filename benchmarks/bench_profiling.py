"""Profiler overhead bench: the disabled path must stay free.

The self-profiler swaps in an instrumented twin of the dispatch loop
only when attached; with ``profile=None`` the only addition to
``Simulator.run`` is one ``is None`` check per *call* (not per event).
This bench records the two acceptance measurements:

- **disabled**: headline wall time (Apache / ncap.cons @ 24K RPS, quick
  settings, no observers) against the pre-profiler baseline measured on
  the same machine at commit fb72f8f (median 0.494 s, min 0.425 s over
  7 runs).  Quiet-machine target is within 2%; the CI assert only
  catches gross regressions.
- **enabled**: the same run under the profiler — the per-handler
  attribution must telescope to the measured loop total within 1%, and
  the slowdown ratio quantifies the opt-in cost.
"""

import statistics
import time

from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.harness.settings import RunSettings
from repro.metrics.report import format_table
from repro.profiling import format_top_handlers

#: Median/min wall time of the headline quick run at the pre-profiler
#: commit (fb72f8f), measured on the machine that generated the
#: committed report.  Informational: re-measure when regenerating the
#: report on different hardware.
PRE_PROFILER_BASELINE_MEDIAN_S = 0.494
PRE_PROFILER_BASELINE_MIN_S = 0.425

_REPEATS = 5


def _headline_config():
    return ExperimentConfig.from_settings(
        RunSettings.quick(), app="apache", policy="ncap.cons",
        target_rps=24_000.0,
    )


def _timed_run(profile=None):
    t0 = time.perf_counter()
    result = run_experiment(_headline_config(), profile=profile)
    elapsed = time.perf_counter() - t0
    assert result.responses_received > 0
    return elapsed, result


def test_profiler_overhead(save_report):
    plain = [_timed_run()[0] for _ in range(_REPEATS)]
    profiled = []
    shares = []
    last_profile = None
    for _ in range(_REPEATS):
        elapsed, result = _timed_run(profile=True)
        profiled.append(elapsed)
        last_profile = result.profile
        shares.append(
            last_profile.attributed_wall_ns / last_profile.loop_wall_ns
        )

    plain_median = statistics.median(plain)
    profiled_median = statistics.median(profiled)
    disabled_ratio = plain_median / PRE_PROFILER_BASELINE_MEDIAN_S
    enabled_ratio = profiled_median / plain_median
    rows = [
        ["plain wall, median of 5 (s)", round(plain_median, 3)],
        ["plain wall, min of 5 (s)", round(min(plain), 3)],
        ["profiled wall, median of 5 (s)", round(profiled_median, 3)],
        ["pre-profiler baseline median (s)", PRE_PROFILER_BASELINE_MEDIAN_S],
        ["pre-profiler baseline min (s)", PRE_PROFILER_BASELINE_MIN_S],
        ["disabled-path ratio vs baseline", round(disabled_ratio, 3)],
        ["enabled cost (profiled / plain)", round(enabled_ratio, 3)],
        ["attributed share, worst of 5", round(min(shares), 5)],
    ]
    report = format_table(
        ["metric", "value"], rows,
        title="Profiler overhead — headline, quick settings",
    )
    report += "\n\n" + format_top_handlers(last_profile, n=10)
    save_report("profiling_overhead", report)

    # Attribution telescopes to the loop total within 1% on every run —
    # this is exact bookkeeping, not a timing property, so it holds on
    # noisy machines too.
    assert min(shares) > 0.99
    # Quiet-machine target for the disabled path is <= 1.02; the CI
    # bound is generous to tolerate shared runners.
    assert disabled_ratio < 1.5
    # The instrumented loop adds one perf_counter read + dict upkeep
    # per event; keep it cheap enough to leave on during sweeps.
    assert enabled_ratio < 2.0
