"""Telemetry overhead bench: what do disabled probes cost?

The telemetry refactor routes every hot-path event (NIC rx/tx, C-state
transitions, governor decisions, NCAP classification) through
:class:`~repro.telemetry.ProbePoint` guards and registry counters.  With
no sinks attached every probe is disabled and the guard is a single
attribute truthiness check; this bench quantifies that cost two ways:

- **micro**: ns/op for a disabled-probe guard and a registry counter
  increment, against an empty-loop floor;
- **macro**: wall time of the headline experiment (Apache / ncap.cons @
  24K RPS, quick settings) with and without the opt-in attribution and
  audit observers, measured by the ``telemetry`` bench suite — the same
  scenarios ``repro bench telemetry`` runs — against the pre-refactor
  baseline measured on the same machine at commit e0c2572
  (median 0.454 s).
"""

import time

from repro.harness import format_suite_report, run_suite, validate_bench_payload
from repro.harness.suites import TELEMETRY_SUITE
from repro.metrics.report import format_table
from repro.telemetry import StatsRegistry, Telemetry

#: Median wall time of the same macro experiment at the pre-refactor
#: commit (e0c2572), measured on the machine that generated the committed
#: report.  Informational: re-measure when regenerating the report on
#: different hardware.
PRE_REFACTOR_BASELINE_S = 0.454

_MICRO_ITERS = 1_000_000


def _time_ns_per_op(fn, iters=_MICRO_ITERS, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(iters)
        best = min(best, time.perf_counter() - t0)
    return best * 1e9 / iters


def _loop_floor(iters):
    for _ in range(iters):
        pass


def _make_probe_guard():
    probe = Telemetry().probe("bench.disabled")

    def guarded(iters):
        for _ in range(iters):
            if probe.enabled:
                raise AssertionError("probe must stay disabled")

    return guarded


def _make_counter_inc():
    counter = StatsRegistry().counter("bench.counter")

    def inc(iters):
        for _ in range(iters):
            counter.inc()

    return inc


def test_telemetry_overhead(save_report):
    floor = _time_ns_per_op(_loop_floor)
    guard = _time_ns_per_op(_make_probe_guard())
    inc = _time_ns_per_op(_make_counter_inc())

    payload = run_suite(TELEMETRY_SUITE)
    validate_bench_payload(payload)
    plain = payload["scenarios"]["headline_plain"]["wall_s"]["median"]
    attributed = payload["scenarios"]["headline_attributed"]["wall_s"]["median"]
    energy = payload["scenarios"]["headline_energy"]["wall_s"]["median"]
    off_ratio = plain / PRE_REFACTOR_BASELINE_S
    on_ratio = attributed / plain
    energy_ratio = energy / plain

    rows = [
        ["loop floor (ns/op)", round(floor, 2)],
        ["disabled probe guard (ns/op)", round(guard, 2)],
        ["guard cost over floor (ns/op)", round(guard - floor, 2)],
        ["counter.inc() (ns/op)", round(inc, 2)],
        ["headline wall, median of 5 (s)", round(plain, 3)],
        ["attributed+audited wall, median of 5 (s)", round(attributed, 3)],
        ["energy-attributed wall (no audit), median of 5 (s)", round(energy, 3)],
        ["pre-refactor baseline (s)", PRE_REFACTOR_BASELINE_S],
        ["disabled-path ratio vs baseline", round(off_ratio, 3)],
        ["enabled cost (attributed / plain)", round(on_ratio, 3)],
        ["enabled cost (energy / plain)", round(energy_ratio, 3)],
    ]
    report = format_table(
        ["metric", "value"], rows,
        title="Telemetry overhead — headline, quick settings",
    )
    save_report("telemetry_overhead", report)
    save_report("attribution_overhead", format_suite_report(payload))

    # The guard is a single attribute check: it must stay within a few ns
    # of the empty loop, far under one counter increment.
    assert guard - floor < 100.0
    # Generous wall-clock bounds: the <5% disabled-path acceptance check
    # is done on a quiet machine when regenerating the report; CI
    # machines only need to catch gross regressions.  Opt-in attribution
    # + audit does real per-request work; keep it under a small multiple
    # so it stays usable in sweeps.
    assert off_ratio < 1.5
    assert on_ratio < 3.0
    # Energy attribution is per-idle-exit dict deltas — much lighter than
    # per-request attribution; the on-path must stay under 1.3x plain
    # (the off-path shares headline_plain: the observer is never built).
    assert energy_ratio < 1.3
