"""Telemetry overhead bench: what do disabled probes cost?

The telemetry refactor routes every hot-path event (NIC rx/tx, C-state
transitions, governor decisions, NCAP classification) through
:class:`~repro.telemetry.ProbePoint` guards and registry counters.  With
no sinks attached every probe is disabled and the guard is a single
attribute truthiness check; this bench quantifies that cost two ways:

- **micro**: ns/op for a disabled-probe guard and a registry counter
  increment, against an empty-loop floor;
- **macro**: wall time of the headline experiment (Apache / ncap.cons @
  24K RPS, quick settings, no sinks), against the pre-refactor baseline
  measured on the same machine at commit e0c2572 (median 0.454 s).
"""

import statistics
import time

from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.experiments import RunSettings
from repro.metrics.report import format_table
from repro.telemetry import StatsRegistry, Telemetry

#: Median wall time of the same macro experiment at the pre-refactor
#: commit (e0c2572), measured on the machine that generated the committed
#: report.  Informational: re-measure when regenerating the report on
#: different hardware.
PRE_REFACTOR_BASELINE_S = 0.454

_MICRO_ITERS = 1_000_000


def _time_ns_per_op(fn, iters=_MICRO_ITERS, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(iters)
        best = min(best, time.perf_counter() - t0)
    return best * 1e9 / iters


def _loop_floor(iters):
    for _ in range(iters):
        pass


def _make_probe_guard():
    probe = Telemetry().probe("bench.disabled")

    def guarded(iters):
        for _ in range(iters):
            if probe.enabled:
                raise AssertionError("probe must stay disabled")

    return guarded


def _make_counter_inc():
    counter = StatsRegistry().counter("bench.counter")

    def inc(iters):
        for _ in range(iters):
            counter.inc()

    return inc


def _macro_run(sinks=None, audit=False):
    config = ExperimentConfig.from_settings(
        RunSettings.quick(), app="apache", policy="ncap.cons",
        target_rps=24_000.0,
    )
    t0 = time.perf_counter()
    result = run_experiment(config, sinks=sinks, audit=audit)
    elapsed = time.perf_counter() - t0
    assert result.responses_received > 0
    return elapsed


def test_disabled_probe_overhead(benchmark, save_report):
    def compute():
        floor = _time_ns_per_op(_loop_floor)
        guard = _time_ns_per_op(_make_probe_guard())
        inc = _time_ns_per_op(_make_counter_inc())
        walls = [_macro_run() for _ in range(5)]
        return floor, guard, inc, walls

    floor, guard, inc, walls = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    median_wall = statistics.median(walls)
    ratio = median_wall / PRE_REFACTOR_BASELINE_S
    rows = [
        ["loop floor (ns/op)", round(floor, 2)],
        ["disabled probe guard (ns/op)", round(guard, 2)],
        ["guard cost over floor (ns/op)", round(guard - floor, 2)],
        ["counter.inc() (ns/op)", round(inc, 2)],
        ["headline wall, median of 5 (s)", round(median_wall, 3)],
        ["pre-refactor baseline (s)", PRE_REFACTOR_BASELINE_S],
        ["wall ratio vs baseline", round(ratio, 3)],
    ]
    report = format_table(
        ["metric", "value"], rows,
        title="Telemetry overhead — disabled probes (no sinks attached)",
    )
    save_report("telemetry_overhead", report)

    # The guard is a single attribute check: it must stay within a few ns
    # of the empty loop, far under one counter increment.
    assert guard - floor < 100.0
    # Generous wall-clock bound: the <5% acceptance check is done on a
    # quiet machine when regenerating the report; CI machines only need
    # to catch gross regressions.
    assert ratio < 1.5


def test_attribution_overhead(benchmark, save_report):
    """Attribution/audit off must cost nothing; on-cost is reported.

    The attribution engine added probe emissions on the request hot path
    (``request.span``, ``request.account``).  With no sink attached they
    are disabled-guard checks, so a plain headline run must stay within
    3% of the pre-attribution wall time when measured on a quiet machine
    (the committed report records that check; CI only catches gross
    regressions).  The same run with an AttributionSink plus the
    invariant auditor quantifies the opt-in cost.
    """
    from repro.analysis.attribution import AttributionSink

    def compute():
        plain = [_macro_run() for _ in range(5)]
        attributed = [
            _macro_run(sinks=[AttributionSink()], audit=True)
            for _ in range(5)
        ]
        return plain, attributed

    plain, attributed = benchmark.pedantic(compute, rounds=1, iterations=1)
    plain_median = statistics.median(plain)
    attributed_median = statistics.median(attributed)
    off_ratio = plain_median / PRE_REFACTOR_BASELINE_S
    on_ratio = attributed_median / plain_median
    rows = [
        ["plain wall, median of 5 (s)", round(plain_median, 3)],
        ["attributed+audited wall, median of 5 (s)",
         round(attributed_median, 3)],
        ["pre-attribution baseline (s)", PRE_REFACTOR_BASELINE_S],
        ["disabled-path ratio vs baseline", round(off_ratio, 3)],
        ["enabled cost (attributed / plain)", round(on_ratio, 3)],
    ]
    report = format_table(
        ["metric", "value"], rows,
        title="Attribution overhead — headline, quick settings",
    )
    save_report("attribution_overhead", report)

    # Quiet-machine target for the disabled path is <= 1.03; the CI bound
    # is generous to tolerate shared runners.
    assert off_ratio < 1.5
    # Opt-in attribution + audit does real per-request work; keep it
    # under a small multiple so it stays usable in sweeps.
    assert on_ratio < 3.0
