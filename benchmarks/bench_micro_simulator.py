"""Micro-benchmarks of the simulation substrate itself.

These are conventional pytest-benchmark timings (multiple rounds): event
kernel throughput, NIC rx-path cost, and a full small cluster run.  They
guard against performance regressions that would make the figure sweeps
impractically slow.
"""

from repro import ExperimentConfig, run_experiment
from repro.sim import Simulator
from repro.sim.units import MS


def test_event_kernel_throughput(benchmark):
    """Schedule+fire 100K chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100_000:
                sim.schedule(10, tick)

        sim.schedule(0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 100_000


def test_nic_rx_path(benchmark):
    """Deliver 2000 request packets through NIC + driver + scheduler."""
    from repro.cpu import ProcessorConfig
    from repro.net import NIC, NICDriver, make_http_request
    from repro.oskernel import IRQController, NetStackCosts

    def run():
        sim = Simulator()
        package = ProcessorConfig(n_cores=4).build_package(sim)
        irq = IRQController(sim, package)
        nic = NIC(sim)
        driver = NICDriver(sim, nic, irq, NetStackCosts())
        delivered = []
        driver.packet_sink = delivered.append
        for i in range(2000):
            sim.schedule_at(i * 2_000, nic.receive_frame,
                            make_http_request("c", "s", req_id=i))
        sim.run()
        return len(delivered)

    assert benchmark(run) == 2000


def test_small_cluster_run(benchmark):
    """A complete (short) Apache experiment under the NCAP policy."""

    def run():
        return run_experiment(
            ExperimentConfig(
                app="apache",
                policy="ncap.cons",
                target_rps=24_000,
                warmup_ns=5 * MS,
                measure_ns=30 * MS,
                drain_ns=20 * MS,
            )
        )

    result = benchmark(run)
    assert result.responses_received > 0
