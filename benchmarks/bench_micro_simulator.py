"""Micro-benchmarks of the simulation substrate itself.

The scenarios — event-kernel throughput, cancel churn (heap
compaction), NIC rx-path cost, and a full small cluster run — are
declared once in :data:`repro.harness.suites.MICRO_SUITE` and shared
with ``repro bench micro``, which CI gates against the committed
``benchmarks/baselines/micro.json``.  This file runs that same suite
under pytest, renders the plain-text report from the JSON payload, and
sanity-checks the scenario counters so a broken workload can't
masquerade as a fast one.
"""

from repro.harness import (
    format_suite_report,
    run_suite,
    validate_bench_payload,
)
from repro.harness.suites import MICRO_SUITE


def test_micro_suite(save_report):
    payload = run_suite(MICRO_SUITE, repeats=3)
    validate_bench_payload(payload)
    scenarios = payload["scenarios"]

    assert scenarios["event_kernel"]["events"] == 100_000
    assert scenarios["cancel_churn"]["counters"]["compactions"] >= 1
    assert scenarios["nic_rx_path"]["counters"]["delivered"] == 2000
    assert scenarios["small_cluster"]["counters"]["responses_received"] > 0
    for name, entry in scenarios.items():
        assert entry["wall_s"]["min"] > 0, name
        assert entry["events_per_sec"] > 0, name
        assert entry["top_handlers"], name

    save_report("micro_simulator", format_suite_report(payload))
