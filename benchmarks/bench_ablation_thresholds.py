"""Ablation benches: NCAP threshold sensitivity (RHT, CIT, FCONS)."""

from repro.experiments import RunSettings, ablations


def test_ablation_rht(benchmark, save_report, jobs):
    points = benchmark.pedantic(
        lambda: ablations.sweep_rht(settings=RunSettings.quick(), jobs=jobs),
        rounds=1,
        iterations=1,
    )
    save_report(
        "ablation_rht",
        ablations.format_report(points, "Ablation — request-rate high threshold (RHT)"),
    )
    # A lower RHT triggers at least as many boosts as a higher one.
    by_value = sorted(points, key=lambda p: p.value)
    assert by_value[0].it_high_posts >= by_value[-1].it_high_posts


def test_ablation_cit(benchmark, save_report, jobs):
    points = benchmark.pedantic(
        lambda: ablations.sweep_cit(settings=RunSettings.quick(), jobs=jobs),
        rounds=1,
        iterations=1,
    )
    save_report(
        "ablation_cit",
        ablations.format_report(points, "Ablation — core idle-time threshold (CIT)"),
    )
    # A smaller CIT fires the immediate IT_RX wake at least as often.
    by_value = sorted(points, key=lambda p: p.value)
    assert by_value[0].immediate_rx_posts >= by_value[-1].immediate_rx_posts


def test_ablation_fcons(benchmark, save_report, jobs):
    points = benchmark.pedantic(
        lambda: ablations.sweep_fcons(settings=RunSettings.quick(), jobs=jobs),
        rounds=1,
        iterations=1,
    )
    save_report(
        "ablation_fcons",
        ablations.format_report(points, "Ablation — FCONS (frequency-descent steps)"),
    )
    assert len({p.value for p in points}) == 5
