"""Section 7 bench: exploiting NCAP's latency slack (Pegasus-style)."""

from repro.experiments import RunSettings, slack


def test_slack_controller_extra_savings(benchmark, save_report):
    rows = benchmark.pedantic(
        lambda: slack.run("apache", "low", settings=RunSettings.standard()),
        rounds=1,
        iterations=1,
    )
    save_report("slack_controller", slack.format_report(rows, "apache", "low"))

    plain, with_slack = rows
    # The controller converts latency slack into additional energy savings
    # without violating the SLA (the paper's Section 7 suggestion).
    assert with_slack.energy_j < plain.energy_j
    assert with_slack.meets_sla
    assert with_slack.cap_steps > 0
