"""Load-dynamics benches: diurnal swing and flash crowd."""

from repro.experiments import RunSettings, dynamics


def test_diurnal_swing(benchmark, save_report, jobs):
    rows = benchmark.pedantic(
        lambda: dynamics.diurnal(settings=RunSettings.standard(), jobs=jobs),
        rounds=1,
        iterations=1,
    )
    save_report(
        "dynamics_diurnal",
        dynamics.format_report(rows, "Load dynamics — diurnal swing (Apache)"),
    )
    perf, ond_idle, ncap = rows
    assert ncap.energy_j < perf.energy_j          # saves in the valleys
    assert ncap.p95_ms < ond_idle.p95_ms          # tracks the edges better
    assert ncap.meets_sla


def test_flash_crowd(benchmark, save_report, jobs):
    rows = benchmark.pedantic(
        lambda: dynamics.flash_crowd(settings=RunSettings.standard(), jobs=jobs),
        rounds=1,
        iterations=1,
    )
    save_report(
        "dynamics_flash_crowd",
        dynamics.format_report(rows, "Load dynamics — flash crowd (Apache)"),
    )
    perf, ond_idle, ncap = rows
    # NCAP absorbs the 5x spike at near-perf latency, at roughly half the
    # baseline's energy; the reactive governor is late into the spike.
    assert ncap.energy_j < 0.7 * perf.energy_j
    assert ncap.p95_ms < 1.35 * perf.p95_ms
    assert ond_idle.p95_ms > 1.5 * perf.p95_ms
    assert ncap.meets_sla
