"""Section 8 bench: NCAP versus the Adrenaline-style baseline."""

from repro.experiments import RunSettings, related_work


def test_ncap_vs_adrenaline(benchmark, save_report, jobs):
    rows = benchmark.pedantic(
        lambda: related_work.run("memcached", "low", settings=RunSettings.quick(), jobs=jobs),
        rounds=1,
        iterations=1,
    )
    save_report(
        "related_work_adrenaline",
        related_work.format_report(rows, "memcached", "low"),
    )

    by_name = {r.system: r for r in rows}
    ncap = by_name["ncap.cons"]
    adrenaline = by_name["adrenaline"]
    # The paper's Section 8 argument, measured: detecting in a network
    # software layer is too late — the baseline's latency is far worse
    # than hardware NCAP's even with instant per-core VRs.
    assert adrenaline.p95_ms > 1.5 * ncap.p95_ms
    assert ncap.meets_sla
    # NCAP's hardware variant also beats its own software variant.
    assert ncap.p95_ms <= by_name["ncap.sw"].p95_ms
