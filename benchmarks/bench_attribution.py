"""Attribution bench: where does tail latency come from, per policy?

Runs the ``headline`` attribution preset (Apache @ low load, ondemand /
ondemand+deep-idle / NCAP) with the invariant auditor enabled and renders
the per-policy p95/p99 blame tables to ``reports/attribution_headline.txt``.
The assertions encode the paper's causal story: deep idle states shift
p99 blame onto wake + ramp, and NCAP's proactive wake removes it.
"""

from repro.experiments import RunSettings, attribution


def test_attribution_headline(benchmark, save_report, jobs):
    def compute():
        return attribution.run(
            "headline", settings=RunSettings.quick(), jobs=jobs, audit=True
        )

    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report("attribution_headline", attribution.format_report(result))

    ond = result.row("ond").report
    idle = result.row("ond.idle").report
    ncap = result.row("ncap.cons").report
    for report in (ond, idle, ncap):
        assert report.count > 0
        assert report.unmatched == 0

    # Deep idle states put wake+ramp on the p99 critical path; NCAP's
    # NIC-driven proactive wake removes that blame (paper Figs. 4/7).
    idle_share = idle.tails["p99"].wake_ramp_share
    assert ncap.tails["p99"].wake_ramp_share < idle_share
    assert ond.tails["p99"].wake_ramp_share < idle_share
