"""Figure 9 bench: Memcached — response-time distributions, energy, snapshots."""

from repro.experiments import RunSettings, policy_comparison


def test_fig9_memcached(benchmark, save_report, jobs):
    result = benchmark.pedantic(
        lambda: policy_comparison.run("memcached", settings=RunSettings.standard(), jobs=jobs),
        rounds=1,
        iterations=1,
    )
    save_report(
        "fig9_memcached", policy_comparison.format_report(result, "Figure 9")
    )

    # --- shape assertions against the paper ---
    # Memcached is frequency-sensitive: ond's misprediction costs far more
    # latency relative to perf than it does for Apache (83% longer p95 at
    # low load in the paper; >=50% here).
    assert (
        result.row("ond", "low").p95_norm
        > 1.5 * result.row("perf", "low").p95_norm
    )
    # perf.idle keeps latency close to perf (race-to-halt + C6).
    assert (
        result.row("perf.idle", "low").p95_norm
        < 1.35 * result.row("perf", "low").p95_norm
    )
    # NCAP saves substantially vs the baseline at low load and meets SLA.
    assert result.energy_rel("ncap.aggr", "low") < 0.80
    assert result.row("ncap.aggr", "low").meets_sla
    assert result.row("ncap.cons", "low").meets_sla
    # NCAP's latency stays far below the reactive ond/ond.idle.
    assert (
        result.row("ncap.cons", "low").p95_norm
        < result.row("ond", "low").p95_norm
    )
    # Savings shrink as load grows (convergence toward perf).
    assert (
        result.energy_rel("ncap.aggr", "high")
        > result.energy_rel("ncap.aggr", "low")
    )
    # ncap.sw is the weakest NCAP variant (per-packet software inspection).
    assert (
        result.energy_rel("ncap.sw", "low")
        > result.energy_rel("ncap.cons", "low")
    )
    ncap_snap = next(s for s in result.snapshots if s.policy == "ncap.cons")
    assert ncap_snap.wake_interrupts_ns
