"""Section 7 bench: NCAP across an imbalanced multi-server fleet."""

from repro.cluster.datacenter import DatacenterConfig
from repro.experiments import datacenter
from repro.sim.units import MS


def test_datacenter_imbalance(benchmark, save_report, jobs):
    config = DatacenterConfig(
        app="apache",
        n_servers=4,
        load_shares=(0.45, 0.30, 0.15, 0.10),
        total_rps=120_000,
        warmup_ns=15 * MS,
        measure_ns=120 * MS,
        drain_ns=80 * MS,
    )
    rows = benchmark.pedantic(
        lambda: datacenter.run(config, jobs=jobs), rounds=1, iterations=1
    )
    save_report("datacenter_imbalance", datacenter.format_report(rows))

    # Utilization decreases down the share list; savings must increase.
    utils = [r.utilization for r in rows]
    assert utils == sorted(utils, reverse=True)
    savings = [r.saving_pct for r in rows]
    assert savings[-1] > savings[0]           # coldest server saves most
    assert savings[-1] > 30                   # real savings where idle
    assert all(r.ncap_meets_sla for r in rows)
    # Fleet-level: positive total saving despite the hot server.
    total_saving = 1 - sum(r.ncap_energy_j for r in rows) / sum(
        r.baseline_energy_j for r in rows
    )
    assert total_saving > 0.15
