"""Figure 1 bench: P-state transition timing table."""

from repro.experiments import fig1_dvfs_timing


def test_fig1_dvfs_timing(benchmark, save_report):
    rows = benchmark.pedantic(fig1_dvfs_timing.run, rounds=1, iterations=1)
    save_report("fig1_dvfs_timing", fig1_dvfs_timing.format_report(rows))

    # Shape assertions from the paper's Figure 1 / Section 2.1:
    up = next(r for r in rows if (r.from_index, r.to_index) == (14, 0))
    down = next(r for r in rows if (r.from_index, r.to_index) == (0, 14))
    assert down.total_us == 5.0            # highest->lowest ~5 us
    assert up.total_us > 10 * down.total_us  # lowest->highest much slower
    assert all(r.halt_us == 5.0 for r in rows)  # PLL relock everywhere
