"""Figure 2 bench: Apache p95 latency vs ondemand invocation period."""

from repro.experiments import RunSettings, fig2_ondemand_period


def test_fig2_ondemand_period(benchmark, save_report, jobs):
    cells = benchmark.pedantic(
        lambda: fig2_ondemand_period.run(settings=RunSettings.quick(), jobs=jobs),
        rounds=1,
        iterations=1,
    )
    save_report("fig2_ondemand_period", fig2_ondemand_period.format_report(cells))

    # The paper's point: the best invocation period varies with load and a
    # shorter period is not uniformly better.  Verify the sweep produced a
    # full grid and that period choice matters (>5% spread at some load).
    loads = {c.load for c in cells}
    assert loads == {"low", "medium", "high"}
    for load in loads:
        row = [c.p95_ms for c in cells if c.load == load]
        assert len(row) == 4
    spreads = []
    for load in loads:
        row = [c.p95_ms for c in cells if c.load == load]
        spreads.append((max(row) - min(row)) / min(row))
    assert max(spreads) > 0.05
