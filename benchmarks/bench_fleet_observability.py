"""Fleet-observability overhead bench: off / traced / fully observed.

Request tracing, the window profiler and the run monitor are opt-in
observers of the sharded coordinator: with every knob unset no tracer,
profile or monitor object exists, so a plain frontend fleet run must
stay within noise of the pre-observer wall time (the disabled path is
a handful of ``is None`` checks per window).  The traced and fully
observed configurations quantify the opt-in cost of 1-in-64 sampling,
per-window shard wall bookkeeping and JSONL heartbeats.
"""

import statistics
import time

from repro.cluster.datacenter import DatacenterConfig, run_datacenter
from repro.cluster.frontend import FrontendConfig
from repro.metrics.report import format_table
from repro.sim.units import MS
from repro.telemetry.monitor import RunMonitor

#: Median wall time of the plain (observers-off) fleet run measured on
#: the machine that generated the committed report, at the commit that
#: introduced the observability layer.  Informational: re-measure when
#: regenerating the report on different hardware.
PRE_OBSERVER_BASELINE_S = 0.212


def _fleet_run(**observers):
    config = DatacenterConfig(
        app="memcached",
        n_servers=4,
        n_shards=2,
        load_shares="uniform",
        total_rps=80_000.0,
        warmup_ns=5 * MS,
        measure_ns=30 * MS,
        drain_ns=20 * MS,
        frontend=FrontendConfig(
            n_users=5_000, spray="po2", burst_size=75,
            intra_burst_gap_ns=1_000, dispatch_latency_ns=1 * MS,
        ),
    )
    t0 = time.perf_counter()
    result = run_datacenter(config, jobs=1, **observers)
    elapsed = time.perf_counter() - t0
    assert result.record.responses_received > 0
    if observers.get("trace_requests"):
        assert len(result.trace) > 0
    if observers.get("profile_fleet"):
        assert result.fleet_profile.windows
    return elapsed


def _observed_run():
    # Everything on; the huge monitor interval keeps stderr quiet while
    # still exercising the per-window bookkeeping.
    return _fleet_run(
        trace_requests=64,
        profile_fleet=True,
        monitor=RunMonitor("-", interval_s=3600.0),
    )


def test_fleet_observability_overhead(benchmark, save_report):
    def compute():
        off = [_fleet_run() for _ in range(5)]
        traced = [_fleet_run(trace_requests=64) for _ in range(5)]
        observed = [_observed_run() for _ in range(5)]
        return off, traced, observed

    off, traced, observed = benchmark.pedantic(compute, rounds=1, iterations=1)
    off_median = statistics.median(off)
    traced_median = statistics.median(traced)
    observed_median = statistics.median(observed)
    off_ratio = off_median / PRE_OBSERVER_BASELINE_S
    traced_ratio = traced_median / off_median
    observed_ratio = observed_median / off_median
    rows = [
        ["observers off, median of 5 (s)", round(off_median, 3)],
        ["traced (1-in-64), median of 5 (s)", round(traced_median, 3)],
        ["fully observed, median of 5 (s)", round(observed_median, 3)],
        ["pre-observer baseline (s)", PRE_OBSERVER_BASELINE_S],
        ["disabled-path ratio vs baseline", round(off_ratio, 3)],
        ["tracing cost (traced / off)", round(traced_ratio, 3)],
        ["full cost (observed / off)", round(observed_ratio, 3)],
    ]
    report = format_table(
        ["metric", "value"], rows,
        title="Fleet-observability overhead — 4 servers / 2 shards, "
              "frontend tier",
    )
    save_report("fleet_observability_overhead", report)

    # Quiet-machine target for the disabled path is <= 1.02 (the issue's
    # acceptance bound); the CI bound is generous for shared runners.
    assert off_ratio < 1.5
    # 1-in-64 sampling touches a crc32 per dispatch plus the probe
    # subscription; it must stay cheap enough to leave on for any run.
    assert traced_ratio < 1.3
    # The profiler adds two perf_counter reads per shard-window and the
    # monitor a dict per window: full observability stays bounded.
    assert observed_ratio < 1.4
