"""Figure 8 bench: Apache — response-time distributions, energy, snapshots."""

from repro.experiments import RunSettings, policy_comparison


def test_fig8_apache(benchmark, save_report, jobs):
    result = benchmark.pedantic(
        lambda: policy_comparison.run("apache", settings=RunSettings.standard(), jobs=jobs),
        rounds=1,
        iterations=1,
    )
    save_report(
        "fig8_apache", policy_comparison.format_report(result, "Figure 8")
    )

    # --- shape assertions against the paper ---
    # Low load: every policy saves vs perf; C-states matter a lot
    # (perf.idle well below perf), ond saves too.
    assert result.energy_rel("ond", "low") < 0.85
    assert result.energy_rel("perf.idle", "low") < 0.60
    assert result.energy_rel("ond.idle", "low") <= result.energy_rel("perf.idle", "low")
    # NCAP: large savings vs the baseline while keeping near-perf latency.
    assert result.energy_rel("ncap.aggr", "low") < 0.65
    assert result.row("ncap.cons", "low").meets_sla
    # NCAP latency beats the reactive governors' (ond/ond.idle mispredict).
    assert (
        result.row("ncap.cons", "low").p95_norm
        < result.row("ond.idle", "low").p95_norm
    )
    # ncap.sw saves less energy than hardware NCAP (software overhead).
    assert (
        result.energy_rel("ncap.sw", "low")
        > result.energy_rel("ncap.aggr", "low")
    )
    # High load: little idleness left; every policy converges toward perf.
    for policy in ("ond", "perf.idle", "ond.idle", "ncap.cons"):
        assert result.energy_rel(policy, "high") > 0.92
    # cons vs aggr: conservative descent gives lower tail latency at the
    # cost of (>=) energy — Section 6's FCONS trade-off.
    assert (
        result.row("ncap.cons", "high").p95_norm
        <= result.row("ncap.aggr", "high").p95_norm
    )
    # Snapshots exist for the right-hand panels and NCAP posted wakes.
    ncap_snap = next(s for s in result.snapshots if s.policy == "ncap.cons")
    assert ncap_snap.wake_interrupts_ns
