"""Figure 4 bench: network activity / power management correlation trace."""

from repro.experiments import RunSettings, fig4_correlation


def test_fig4_correlation(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: fig4_correlation.run(settings=RunSettings.standard()),
        rounds=1,
        iterations=1,
    )
    save_report("fig4_correlation", fig4_correlation.format_report(result))

    # Section 3's central claim: a strong correlation between the rate of
    # received packets and processor utilization, and between utilization
    # and the frequency the ondemand governor selects.
    assert result.corr_rx_util > 0.4
    assert result.corr_util_freq > 0.3
    # The menu governor parks cores in deep sleep between bursts (Fig 4b).
    assert result.cstate_entries.get("C6", 0) > 0
    # ondemand reacts late (the paper observes ~11 ms with a 10 ms period).
    assert result.freq_lag_ms is None or result.freq_lag_ms >= 0
