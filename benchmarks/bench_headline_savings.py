"""Headline bench: the abstract's energy-saving claims, recomputed."""

from repro.experiments import RunSettings, headline, policy_comparison


def test_headline_savings(benchmark, save_report, jobs):
    def compute():
        results = [
            policy_comparison.run(
                app,
                loads=("low", "medium"),
                settings=RunSettings.quick(),
                snapshot_policies=(),
                jobs=jobs,
            )
            for app in ("apache", "memcached")
        ]
        return headline.derive(results)

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report("headline_savings", headline.format_report(rows))

    # Paper: 37-61% lower energy than the baseline at the loads where
    # idleness exists.  Our reproduction must at least land the low-load
    # points in (or near) that band, always SLA-clean.
    assert all(r.ncap_meets_sla for r in rows)
    low_rows = [r for r in rows if r.load == "low"]
    assert all(r.ncap_vs_perf_saving_pct > 25 for r in low_rows)
    assert any(r.ncap_vs_perf_saving_pct > 37 for r in low_rows)
    # Savings shrink with load (medium <= low per app).
    for app in ("apache", "memcached"):
        low = next(r for r in rows if r.app == app and r.load == "low")
        med = next(r for r in rows if r.app == app and r.load == "medium")
        assert med.ncap_vs_perf_saving_pct <= low.ncap_vs_perf_saving_pct + 1
