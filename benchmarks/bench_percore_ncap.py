"""Section 7 bench: per-core NCAP (multi-queue NIC) vs chip-wide NCAP."""

from repro.experiments import RunSettings
from repro.experiments import percore


def test_percore_vs_chipwide(benchmark, save_report, jobs):
    def compute():
        return {
            app: percore.run(app, "low", settings=RunSettings.quick(), jobs=jobs)
            for app in ("memcached", "apache")
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    report = "\n".join(
        percore.format_report(rows, app, "low") for app, rows in results.items()
    )
    save_report("percore_ncap", report)

    for app, rows in results.items():
        chipwide, per_core = rows
        # Per-core retuning saves energy beyond chip-wide NCAP (Section 7's
        # prediction) while remaining SLA-clean.
        assert per_core.energy_j < chipwide.energy_j
        assert per_core.meets_sla
