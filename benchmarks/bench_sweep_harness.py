"""Sweep-harness bench: process-pool parity, speedup, and cache hits.

Three properties of the harness, measured on the 7-point Figure-7 sweep:

1. **Parity** — the process-pool backend returns byte-identical records,
   in the same order, as the serial backend.
2. **Speedup** — on a machine with 4+ cores, ``jobs=4`` completes the
   sweep at least 2.5x faster than ``jobs=1`` (each point is an
   independent simulation, so the fan-out is embarrassingly parallel).
   On smaller machines the measured ratio is reported but not asserted:
   with fewer cores than workers the pool can only add IPC overhead.
3. **Caching** — a second run against a warm cache is served entirely
   from disk, orders of magnitude faster than simulating.
"""

import json
import os
import time

from repro.experiments import RunSettings
from repro.experiments.fig7_latency_load import APACHE_SWEEP_RPS
from repro.harness import ResultCache, SweepSpec, run_sweep
from repro.metrics.report import format_table

SPEEDUP_FLOOR = 2.5
MIN_CORES_FOR_ASSERT = 4


def _sweep():
    return SweepSpec(
        apps=("apache",),
        policies=("perf",),
        loads=APACHE_SWEEP_RPS,
        settings=RunSettings.quick(),
    )


def _records_json(records):
    return json.dumps([r.to_json_dict() for r in records], sort_keys=True)


def test_sweep_harness(benchmark, save_report, tmp_path):
    cores = os.cpu_count() or 1

    t0 = time.perf_counter()
    serial = run_sweep(_sweep(), jobs=1)
    t_serial = time.perf_counter() - t0

    def parallel_run():
        t = time.perf_counter()
        records = run_sweep(_sweep(), jobs=4)
        return records, time.perf_counter() - t

    pooled, t_pool = benchmark.pedantic(parallel_run, rounds=1, iterations=1)

    cache = ResultCache(str(tmp_path / "cache"))
    run_sweep(_sweep(), jobs=1, cache=cache)  # warm it
    t0 = time.perf_counter()
    cached = run_sweep(_sweep(), jobs=1, cache=cache)
    t_cached = time.perf_counter() - t0

    speedup = t_serial / t_pool
    report = format_table(
        ["backend", "wall time (s)", "vs serial"],
        [
            ["serial (jobs=1)", round(t_serial, 2), "1.00x"],
            ["pool (jobs=4)", round(t_pool, 2), f"{speedup:.2f}x"],
            ["warm cache", round(t_cached, 3), f"{t_serial / t_cached:.0f}x"],
        ],
        title="Sweep harness — 7-point Figure-7 sweep (apache, quick)",
    )
    report += (
        f"\nmachine: {cores} core(s)."
        f"\nparallel == serial records: {_records_json(pooled) == _records_json(serial)}"
        f"\ncache hits on second run: {cache.hits}/{len(cached)}"
    )
    if cores < MIN_CORES_FOR_ASSERT:
        report += (
            f"\nNOTE: the >= {SPEEDUP_FLOOR}x pool-speedup criterion applies to"
            f"\n4+ core machines; with {cores} core(s) the 4 workers share one"
            "\nCPU, so only parity and cache behaviour are asserted here."
        )
    save_report("sweep_harness", report)

    # Parity and ordering: bit-identical JSON, spec order preserved.
    assert _records_json(pooled) == _records_json(serial)
    assert [r.target_rps for r in pooled] == [float(r) for r in APACHE_SWEEP_RPS]

    # Cache: fully served from disk, identical payloads.
    assert cache.hits == len(cached) == len(serial)
    assert all(r.from_cache for r in cached)
    assert _records_json(cached) == _records_json(serial)

    if cores >= MIN_CORES_FOR_ASSERT:
        assert speedup >= SPEEDUP_FLOOR, (
            f"jobs=4 only {speedup:.2f}x faster than jobs=1 on {cores} cores"
        )
