"""Figure 7 bench: latency versus load; SLA at the inflexion point."""

from repro.experiments import RunSettings, fig7_latency_load


def test_fig7_apache(benchmark, save_report, jobs):
    result = benchmark.pedantic(
        lambda: fig7_latency_load.run("apache", settings=RunSettings.quick(), jobs=jobs),
        rounds=1,
        iterations=1,
    )
    save_report("fig7_latency_load_apache", fig7_latency_load.format_report(result))

    p95s = [p.p95_ms for p in result.points]
    # Flat region then a steep rise past the knee.
    assert p95s[-1] > 2.5 * p95s[0]
    assert result.knee_rps is not None
    # The paper's Apache saturates near 68K RPS; ours must be in the same
    # regime (the "high" load level, 66K, must still be sustainable).
    assert 60_000 <= result.knee_rps <= 80_000


def test_fig7_memcached(benchmark, save_report, jobs):
    result = benchmark.pedantic(
        lambda: fig7_latency_load.run("memcached", settings=RunSettings.quick(), jobs=jobs),
        rounds=1,
        iterations=1,
    )
    save_report("fig7_latency_load_memcached", fig7_latency_load.format_report(result))

    p95s = [p.p95_ms for p in result.points]
    assert p95s[-1] > 2.5 * p95s[0]
    assert result.knee_rps is not None
    # The paper's Memcached sustains ~143K RPS (2.1x Apache).
    assert 135_000 <= result.knee_rps <= 160_000
