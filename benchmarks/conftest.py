"""Shared benchmark plumbing: report output to benchmarks/reports/."""

import os

import pytest

REPORTS_DIR = os.path.join(os.path.dirname(__file__), "reports")


@pytest.fixture(scope="session")
def jobs():
    """Worker processes for sweep-shaped benches (REPRO_JOBS or cpu count)."""
    from repro.harness import resolve_jobs

    return resolve_jobs()


@pytest.fixture
def save_report():
    """Persist a rendered experiment report and echo it to stdout."""

    def _save(name: str, text: str) -> str:
        os.makedirs(REPORTS_DIR, exist_ok=True)
        path = os.path.join(REPORTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\n{text}\n[report saved to {path}]")
        return path

    return _save
