"""Section 7 — NCAP under datacenter load imbalance.

Runs the same imbalanced multi-server cluster once under the always-max
baseline and once under NCAP, then relates each server's utilization to
its energy saving.  The paper's expectation: underutilized servers (the
majority in a real datacenter) are exactly where NCAP's savings live.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.cluster.datacenter import (
    DatacenterConfig,
    DatacenterResult,
    run_datacenter,
)
from repro.cluster.frontend import FrontendConfig
from repro.harness import Runner
from repro.metrics.report import format_table
from repro.sim.units import MS

#: Named cluster shapes for ``repro datacenter``.
#:
#: - ``imbalance``: the paper's four-node Section 7 shape (the default);
#: - ``zipf200``: 200 servers on a generated Zipf(1.2) load profile,
#:   exercising generated shares + sharding with classic client pools;
#: - ``datacenter_1000``: 1000 servers behind the frontend tier spraying
#:   an open-loop population of one million users — the scale the paper
#:   argues NCAP is for ("a production datacenter consists of hundreds
#:   or thousands of servers").
PRESETS: Dict[str, DatacenterConfig] = {
    "imbalance": DatacenterConfig(),
    "zipf200": DatacenterConfig(
        n_servers=200,
        load_shares="zipf:1.2",
        total_rps=600_000.0,
        clients_per_server=2,
        warmup_ns=10 * MS,
        measure_ns=60 * MS,
        drain_ns=30 * MS,
        n_shards=4,
    ),
    # The frontend tier at smoke scale: same shape as datacenter_1000
    # (po2 spray, 1 ms dispatch latency) on 4 servers / 2 shards, small
    # enough for CI to run with every fleet observer enabled.
    "frontend": DatacenterConfig(
        app="memcached",
        n_servers=4,
        load_shares="uniform",
        total_rps=80_000.0,
        warmup_ns=5 * MS,
        measure_ns=30 * MS,
        drain_ns=20 * MS,
        n_shards=2,
        frontend=FrontendConfig(
            n_users=5_000,
            spray="po2",
            burst_size=75,
            intra_burst_gap_ns=1_000,
            dispatch_latency_ns=1 * MS,
        ),
    ),
    "datacenter_1000": DatacenterConfig(
        app="memcached",
        n_servers=1000,
        load_shares="uniform",
        total_rps=2_000_000.0,
        warmup_ns=10 * MS,
        measure_ns=60 * MS,
        drain_ns=30 * MS,
        n_shards=8,
        frontend=FrontendConfig(
            n_users=1_000_000,
            spray="po2",
            burst_size=500,
            intra_burst_gap_ns=400,
            dispatch_latency_ns=1 * MS,
        ),
    ),
}


@dataclass
class ImbalanceRow:
    server: str
    target_rps: float
    utilization: float
    baseline_energy_j: float
    ncap_energy_j: float
    saving_pct: float
    ncap_meets_sla: bool


def run(
    config: DatacenterConfig = DatacenterConfig(),
    ncap_policy: str = "ncap.cons",
    baseline_policy: str = "perf",
    jobs: Optional[int] = None,
) -> List[ImbalanceRow]:
    baseline, ncap = Runner(jobs=jobs).map(
        run_datacenter,
        [
            replace(config, policy=baseline_policy),
            replace(config, policy=ncap_policy),
        ],
    )
    rows = []
    for base_server, ncap_server in zip(baseline.servers, ncap.servers):
        saving = 1 - ncap_server.energy.energy_j / base_server.energy.energy_j
        rows.append(
            ImbalanceRow(
                server=ncap_server.server,
                target_rps=ncap_server.target_rps,
                utilization=ncap_server.utilization,
                baseline_energy_j=base_server.energy.energy_j,
                ncap_energy_j=ncap_server.energy.energy_j,
                saving_pct=saving * 100,
                ncap_meets_sla=ncap_server.meets_sla,
            )
        )
    return rows


def format_report(rows: List[ImbalanceRow]) -> str:
    table = format_table(
        ["server", "load (RPS)", "utilization", "perf (J)", "ncap (J)",
         "saving (%)", "SLA"],
        [
            [r.server, f"{r.target_rps/1000:.0f}K", round(r.utilization, 3),
             round(r.baseline_energy_j, 2), round(r.ncap_energy_j, 2),
             round(r.saving_pct, 1), "ok" if r.ncap_meets_sla else "VIOLATED"]
            for r in rows
        ],
        title="Section 7 — NCAP savings across an imbalanced server fleet",
    )
    total_base = sum(r.baseline_energy_j for r in rows)
    total_ncap = sum(r.ncap_energy_j for r in rows)
    table += (
        f"\nfleet total: {total_base:.1f} J -> {total_ncap:.1f} J "
        f"({(1 - total_ncap / total_base) * 100:.1f}% saved)"
    )
    return table


def run_preset(
    name: str,
    *,
    overrides: Optional[dict] = None,
    jobs: Optional[int] = None,
    record_timeseries=None,
    profile=None,
    trace_requests=None,
    profile_fleet: bool = False,
    monitor=None,
    energy_attribution: bool = False,
) -> DatacenterResult:
    """Run one named cluster preset (optionally with config overrides)."""
    try:
        config = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown datacenter preset {name!r} "
            f"(available: {', '.join(sorted(PRESETS))})"
        ) from None
    if overrides:
        config = replace(config, **overrides)
    return run_datacenter(
        config,
        jobs=jobs,
        record_timeseries=record_timeseries,
        profile=profile,
        trace_requests=trace_requests,
        profile_fleet=profile_fleet,
        monitor=monitor,
        energy_attribution=energy_attribution,
    )


def format_fleet_report(result: DatacenterResult) -> str:
    """Fleet summary + per-shard execution table for a sharded run."""
    config = result.config
    record = result.record
    utils = [s.utilization for s in result.servers]
    violators = sum(1 for s in result.servers if not s.meets_sla)
    rows = [
        ["servers", config.n_servers],
        ["policy", record.policy if record else config.policy],
        ["offered RPS", f"{config.total_rps / 1000:.0f}K"],
    ]
    if record is not None:
        rows += [
            ["achieved RPS", f"{record.achieved_rps / 1000:.1f}K"],
            ["responses", record.responses_received],
            ["p50 (ms)", round(record.p50_ns / 1e6, 3)],
            ["p99 (ms)", round(record.p99_ns / 1e6, 3)],
            ["fleet energy (J)", round(record.energy_j, 1)],
            ["fleet avg power (W)", round(record.avg_power_w, 1)],
        ]
    rows += [
        ["utilization (min/mean/max)",
         f"{min(utils):.3f} / {sum(utils) / len(utils):.3f} / {max(utils):.3f}"],
        ["SLA", "met fleet-wide" if violators == 0
         else f"VIOLATED on {violators}/{len(utils)} servers"],
    ]
    out = format_table(
        ["metric", "value"], rows,
        title=f"Datacenter fleet — {config.app}, "
              f"{config.n_shards} shard{'s' if config.n_shards != 1 else ''}",
    )
    if result.shards:
        # events/s and peak RSS come from the per-shard loop-health
        # checkpoints (the self-profiler payload), so imbalance is
        # visible from any profiled run even without --profile-fleet.
        shard_rows = []
        for s in result.shards:
            rate = s.events / s.wall_s / 1e6 if s.wall_s > 0 else 0.0
            loop_rate = s.profile.get("events_per_wall_s") if s.profile else None
            peak_rss = s.profile.get("peak_rss_bytes") if s.profile else None
            shard_rows.append([
                s.shard_index,
                f"{s.server_indices[0]}-{s.server_indices[-1]}",
                s.events,
                round(s.wall_s, 2),
                f"{rate:.2f}",
                f"{loop_rate / 1e3:.0f}K" if loop_rate else "-",
                f"{peak_rss / 1e6:.0f}" if peak_rss else "-",
            ])
        out += "\n\n" + format_table(
            ["shard", "servers", "events", "wall (s)", "Mev/s",
             "loop ev/s", "peak RSS (MB)"],
            shard_rows, title="Per-shard execution",
        )
        out += (
            f"\nparallel speedup (sum of shard work / critical path): "
            f"{result.shard_speedup:.2f}x"
        )
    return out
