"""Section 7 — NCAP under datacenter load imbalance.

Runs the same imbalanced multi-server cluster once under the always-max
baseline and once under NCAP, then relates each server's utilization to
its energy saving.  The paper's expectation: underutilized servers (the
majority in a real datacenter) are exactly where NCAP's savings live.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.cluster.datacenter import DatacenterConfig, run_datacenter
from repro.harness import Runner
from repro.metrics.report import format_table


@dataclass
class ImbalanceRow:
    server: str
    target_rps: float
    utilization: float
    baseline_energy_j: float
    ncap_energy_j: float
    saving_pct: float
    ncap_meets_sla: bool


def run(
    config: DatacenterConfig = DatacenterConfig(),
    ncap_policy: str = "ncap.cons",
    baseline_policy: str = "perf",
    jobs: Optional[int] = None,
) -> List[ImbalanceRow]:
    baseline, ncap = Runner(jobs=jobs).map(
        run_datacenter,
        [
            replace(config, policy=baseline_policy),
            replace(config, policy=ncap_policy),
        ],
    )
    rows = []
    for base_server, ncap_server in zip(baseline.servers, ncap.servers):
        saving = 1 - ncap_server.energy.energy_j / base_server.energy.energy_j
        rows.append(
            ImbalanceRow(
                server=ncap_server.server,
                target_rps=ncap_server.target_rps,
                utilization=ncap_server.utilization,
                baseline_energy_j=base_server.energy.energy_j,
                ncap_energy_j=ncap_server.energy.energy_j,
                saving_pct=saving * 100,
                ncap_meets_sla=ncap_server.meets_sla,
            )
        )
    return rows


def format_report(rows: List[ImbalanceRow]) -> str:
    table = format_table(
        ["server", "load (RPS)", "utilization", "perf (J)", "ncap (J)",
         "saving (%)", "SLA"],
        [
            [r.server, f"{r.target_rps/1000:.0f}K", round(r.utilization, 3),
             round(r.baseline_energy_j, 2), round(r.ncap_energy_j, 2),
             round(r.saving_pct, 1), "ok" if r.ncap_meets_sla else "VIOLATED"]
            for r in rows
        ],
        title="Section 7 — NCAP savings across an imbalanced server fleet",
    )
    total_base = sum(r.baseline_energy_j for r in rows)
    total_ncap = sum(r.ncap_energy_j for r in rows)
    table += (
        f"\nfleet total: {total_base:.1f} J -> {total_ncap:.1f} J "
        f"({(1 - total_ncap / total_base) * 100:.1f}% saved)"
    )
    return table
