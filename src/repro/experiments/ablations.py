"""Ablations of NCAP's design parameters (our additions, motivated by
Sections 4.3 and 7 of the paper).

- **RHT sweep** — how sensitive is the boost trigger to the request-rate
  high threshold?  Too low: spurious boosts burn energy; too high: bursts
  go undetected and latency degrades toward ond.idle.
- **CIT sweep** — the idle-time threshold for the immediate IT_RX wake.
- **FCONS sweep** — conservative-versus-aggressive frequency descent (the
  paper evaluates 1 and 5; we sweep the range).
- **TOE slack** (Section 7) — a TCP-offload NIC holds packets longer
  before delivery; NCAP gets more slack to hide wake-ups, so its latency
  should hold while the baseline's grows with the delivery latency.

Each sweep is a list of :class:`~repro.harness.RunSpec` points executed
through the shared harness, so all of them parallelize and cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps.workload import load_level
from repro.core.config import NCAPConfig
from repro.experiments.common import RunSettings
from repro.harness import ResultCache, ResultRecord, RunSpec, run_sweep
from repro.metrics.report import format_table
from repro.sim.units import US


@dataclass
class AblationPoint:
    parameter: str
    value: float
    policy: str
    p95_ms: float
    energy_j: float
    it_high_posts: int
    immediate_rx_posts: int


def _point(parameter: str, value: float, record: ResultRecord) -> AblationPoint:
    return AblationPoint(
        parameter=parameter,
        value=value,
        policy=record.policy,
        p95_ms=record.p95_ns / 1e6,
        energy_j=record.energy_j,
        it_high_posts=record.ncap_stats.get("it_high_posts", 0),
        immediate_rx_posts=record.ncap_stats.get("immediate_rx_posts", 0),
    )


def sweep_rht(
    values_rps: Sequence[float] = (5_000, 15_000, 35_000, 70_000, 140_000),
    app: str = "apache",
    load: str = "low",
    settings: RunSettings = RunSettings.quick(),
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[AblationPoint]:
    level = load_level(app, load)
    specs = [
        RunSpec(
            app=app, policy="ncap.cons", target_rps=level.target_rps,
            seed=settings.seed, settings=settings,
            overrides={"ncap_base_config": NCAPConfig(rht_rps=rht)},
        )
        for rht in values_rps
    ]
    records = run_sweep(specs, jobs=jobs, cache=cache)
    return [
        _point("RHT (RPS)", rht, record)
        for rht, record in zip(values_rps, records)
    ]


def sweep_cit(
    values_us: Sequence[float] = (100, 250, 500, 1_000, 2_000),
    app: str = "memcached",
    load: str = "low",
    settings: RunSettings = RunSettings.quick(),
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[AblationPoint]:
    level = load_level(app, load)
    specs = [
        RunSpec(
            app=app, policy="ncap.cons", target_rps=level.target_rps,
            seed=settings.seed, settings=settings,
            overrides={"ncap_base_config": NCAPConfig(cit_ns=round(cit_us * US))},
        )
        for cit_us in values_us
    ]
    records = run_sweep(specs, jobs=jobs, cache=cache)
    return [
        _point("CIT (us)", cit_us, record)
        for cit_us, record in zip(values_us, records)
    ]


def sweep_fcons(
    values: Sequence[int] = (1, 2, 3, 5, 8),
    app: str = "apache",
    load: str = "medium",
    settings: RunSettings = RunSettings.quick(),
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[AblationPoint]:
    from repro.cluster.policies import PolicyConfig

    level = load_level(app, load)
    specs = [
        RunSpec(
            app=app,
            policy=PolicyConfig(
                f"ncap.f{fcons}", governor="ondemand", cstates=True, ncap="hw",
                fcons=fcons,
            ),
            target_rps=level.target_rps, seed=settings.seed, settings=settings,
        )
        for fcons in values
    ]
    records = run_sweep(specs, jobs=jobs, cache=cache)
    return [
        _point("FCONS", fcons, record)
        for fcons, record in zip(values, records)
    ]


def sweep_toe_slack(
    dma_latency_us: Sequence[float] = (10, 25, 50, 80),
    policies: Sequence[str] = ("ond.idle", "ncap.cons"),
    app: str = "apache",
    load: str = "low",
    settings: RunSettings = RunSettings.quick(),
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[AblationPoint]:
    """Section 7: a TOE NIC holds packets longer inside the NIC; NCAP gains
    overlap slack while reactive policies inherit the full extra latency."""
    level = load_level(app, load)
    grid = [
        (dma_us, policy) for dma_us in dma_latency_us for policy in policies
    ]
    specs = [
        RunSpec(
            app=app, policy=policy, target_rps=level.target_rps,
            seed=settings.seed, settings=settings,
            overrides={"nic_dma_latency_ns": round(dma_us * US)},
        )
        for dma_us, policy in grid
    ]
    records = run_sweep(specs, jobs=jobs, cache=cache)
    return [
        _point("DMA hold (us)", dma_us, record)
        for (dma_us, _), record in zip(grid, records)
    ]


def format_report(points: List[AblationPoint], title: str) -> str:
    return format_table(
        ["parameter", "value", "policy", "p95 (ms)", "energy (J)",
         "IT_HIGH", "imm. IT_RX"],
        [
            [p.parameter, p.value, p.policy, round(p.p95_ms, 2),
             round(p.energy_j, 2), p.it_high_posts, p.immediate_rx_posts]
            for p in points
        ],
        title=title,
    )
