"""Critical-path attribution experiments: blame the tail, per policy.

Runs a small set of policies on one workload with an
:class:`~repro.analysis.attribution.AttributionSink` (and, by default,
the :class:`~repro.analysis.audit.InvariantAuditor`) attached, and
renders the paper-style blame tables: *"at p99 under ond.idle, X% of
latency is wake+ramp; under NCAP, Y%"*.

Exposed on the CLI as ``repro attribute <experiment>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.attribution import AttributionReport, AttributionSink
from repro.analysis.report import format_attribution_report
from repro.apps.workload import load_level
from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.harness.runner import Runner
from repro.harness.settings import RunSettings
from repro.metrics.latency import LatencyStats


@dataclass(frozen=True)
class AttributionPreset:
    """One named attribution experiment: a workload and a policy set."""

    app: str
    load: str
    policies: Tuple[str, ...]
    note: str = ""


#: Named experiments.  ``headline`` contrasts the reactive baseline, the
#: deep-idle variant that exposes wake+ramp at the tail, and NCAP hiding
#: both; ``fig4``/``fig7`` mirror the paper figures' policy sets.
PRESETS: Dict[str, AttributionPreset] = {
    "headline": AttributionPreset(
        app="apache",
        load="low",
        policies=("ond", "ond.idle", "ncap.cons"),
        note="reactive baselines vs NCAP on the abstract's workload",
    ),
    "fig4": AttributionPreset(
        app="apache",
        load="low",
        policies=("ond.idle", "ncap.cons"),
        note="wake/ramp correlation pair",
    ),
    "fig7": AttributionPreset(
        app="apache",
        load="medium",
        policies=("perf", "ond.idle", "ncap.cons"),
        note="latency-load policy set at medium load",
    ),
}


@dataclass
class AttributionRow:
    """One policy's run: latency summary plus the attribution report."""

    policy: str
    latency: LatencyStats
    report: AttributionReport


@dataclass
class AttributionResult:
    name: str
    app: str
    load: str
    rows: List[AttributionRow]

    def row(self, policy: str) -> AttributionRow:
        for row in self.rows:
            if row.policy == policy:
                return row
        raise KeyError(f"no attribution row for policy {policy!r}")


def _run_one(task: Tuple[str, str, str, RunSettings, bool]) -> AttributionRow:
    """Process-pool worker: one policy's attributed run (module-level,
    picklable)."""
    app, load, policy, settings, audit = task
    level = load_level(app, load)
    config = ExperimentConfig.from_settings(
        settings, app=app, policy=policy, target_rps=level.target_rps
    )
    result = run_experiment(
        config, sinks=[AttributionSink()], audit=audit
    )
    assert result.attribution is not None
    return AttributionRow(
        policy=policy, latency=result.latency, report=result.attribution
    )


def run(
    name: str = "headline",
    settings: RunSettings = RunSettings.standard(),
    jobs: Optional[int] = None,
    audit: bool = True,
) -> AttributionResult:
    """Run the named preset; one attributed run per policy, in parallel.

    Attribution runs are never served from the result cache: the sink and
    the auditor are run-time attachments, not config fields, so a cached
    plain record would have no attribution to report.
    """
    try:
        preset = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown attribution experiment {name!r}; "
            f"choose from {sorted(PRESETS)}"
        ) from None
    tasks = [
        (preset.app, preset.load, policy, settings, audit)
        for policy in preset.policies
    ]
    rows = Runner(jobs=jobs).map(_run_one, tasks)
    return AttributionResult(
        name=name, app=preset.app, load=preset.load, rows=rows
    )


def format_report(result: AttributionResult) -> str:
    preset = PRESETS.get(result.name)
    note = f" — {preset.note}" if preset and preset.note else ""
    return format_attribution_report(
        [(row.policy, row.report) for row in result.rows],
        title=(
            f"Critical-path attribution: {result.name} "
            f"({result.app}/{result.load}){note}"
        ),
    )
