"""Shared experiment plumbing: run-length presets and small helpers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import MS


@dataclass(frozen=True)
class RunSettings:
    """How long each cluster run simulates.

    ``quick`` keeps full benchmark sweeps to a few minutes of wall time;
    ``full`` uses longer windows for tighter percentiles.
    """

    warmup_ns: int
    measure_ns: int
    drain_ns: int
    seed: int = 1

    @classmethod
    def quick(cls, seed: int = 1) -> "RunSettings":
        return cls(warmup_ns=20 * MS, measure_ns=150 * MS, drain_ns=80 * MS, seed=seed)

    @classmethod
    def standard(cls, seed: int = 1) -> "RunSettings":
        return cls(warmup_ns=20 * MS, measure_ns=250 * MS, drain_ns=100 * MS, seed=seed)

    @classmethod
    def full(cls, seed: int = 1) -> "RunSettings":
        return cls(warmup_ns=40 * MS, measure_ns=600 * MS, drain_ns=150 * MS, seed=seed)
