"""Shared experiment plumbing.

:class:`RunSettings` moved to :mod:`repro.harness.settings` when the sweep
harness grew underneath the experiment layer; it is re-exported here so
``from repro.experiments.common import RunSettings`` keeps working.
"""

from __future__ import annotations

from repro.harness.settings import RunSettings

__all__ = ["RunSettings"]
