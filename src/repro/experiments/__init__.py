"""One runner per paper table/figure, plus ablations of NCAP's knobs."""

from repro.experiments import (
    ablations,
    attribution,
    datacenter,
    energy,
    fig1_dvfs_timing,
    fig2_ondemand_period,
    fig4_correlation,
    fig7_latency_load,
    headline,
    percore,
    policy_comparison,
)
from repro.experiments.common import RunSettings

__all__ = [
    "ablations",
    "attribution",
    "datacenter",
    "energy",
    "fig1_dvfs_timing",
    "fig2_ondemand_period",
    "fig4_correlation",
    "fig7_latency_load",
    "headline",
    "percore",
    "policy_comparison",
    "RunSettings",
]
