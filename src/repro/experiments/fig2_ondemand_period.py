"""Figure 2 — Apache 95th-percentile latency vs ondemand invocation period.

The paper recompiles the Linux kernel to allow a 1 ms minimum period and
shows that the best period varies with load, and that *shorter is not
always better* because of the governor-invocation and V/F-change overheads
— the reason the minimum is hard-coded to 10 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import RunSettings
from repro.harness import ResultCache, SweepSpec, run_sweep
from repro.metrics.report import format_table
from repro.sim.units import MS


DEFAULT_PERIODS_MS = (1, 2, 5, 10)
DEFAULT_LOADS = ("low", "medium", "high")


@dataclass
class Fig2Cell:
    load: str
    period_ms: float
    p95_ms: float
    energy_j: float


def run(
    periods_ms: Sequence[float] = DEFAULT_PERIODS_MS,
    loads: Sequence[str] = DEFAULT_LOADS,
    settings: RunSettings = RunSettings.standard(),
    app: str = "apache",
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[Fig2Cell]:
    """Sweep the ondemand invocation period at each load level."""
    spec = SweepSpec(
        apps=(app,),
        policies=("ond",),
        loads=tuple(loads),
        settings=settings,
        grid=[{"ondemand_period_ns": round(p * MS)} for p in periods_ms],
    )
    specs = spec.expand()
    records = run_sweep(specs, jobs=jobs, cache=cache)
    # Expansion nests the grid (period) axis inside the load axis, so each
    # record pairs with (load, period) in the original row order.
    periods_cycle = list(periods_ms) * len(loads)
    return [
        Fig2Cell(
            load=spec.load,
            period_ms=period_ms,
            p95_ms=record.p95_ns / 1e6,
            energy_j=record.energy_j,
        )
        for spec, period_ms, record in zip(specs, periods_cycle, records)
    ]


def best_period_by_load(cells: List[Fig2Cell]) -> Dict[str, float]:
    """The latency-optimal period per load level."""
    best: Dict[str, Fig2Cell] = {}
    for cell in cells:
        current = best.get(cell.load)
        if current is None or cell.p95_ms < current.p95_ms:
            best[cell.load] = cell
    return {load: cell.period_ms for load, cell in best.items()}


def format_report(cells: List[Fig2Cell]) -> str:
    loads = sorted({c.load for c in cells}, key=["low", "medium", "high"].index)
    periods = sorted({c.period_ms for c in cells})
    index = {(c.load, c.period_ms): c for c in cells}
    rows = []
    for load in loads:
        row = [load]
        for period in periods:
            row.append(round(index[(load, period)].p95_ms, 2))
        rows.append(row)
    headers = ["load"] + [f"{p:g} ms" for p in periods]
    best = best_period_by_load(cells)
    table = format_table(
        headers, rows,
        title="Figure 2 — Apache p95 latency (ms) vs ondemand invocation period",
    )
    notes = ", ".join(f"{load}: best={best[load]:g} ms" for load in loads)
    return f"{table}\nbest period per load -> {notes}"
