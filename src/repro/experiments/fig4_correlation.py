"""Figure 4 — correlation between network activity and power management.

Reproduces the paper's Section 3 observation study: on a server running
Apache under ond.idle, the received-bandwidth surges lead utilization,
which leads frequency; the menu governor parks cores in C-states between
bursts and churns through short C-state visits as a surge begins.

Outputs:

- 1 ms-binned series of BW(Rx), BW(Tx) (normalized to their maxima, as in
  the paper), mean core utilization U, and frequency F — all sampled by
  the flight recorder (``record_timeseries=``) rather than bespoke trace
  channels;
- Pearson correlations between the series (the "strong correlation" claim);
- the ondemand reaction lag: how far F's rise trails the BW(Rx) surge
  (the paper measures ~11 ms with a 10 ms invocation period);
- per-C-state residency and entry counts (Figure 4(b)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.experiments.common import RunSettings
from repro.metrics.report import format_series, format_table
from repro.metrics.timeseries import normalized_series
from repro.sim.units import MS
from repro.telemetry.recorder import RecorderConfig, SeriesData


@dataclass
class Fig4Result:
    bw_rx: List[Tuple[int, float]]         # normalized
    bw_tx: List[Tuple[int, float]]         # normalized
    utilization: List[Tuple[int, float]]
    frequency_ghz: List[Tuple[int, float]]
    corr_rx_util: float
    corr_util_freq: float
    freq_lag_ms: Optional[float]
    cstate_residency_ns: Dict[str, int] = field(default_factory=dict)
    cstate_entries: Dict[str, int] = field(default_factory=dict)


def run(
    policy: str = "ond.idle",
    app: str = "apache",
    target_rps: float = 24_000.0,
    settings: RunSettings = RunSettings.standard(),
    bin_ns: int = 1 * MS,
) -> Fig4Result:
    config = ExperimentConfig(
        app=app,
        policy=policy,
        target_rps=target_rps,
        warmup_ns=settings.warmup_ns,
        measure_ns=settings.measure_ns,
        drain_ns=settings.drain_ns,
        seed=settings.seed,
    )
    result = run_experiment(
        config, record_timeseries=RecorderConfig(interval_ns=bin_ns)
    )
    bundle = result.timeseries
    assert bundle is not None
    start = config.warmup_ns
    end = config.warmup_ns + config.measure_ns

    bw_rx = _bandwidth_mbps(bundle.get("nic.rx.bytes"), start, end)
    bw_tx = _bandwidth_mbps(bundle.get("nic.tx.bytes"), start, end)
    util = _window(bundle.get("cpu.util"), start, end)
    freq = _window(bundle.get("cpu.freq_ghz"), start, end)

    rx_vals = np.array([v for _, v in bw_rx])
    util_vals = np.array([v for _, v in util][: len(rx_vals)])
    freq_vals = np.array([v for _, v in freq][: len(rx_vals)])
    # A BW(Rx) surge is a 1-2 ms spike, but the utilization it causes
    # persists for the whole burst drain; smooth rx over a drain-sized
    # trailing window before correlating (the paper's claim is that the
    # *surge* drives the busy period, not that the two are bin-aligned).
    rx_smoothed = _trailing_mean(rx_vals, window=8)
    corr_rx_util = _safe_corr(rx_smoothed, util_vals)
    # The ondemand governor reacts a sampling period late: correlate U
    # against F shifted by the lag that aligns them best, and report that
    # lag (the paper measures ~11 ms with a 10 ms invocation period).
    corr_util_freq, lag = _best_lagged_corr(util_vals, freq_vals, bin_ns)

    return Fig4Result(
        bw_rx=normalized_series(bw_rx),
        bw_tx=normalized_series(bw_tx),
        utilization=util,
        frequency_ghz=freq,
        corr_rx_util=corr_rx_util,
        corr_util_freq=corr_util_freq,
        freq_lag_ms=lag,
        cstate_residency_ns={
            k: v for k, v in result.energy.residency_ns.items() if k.startswith("C")
        },
        cstate_entries=result.cstate_entries,
    )


def _window(
    series: SeriesData, start_ns: int, end_ns: int
) -> List[Tuple[int, float]]:
    """Samples with ``start <= t <= end`` (the old step-series grid)."""
    return [(t, v) for t, v in series.points() if start_ns <= t <= end_ns]


def _bandwidth_mbps(
    series: SeriesData, start_ns: int, end_ns: int
) -> List[Tuple[int, float]]:
    """Per-bin bandwidth (Mb/s) from a cumulative byte counter, labelled
    by bin start (the old ``CounterChannel.rate_series`` layout)."""
    out: List[Tuple[int, float]] = []
    for i in range(1, len(series.times)):
        t_prev, t = series.times[i - 1], series.times[i]
        if not (start_ns <= t_prev < end_ns) or t <= t_prev:
            continue
        rate_bytes_s = (series.values[i] - series.values[i - 1]) * 1e9 / (t - t_prev)
        out.append((t_prev, rate_bytes_s * 8 / 1e6))
    return out


def _safe_corr(a: np.ndarray, b: np.ndarray) -> float:
    if len(a) < 2 or a.std() == 0 or b.std() == 0:
        return float("nan")
    return float(np.corrcoef(a, b)[0, 1])


def _trailing_mean(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing moving average (each point averages its last ``window``)."""
    if window <= 1 or len(values) == 0:
        return values
    kernel = np.ones(window) / window
    padded = np.concatenate([np.full(window - 1, values[0]), values])
    return np.convolve(padded, kernel, mode="valid")


def _best_lagged_corr(
    leader: np.ndarray, follower: np.ndarray, bin_ns: int, max_lag_bins: int = 25
) -> "Tuple[float, Optional[float]]":
    """Max correlation of ``follower`` against ``leader`` shifted forward,
    and the lag (ms) achieving it — how far the follower trails."""
    if len(leader) < max_lag_bins * 2:
        return _safe_corr(leader, follower), None
    best_lag, best_corr = None, float("-inf")
    for lag in range(0, max_lag_bins):
        a = leader[: len(leader) - lag] if lag else leader
        b = follower[lag:]
        corr = _safe_corr(np.asarray(a), np.asarray(b))
        if corr == corr and corr > best_corr:  # not NaN
            best_corr, best_lag = corr, lag
    if best_lag is None:
        return float("nan"), None
    return best_corr, best_lag * bin_ns / 1e6


def format_report(result: Fig4Result) -> str:
    lines = [
        "Figure 4 — network activity vs power management (ond.idle, Apache)",
        format_series("BW(Rx)", result.bw_rx),
        format_series("BW(Tx)", result.bw_tx),
        format_series("U", result.utilization),
        format_series("F (GHz)", result.frequency_ghz),
        f"corr(BW(Rx) smoothed, U) = {result.corr_rx_util:.3f}",
        f"corr(U, F @ best lag)    = {result.corr_util_freq:.3f}",
        f"ondemand reaction lag ~= {result.freq_lag_ms} ms (paper: ~11 ms late)",
    ]
    if result.cstate_residency_ns:
        rows = [
            [state,
             round(result.cstate_residency_ns.get(state, 0) / 1e6, 2),
             result.cstate_entries.get(state, 0)]
            for state in sorted(set(result.cstate_residency_ns) | set(result.cstate_entries))
        ]
        lines.append(
            format_table(
                ["C-state", "residency (ms, all cores)", "entries"],
                rows,
                title="Figure 4(b) — C-state residency over the window",
            )
        )
    return "\n".join(lines)
