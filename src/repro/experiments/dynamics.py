"""Load-dynamics experiment: NCAP tracking time-varying load.

Drives the server with a compressed "diurnal" swing (low-to-high-to-low
over a few hundred milliseconds) or a flash-crowd spike, and compares the
policies' ability to follow the load: the always-max baseline wastes
energy in the valleys, the reactive governor is late at the edges, and
NCAP rides the transitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.apps.client import http_request_factory, memcached_request_factory
from repro.apps.patterns import DiurnalPattern, LoadPattern, SpikePattern, VariableRateClient
from repro.apps.workload import default_burst_size, sla_for
from repro.cluster.node import ServerNode
from repro.cluster.policies import PolicyConfig
from repro.experiments.common import RunSettings
from repro.harness import Runner
from repro.metrics.energy import energy_delta
from repro.metrics.latency import LatencyStats
from repro.metrics.report import format_table
from repro.net.link import Link
from repro.net.switch import Switch
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.units import MS, US, gbps


@dataclass
class DynamicsRow:
    policy: str
    p95_ms: float
    energy_j: float
    meets_sla: bool


def run_pattern(
    pattern: LoadPattern,
    policy: Union[str, PolicyConfig],
    app: str = "apache",
    n_clients: int = 3,
    settings: RunSettings = RunSettings.standard(),
) -> DynamicsRow:
    """One server under ``policy`` driven by ``pattern``."""
    sim = Simulator()
    rng = RngRegistry(settings.seed)
    server = ServerNode(sim, "server", policy, app, rng)
    switch = Switch(sim)
    burst_size = max(20, default_burst_size(app) // 2)  # finer rate tracking
    clients: List[VariableRateClient] = []
    for i in range(n_clients):
        name = f"client{i}"
        if app == "apache":
            factory = http_request_factory(name, "server")
        else:
            factory = memcached_request_factory(
                name, "server", rng=rng.stream(f"{name}.keys")
            )
        clients.append(
            VariableRateClient(
                sim, name, factory, burst_size=burst_size,
                burst_period_ns=10 * MS,  # recomputed per burst
                pattern=pattern, share=1.0 / n_clients,
                jitter_rng=rng.stream(f"{name}.jitter"), jitter_fraction=0.20,
            )
        )
    server_link = Link(sim, gbps(10), 1 * US)
    server_link.attach(server, switch)
    server.attach_port(server_link.endpoint_port(server))
    switch.attach_link(server_link, "server")
    for client in clients:
        link = Link(sim, gbps(10), 1 * US)
        link.attach(client, switch)
        client.attach_port(link.endpoint_port(client))
        switch.attach_link(link, client.name)

    server.start()
    for client in clients:
        client.start()
    window_start = settings.warmup_ns
    window_end = settings.warmup_ns + settings.measure_ns
    snapshots = {}
    sim.schedule_at(window_start, lambda: snapshots.__setitem__("a", server.package.energy_report()))
    sim.schedule_at(window_end, lambda: snapshots.__setitem__("b", server.package.energy_report()))
    for client in clients:
        sim.schedule_at(window_end, client.stop)
    sim.run(until=window_end + settings.drain_ns)

    rtts = []
    for client in clients:
        rtts.extend(client.rtts_in_window(window_start, window_end))
    latency = LatencyStats.from_values(rtts)
    energy = energy_delta(snapshots["a"], snapshots["b"])
    name = policy if isinstance(policy, str) else policy.name
    return DynamicsRow(
        policy=name,
        p95_ms=latency.p95_ns / 1e6,
        energy_j=energy.energy_j,
        meets_sla=latency.meets_sla(sla_for(app)),
    )


def _pattern_task(args) -> DynamicsRow:
    pattern, policy, app, settings = args
    return run_pattern(pattern, policy, app=app, settings=settings)


def _run_policies(
    pattern: LoadPattern,
    app: str,
    settings: RunSettings,
    jobs: Optional[int],
    policies=("perf", "ond.idle", "ncap.cons"),
) -> List[DynamicsRow]:
    tasks = [(pattern, policy, app, settings) for policy in policies]
    return Runner(jobs=jobs).map(_pattern_task, tasks)


def diurnal(
    app: str = "apache",
    settings: RunSettings = RunSettings.standard(),
    jobs: Optional[int] = None,
):
    """Half-day valley-peak-valley swing between 20% and 90% of capacity."""
    peak = 60_000 if app == "apache" else 130_000
    base = peak / 4
    pattern = DiurnalPattern(
        base_rps=base, peak_rps=peak,
        period_ns=settings.measure_ns, phase=-1.5707963,  # start at the valley
    )
    return _run_policies(pattern, app, settings, jobs)


def flash_crowd(
    app: str = "apache",
    settings: RunSettings = RunSettings.standard(),
    jobs: Optional[int] = None,
):
    """A quiet service hit by a 5x flash crowd for a fifth of the window."""
    base = 10_000 if app == "apache" else 20_000
    pattern = SpikePattern(
        base_rps=base,
        spike_rps=base * 5,
        spike_start_ns=settings.warmup_ns + settings.measure_ns // 2,
        spike_len_ns=settings.measure_ns // 5,
    )
    return _run_policies(pattern, app, settings, jobs)


def format_report(rows: List[DynamicsRow], title: str) -> str:
    base = rows[0].energy_j
    return format_table(
        ["policy", "p95 (ms)", "energy (J)", "vs perf", "SLA"],
        [
            [r.policy, round(r.p95_ms, 2), round(r.energy_j, 2),
             round(r.energy_j / base, 3), "ok" if r.meets_sla else "VIOLATED"]
            for r in rows
        ],
        title=title,
    )
