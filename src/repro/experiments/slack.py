"""Section 7 — exploiting NCAP's latency slack for further savings.

"NCAP exhibit[s] some slack between the achieved 95th-percentile latency
and the SLA.  This slack can be exploited for further reduction of energy
consumption using other techniques [12, 34]."

Runs ``ncap.cons`` plain and with the :class:`SlackController` riding on
top (a Pegasus-style feedback cap on the cpufreq driver), and reports the
extra energy reduction the controller buys and the latency it trades.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.workload import load_level
from repro.cluster.simulation import Cluster, ExperimentConfig
from repro.experiments.common import RunSettings
from repro.ext.slack import SlackController
from repro.metrics.report import format_table


@dataclass
class SlackRow:
    system: str
    p95_ms: float
    p95_over_sla: float
    energy_j: float
    meets_sla: bool
    cap_steps: int
    panics: int


def run(
    app: str = "apache",
    load: str = "low",
    settings: RunSettings = RunSettings.standard(),
    target: float = 0.65,
) -> List[SlackRow]:
    level = load_level(app, load)
    rows = []
    for with_slack in (False, True):
        config = ExperimentConfig(
            app=app, policy="ncap.cons", target_rps=level.target_rps,
            warmup_ns=settings.warmup_ns, measure_ns=settings.measure_ns,
            drain_ns=settings.drain_ns, seed=settings.seed,
        )
        cluster = Cluster(config)
        controller = None
        if with_slack:
            controller = SlackController(
                cluster.sim,
                cluster.server.cpufreq,
                cluster.server.irq,
                sla_ns=config.sla_ns,
                target=target,
            )
            cluster.server.app.latency_listeners.append(controller.observe)
            controller.start()
        result = cluster.run()
        rows.append(
            SlackRow(
                system="ncap.cons + slack" if with_slack else "ncap.cons",
                p95_ms=result.latency.p95_ns / 1e6,
                p95_over_sla=result.latency.p95_ns / result.sla_ns,
                energy_j=result.energy.energy_j,
                meets_sla=result.meets_sla,
                cap_steps=controller.steps_down if controller else 0,
                panics=controller.panics if controller else 0,
            )
        )
    return rows


def format_report(rows: List[SlackRow], app: str, load: str) -> str:
    table = format_table(
        ["system", "p95 (ms)", "p95/SLA", "energy (J)", "SLA", "cap steps", "panics"],
        [
            [r.system, round(r.p95_ms, 2), round(r.p95_over_sla, 3),
             round(r.energy_j, 2), "ok" if r.meets_sla else "VIOLATED",
             r.cap_steps, r.panics]
            for r in rows
        ],
        title=f"Section 7 — slack exploitation atop NCAP ({app} @ {load})",
    )
    plain, slack = rows
    table += (
        f"\nextra saving from slack controller: "
        f"{(1 - slack.energy_j / plain.energy_j) * 100:.1f}%"
    )
    return table
