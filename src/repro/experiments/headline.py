"""The paper's headline numbers, derived from the Figure 8/9 runs.

Abstract / Section 1 claims:

- a server deploying NCAP consumes **37–61 % lower processor energy than
  the baseline** (``perf``) while satisfying the SLA (low-to-medium load);
- NCAP consumes **21–49 % lower energy than the most energy-efficient
  SLA-satisfying conventional policy**;
- ``ncap.sw`` saves less and degrades latency relative to hardware NCAP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments import policy_comparison
from repro.experiments.common import RunSettings
from repro.experiments.policy_comparison import ComparisonResult
from repro.harness import ResultCache
from repro.metrics.report import format_table

CONVENTIONAL = ("perf", "ond", "perf.idle", "ond.idle")
NCAP_HW = ("ncap.cons", "ncap.aggr")


def run(
    apps: Sequence[str] = ("apache", "memcached"),
    loads: Sequence[str] = ("low", "medium"),
    settings: RunSettings = RunSettings.standard(),
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List["HeadlineRow"]:
    """Run the Figure 8/9 grids for ``apps`` and derive the headline table."""
    results = [
        policy_comparison.run(
            app, loads=loads, settings=settings, snapshot_policies=(),
            jobs=jobs, cache=cache,
        )
        for app in apps
    ]
    return derive(results, loads=loads)


@dataclass
class HeadlineRow:
    app: str
    load: str
    best_ncap: str
    ncap_vs_perf_saving_pct: float
    best_conventional: Optional[str]
    ncap_vs_conventional_saving_pct: Optional[float]
    ncap_sw_vs_perf_saving_pct: float
    ncap_meets_sla: bool


def derive(results: Sequence[ComparisonResult], loads=("low", "medium")) -> List[HeadlineRow]:
    """Compute the headline comparisons at the low/medium load levels."""
    rows: List[HeadlineRow] = []
    for comparison in results:
        for load in loads:
            ncap_rows = [
                comparison.row(p, load) for p in NCAP_HW
                if _has(comparison, p, load)
            ]
            ncap_rows = [r for r in ncap_rows if r.meets_sla] or ncap_rows
            best_ncap = min(ncap_rows, key=lambda r: r.energy_rel_perf)

            conventional = [
                comparison.row(p, load) for p in CONVENTIONAL
                if _has(comparison, p, load)
            ]
            sla_ok = [r for r in conventional if r.meets_sla]
            best_conv = (
                min(sla_ok, key=lambda r: r.energy_rel_perf) if sla_ok else None
            )
            sw = comparison.row("ncap.sw", load) if _has(comparison, "ncap.sw", load) else None
            rows.append(
                HeadlineRow(
                    app=comparison.app,
                    load=load,
                    best_ncap=best_ncap.policy,
                    ncap_vs_perf_saving_pct=(1 - best_ncap.energy_rel_perf) * 100,
                    best_conventional=best_conv.policy if best_conv else None,
                    ncap_vs_conventional_saving_pct=(
                        (1 - best_ncap.energy_rel_perf / best_conv.energy_rel_perf) * 100
                        if best_conv
                        else None
                    ),
                    ncap_sw_vs_perf_saving_pct=(
                        (1 - sw.energy_rel_perf) * 100 if sw else float("nan")
                    ),
                    ncap_meets_sla=best_ncap.meets_sla,
                )
            )
    return rows


def _has(comparison: ComparisonResult, policy: str, load: str) -> bool:
    try:
        comparison.row(policy, load)
        return True
    except KeyError:
        return False


def format_report(rows: List[HeadlineRow]) -> str:
    table = format_table(
        ["app", "load", "best NCAP", "vs perf (%)", "best conv (SLA-ok)",
         "vs conv (%)", "ncap.sw vs perf (%)", "NCAP SLA"],
        [
            [r.app, r.load, r.best_ncap, round(r.ncap_vs_perf_saving_pct, 1),
             r.best_conventional or "-",
             round(r.ncap_vs_conventional_saving_pct, 1)
             if r.ncap_vs_conventional_saving_pct is not None else "-",
             round(r.ncap_sw_vs_perf_saving_pct, 1),
             "ok" if r.ncap_meets_sla else "VIOLATED"]
            for r in rows
        ],
        title="Headline — NCAP energy savings (paper: 37-61% vs baseline, "
              "21-49% vs best SLA-satisfying conventional)",
    )
    savings = [r.ncap_vs_perf_saving_pct for r in rows]
    table += f"\nNCAP-vs-baseline saving range: {min(savings):.0f}% .. {max(savings):.0f}%"
    return table
