"""Figure 7 — 95th-percentile latency versus load; SLA at the inflexion.

The paper sweeps offered load with the ``perf`` policy and sets the SLA to
the 95th-percentile latency at the latency-load curve's inflexion point
(41 ms for Apache, 3 ms for Memcached on its testbed).  This experiment
regenerates the curve on our substrate and locates the knee the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.common import RunSettings
from repro.harness import ResultCache, SweepSpec, run_sweep
from repro.metrics.report import format_table


APACHE_SWEEP_RPS = (24_000, 45_000, 60_000, 66_000, 70_000, 74_000, 78_000)
MEMCACHED_SWEEP_RPS = (35_000, 90_000, 127_000, 138_000, 143_000, 148_000, 156_000)


@dataclass
class LoadPoint:
    target_rps: float
    p95_ms: float
    p50_ms: float
    achieved_rps: float


@dataclass
class Fig7Result:
    app: str
    points: List[LoadPoint]
    knee_rps: Optional[float]
    sla_at_knee_ms: Optional[float]


def run(
    app: str = "apache",
    sweep_rps: Optional[Sequence[float]] = None,
    policy: str = "perf",
    settings: RunSettings = RunSettings.standard(),
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Fig7Result:
    if sweep_rps is None:
        sweep_rps = APACHE_SWEEP_RPS if app == "apache" else MEMCACHED_SWEEP_RPS
    records = run_sweep(
        SweepSpec(
            apps=(app,), policies=(policy,), loads=tuple(sweep_rps),
            settings=settings,
        ),
        jobs=jobs, cache=cache,
    )
    points = [
        LoadPoint(
            target_rps=rps,
            p95_ms=record.p95_ns / 1e6,
            p50_ms=record.p50_ns / 1e6,
            achieved_rps=record.achieved_rps,
        )
        for rps, record in zip(sweep_rps, records)
    ]
    knee_rps, sla_ms = find_knee(points)
    return Fig7Result(app=app, points=points, knee_rps=knee_rps, sla_at_knee_ms=sla_ms)


def find_knee(points: List[LoadPoint]) -> Tuple[Optional[float], Optional[float]]:
    """First load whose p95 exceeds 2x the flat-region (lowest-load) p95.

    A simple, reproducible inflexion criterion: the latency-load curve of an
    open-loop bursty system is flat until the knee and then rises steeply.
    """
    if len(points) < 2:
        return None, None
    flat = points[0].p95_ms
    for point in points[1:]:
        if point.p95_ms > 2 * flat:
            return point.target_rps, point.p95_ms
    return None, None


def format_report(result: Fig7Result) -> str:
    table = format_table(
        ["target RPS", "p50 (ms)", "p95 (ms)", "achieved RPS"],
        [
            [f"{p.target_rps/1000:.0f}K", round(p.p50_ms, 2), round(p.p95_ms, 2),
             f"{p.achieved_rps/1000:.1f}K"]
            for p in result.points
        ],
        title=f"Figure 7 — latency vs load ({result.app}, perf policy)",
    )
    if result.knee_rps is not None:
        table += (
            f"\ninflexion ~= {result.knee_rps/1000:.0f}K RPS, "
            f"p95 there = {result.sla_at_knee_ms:.1f} ms -> SLA"
        )
    else:
        table += "\nno inflexion found in the sweep range"
    return table
