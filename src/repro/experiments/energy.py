"""Energy provenance experiments: blame the joules, per policy.

Runs a small set of policies on one workload with the energy
decomposition (:mod:`repro.analysis.energy`) and governor-miss
accounting (:class:`repro.oskernel.cpuidle.IdleAccounting`) attached,
then renders the per-policy blame tables: *"under ond.idle, X J are
wasted-shallow because the menu governor picked too shallow; under
NCAP, Y J"* — plus an optional two-policy component diff.

Single-node presets (``headline``, ``fig4``) mirror the attribution
experiments; the ``frontend`` preset exercises the sharded datacenter
path, so the reported attribution is a fleet merge across servers.

Exposed on the CLI as ``repro energy <experiment> [--diff POLICY]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.energy import (
    EnergyAttribution,
    format_energy_blame,
    format_energy_diff,
    format_governor_misses,
)
from repro.apps.workload import load_level
from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.harness.cache import ResultCache
from repro.harness.hashing import config_hash
from repro.harness.record import ResultRecord
from repro.harness.runner import Runner
from repro.harness.settings import RunSettings
from repro.metrics.latency import LatencyStats


@dataclass(frozen=True)
class EnergyPreset:
    """One named energy experiment: a workload and a policy set.

    ``fleet`` names a :data:`repro.experiments.datacenter.PRESETS` shape
    instead of a single-node app/load pair; the policies then run as
    sharded datacenter sweeps and each row carries the fleet-merged
    attribution.
    """

    app: str
    load: str
    policies: Tuple[str, ...]
    note: str = ""
    fleet: Optional[str] = None


#: Named experiments.  ``headline`` contrasts the reactive baseline, the
#: deep-idle variant (where the menu governor actually grades), and NCAP;
#: ``fig4`` keeps the wake/ramp pair; ``frontend`` is the CI-scale
#: sharded fleet (memcached behind the po2 frontend tier).
PRESETS: Dict[str, EnergyPreset] = {
    "headline": EnergyPreset(
        app="apache",
        load="low",
        policies=("ond", "ond.idle", "ncap.cons"),
        note="reactive baselines vs NCAP on the abstract's workload",
    ),
    "fig4": EnergyPreset(
        app="apache",
        load="low",
        policies=("ond.idle", "ncap.cons"),
        note="wake/ramp correlation pair",
    ),
    "frontend": EnergyPreset(
        app="memcached",
        load="fleet",
        policies=("perf", "ncap.cons"),
        note="fleet-merged attribution across the sharded frontend preset",
        fleet="frontend",
    ),
}


@dataclass
class EnergyRow:
    """One policy's run: latency summary plus the energy attribution."""

    policy: str
    latency: LatencyStats
    attribution: EnergyAttribution


@dataclass
class EnergyResult:
    name: str
    app: str
    load: str
    rows: List[EnergyRow]

    def row(self, policy: str) -> EnergyRow:
        for row in self.rows:
            if row.policy == policy:
                return row
        raise KeyError(f"no energy row for policy {policy!r}")


def _policy_config(
    preset: EnergyPreset, policy: str, settings: RunSettings
) -> ExperimentConfig:
    level = load_level(preset.app, preset.load)
    return ExperimentConfig.from_settings(
        settings, app=preset.app, policy=policy,
        target_rps=level.target_rps,
    )


def _run_one(
    task: Tuple[str, str, str, RunSettings, bool],
) -> Tuple[EnergyRow, ResultRecord]:
    """Process-pool worker: one policy's attributed run (module-level,
    picklable).  Also returns the full record so the parent can land it
    in the result cache."""
    app, load, policy, settings, audit = task
    level = load_level(app, load)
    config = ExperimentConfig.from_settings(
        settings, app=app, policy=policy, target_rps=level.target_rps
    )
    result = run_experiment(config, audit=audit, energy_attribution=True)
    assert result.energy_attribution is not None
    row = EnergyRow(
        policy=policy,
        latency=result.latency,
        attribution=result.energy_attribution,
    )
    record = ResultRecord.from_result(
        result, config_hash=config_hash(config), seed=config.seed
    )
    return row, record


def _run_fleet(preset_name: str, fleet: str, policies: Tuple[str, ...],
               jobs: Optional[int]) -> List[EnergyRow]:
    """Fleet path: each policy is a sharded datacenter run (which owns its
    own worker pool), so policies run serially here."""
    from repro.experiments.datacenter import run_preset

    rows = []
    for policy in policies:
        result = run_preset(
            fleet,
            overrides={"policy": policy},
            jobs=jobs,
            energy_attribution=True,
        )
        attribution = result.record.energy_attribution_report()
        if attribution is None:
            raise RuntimeError(
                f"fleet preset {fleet!r} produced no energy attribution"
            )
        rows.append(
            EnergyRow(
                policy=policy,
                latency=result.record.latency,
                attribution=attribution,
            )
        )
    return rows


def run(
    name: str = "headline",
    settings: RunSettings = RunSettings.standard(),
    jobs: Optional[int] = None,
    audit: bool = True,
    cache: Optional[ResultCache] = None,
) -> EnergyResult:
    """Run the named preset; one attributed run per policy.

    The attribution is a run-time observer, so it never enters the
    config hash — a policy's cache key is the same whether the record
    came from a plain sweep or an energy run.  With a ``cache``, a
    cached record that *carries* an attribution payload is reused
    directly (no re-simulation — this is what lets ``--diff`` compare
    against a previously swept baseline); a cached record without one
    still re-runs, and the refreshed record (now attributed) replaces
    it, upgrading the cache entry in place.
    """
    try:
        preset = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown energy experiment {name!r}; "
            f"choose from {sorted(PRESETS)}"
        ) from None
    if preset.fleet is not None:
        rows = _run_fleet(name, preset.fleet, preset.policies, jobs)
    else:
        rows_by_policy: Dict[str, EnergyRow] = {}
        pending: List[str] = []
        for policy in preset.policies:
            cached = None
            if cache is not None:
                cached = cache.get(
                    config_hash(_policy_config(preset, policy, settings))
                )
            attribution = (
                cached.energy_attribution_report()
                if cached is not None else None
            )
            if cached is not None and attribution is not None:
                cached.from_cache = True
                rows_by_policy[policy] = EnergyRow(
                    policy=policy,
                    latency=cached.latency,
                    attribution=attribution,
                )
            else:
                pending.append(policy)
        tasks = [
            (preset.app, preset.load, policy, settings, audit)
            for policy in pending
        ]
        for row, record in Runner(jobs=jobs).map(_run_one, tasks):
            if cache is not None:
                cache.put(record)
            rows_by_policy[row.policy] = row
        rows = [rows_by_policy[policy] for policy in preset.policies]
    return EnergyResult(
        name=name, app=preset.app, load=preset.load, rows=rows
    )


def format_report(result: EnergyResult, diff: Optional[str] = None) -> str:
    """Blame + governor-miss tables; ``diff`` adds a component diff of the
    last policy against the named baseline policy."""
    preset = PRESETS.get(result.name)
    note = f" — {preset.note}" if preset and preset.note else ""
    pairs = [(row.policy, row.attribution) for row in result.rows]
    out = format_energy_blame(
        pairs,
        title=(
            f"Energy provenance: {result.name} "
            f"({result.app}/{result.load}){note}"
        ),
    )
    out += "\n\n" + format_governor_misses(pairs)
    worst = max(
        (row for row in result.rows),
        key=lambda row: row.attribution.wasted_shallow_j,
    )
    out += (
        f"\nconservation: max |error| "
        f"{max(abs(r.attribution.conservation_error_j) for r in result.rows):.2e} J"
        f" | largest wasted-shallow: {worst.policy} "
        f"({worst.attribution.wasted_shallow_j:.4f} J)"
    )
    if diff is not None:
        base = result.row(diff)
        others = [row for row in result.rows if row.policy != diff]
        if not others:
            raise ValueError(
                f"--diff {diff!r} needs a second policy to compare against"
            )
        target = others[-1]
        out += "\n\n" + format_energy_diff(
            base.policy, base.attribution, target.policy, target.attribution
        )
    return out
