"""Section 8 comparison — NCAP versus an Adrenaline-style baseline.

The paper argues (without measuring) that NCAP beats Adrenaline because
it detects latency-critical requests "at the lowest network layer", needs
no special on-chip voltage regulators, and also *lowers* performance
proactively by watching the transmit rate.  With both systems implemented
on the same substrate, this experiment measures the comparison.

Note what the baseline gets that NCAP does not: per-core VRs that switch
in ~100 ns.  What it pays: software detection only after the packet has
crossed DMA + moderation + SoftIRQ, per-packet classification cycles, and
no proactive C-state wake (its cores still eat the full exit latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apps.client import (
    OpenLoopClient,
    http_request_factory,
    memcached_request_factory,
)
from repro.apps.workload import burst_period_ns, default_burst_size, load_level, sla_for
from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.experiments.common import RunSettings
from repro.ext.adrenaline import AdrenalineServerNode
from repro.harness import Runner
from repro.metrics.energy import energy_delta
from repro.metrics.latency import LatencyStats
from repro.metrics.report import format_table
from repro.net.link import Link
from repro.net.switch import Switch
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.units import US, gbps


@dataclass
class BaselineRow:
    system: str
    p95_ms: float
    p99_ms: float
    energy_j: float
    meets_sla: bool


def run_adrenaline(
    app: str,
    target_rps: float,
    settings: RunSettings = RunSettings.standard(),
    n_clients: int = 3,
) -> BaselineRow:
    sim = Simulator()
    rng = RngRegistry(settings.seed)
    server = AdrenalineServerNode(sim, "server", app, rng)
    server.start()
    switch = Switch(sim)
    burst_size = default_burst_size(app)
    period = burst_period_ns(target_rps, n_clients, burst_size)
    clients: List[OpenLoopClient] = []
    for i in range(n_clients):
        name = f"client{i}"
        if app == "apache":
            factory = http_request_factory(name, "server")
        else:
            factory = memcached_request_factory(
                name, "server", rng=rng.stream(f"{name}.keys")
            )
        clients.append(
            OpenLoopClient(
                sim, name, factory, burst_size=burst_size, burst_period_ns=period,
                jitter_rng=rng.stream(f"{name}.jitter"), jitter_fraction=0.30,
            )
        )
    server_link = Link(sim, gbps(10), 1 * US)
    server_link.attach(server, switch)
    server.attach_port(server_link.endpoint_port(server))
    switch.attach_link(server_link, "server")
    for client in clients:
        link = Link(sim, gbps(10), 1 * US)
        link.attach(client, switch)
        client.attach_port(link.endpoint_port(client))
        switch.attach_link(link, client.name)
        client.start()

    window_start = settings.warmup_ns
    window_end = settings.warmup_ns + settings.measure_ns
    snapshots = {}
    sim.schedule_at(window_start, lambda: snapshots.__setitem__("a", server.energy_report()))
    sim.schedule_at(window_end, lambda: snapshots.__setitem__("b", server.energy_report()))
    for client in clients:
        sim.schedule_at(window_end, client.stop)
    sim.run(until=window_end + settings.drain_ns)

    rtts = []
    for client in clients:
        rtts.extend(client.rtts_in_window(window_start, window_end))
    latency = LatencyStats.from_values(rtts)
    energy = energy_delta(snapshots["a"], snapshots["b"])
    return BaselineRow(
        system="adrenaline",
        p95_ms=latency.p95_ns / 1e6,
        p99_ms=latency.p99_ns / 1e6,
        energy_j=energy.energy_j,
        meets_sla=latency.meets_sla(sla_for(app)),
    )


def _system_task(args) -> BaselineRow:
    system, app, target_rps, settings = args
    if system == "adrenaline":
        return run_adrenaline(app, target_rps, settings=settings)
    result = run_experiment(
        ExperimentConfig.from_settings(
            settings, app=app, policy=system, target_rps=target_rps,
        )
    )
    return BaselineRow(
        system=system,
        p95_ms=result.latency.p95_ns / 1e6,
        p99_ms=result.latency.p99_ns / 1e6,
        energy_j=result.energy.energy_j,
        meets_sla=result.meets_sla,
    )


def run(
    app: str = "memcached",
    load: str = "low",
    settings: RunSettings = RunSettings.standard(),
    jobs: Optional[int] = None,
) -> List[BaselineRow]:
    """ncap.cons and ncap.sw versus the Adrenaline-style baseline."""
    level = load_level(app, load)
    tasks = [
        (system, app, level.target_rps, settings)
        for system in ("ncap.cons", "ncap.sw", "adrenaline")
    ]
    return Runner(jobs=jobs).map(_system_task, tasks)


def format_report(rows: List[BaselineRow], app: str, load: str) -> str:
    return format_table(
        ["system", "p95 (ms)", "p99 (ms)", "energy (J)", "SLA"],
        [
            [r.system, round(r.p95_ms, 2), round(r.p99_ms, 2),
             round(r.energy_j, 2), "ok" if r.meets_sla else "VIOLATED"]
            for r in rows
        ],
        title=f"Section 8 — NCAP vs Adrenaline-style baseline ({app} @ {load})",
    )
