"""Figure 1 — V/F transition timing and the halt window.

The paper's Figure 1 illustrates the P-state change sequence: voltage ramps
at 6.25 mV/µs before an up-transition, and the core halts for the PLL
relock around every frequency switch.  This experiment reproduces the
figure as a timing table, measured on a *live* core (not just the timing
model): a single core executes a job while the package walks a P-state
ladder, and we verify where the stall windows land.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cpu import Job, ProcessorConfig
from repro.metrics.report import format_table
from repro.sim import Simulator
from repro.sim.units import US


@dataclass
class TransitionRow:
    from_index: int
    to_index: int
    ramp_us: float
    halt_us: float
    total_us: float
    measured_job_delay_us: float


def run(processor: ProcessorConfig = ProcessorConfig()) -> List[TransitionRow]:
    """Measure a representative set of transitions (Figure 1)."""
    table = processor.pstate_table()
    timing = processor.dvfs_timing()
    pairs = [
        (table.max_index, 0),   # lowest -> highest (the slow direction)
        (0, table.max_index),   # highest -> lowest (the fast direction)
        (table.max_index, table.max_index // 2),
        (table.max_index // 2, 0),
        (7, 6),                 # one-step up
        (6, 7),                 # one-step down
    ]
    rows = []
    for src, dst in pairs:
        ramp_ns, halt_ns = timing.plan(table[src], table[dst])

        # Live measurement: a job that would take exactly 100 us at the
        # source frequency is delayed by the halt window (and runs at a
        # different speed after the switch).
        sim = Simulator()
        package = ProcessorConfig(
            n_cores=1, initial_pstate=src
        ).build_package(sim)
        done = []
        baseline_us = 100.0
        cycles = table[src].freq_hz * baseline_us * 1e-6
        package.cores[0].dispatch(Job(cycles, on_complete=lambda: done.append(sim.now)))
        package.set_pstate(dst)
        sim.run()
        measured_delay_us = done[0] / US - baseline_us

        rows.append(
            TransitionRow(
                from_index=src,
                to_index=dst,
                ramp_us=ramp_ns / US,
                halt_us=halt_ns / US,
                total_us=(ramp_ns + halt_ns) / US,
                measured_job_delay_us=measured_delay_us,
            )
        )
    return rows


def format_report(rows: List[TransitionRow]) -> str:
    return format_table(
        ["from", "to", "V-ramp (us)", "PLL halt (us)", "total (us)", "job delay (us)"],
        [
            [f"P{r.from_index}", f"P{r.to_index}", r.ramp_us, r.halt_us,
             r.total_us, round(r.measured_job_delay_us, 2)]
            for r in rows
        ],
        title="Figure 1 — P-state transition timing (V ramp 6.25 mV/us, 5 us PLL relock)",
    )
