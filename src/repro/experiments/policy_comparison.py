"""Figures 8 and 9 — the paper's main evaluation.

For one application (Apache = Figure 8, Memcached = Figure 9):

- **left panels**: response-time distribution (p50/p90/p95/p99, normalized
  to the SLA) for all seven policies at each load level;
- **middle panels**: processor energy normalized to ``perf``;
- **right panels**: a BW(Rx)-versus-F snapshot for ``ond.idle`` (top) and
  ``ncap.cons`` (bottom), with the proactive "INT (wake)" interrupt times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.apps.workload import load_level
from repro.cluster.policies import POLICY_ORDER
from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.experiments.common import RunSettings
from repro.harness import ResultCache, SweepSpec, run_sweep
from repro.metrics.report import format_series, format_table
from repro.metrics.timeseries import bandwidth_series_mbps, normalized_series
from repro.sim.units import MS


@dataclass
class PolicyRow:
    policy: str
    load: str
    p50_norm: float
    p90_norm: float
    p95_norm: float
    p99_norm: float
    energy_rel_perf: float
    meets_sla: bool
    mean_ms: float
    energy_j: float


@dataclass
class Snapshot:
    policy: str
    bw_rx: List[Tuple[int, float]]       # normalized 1 ms bins
    frequency_ghz: List[Tuple[int, float]]
    wake_interrupts_ns: List[int]


@dataclass
class ComparisonResult:
    app: str
    rows: List[PolicyRow]
    snapshots: List[Snapshot] = field(default_factory=list)

    def row(self, policy: str, load: str) -> PolicyRow:
        for r in self.rows:
            if r.policy == policy and r.load == load:
                return r
        raise KeyError((policy, load))

    def energy_rel(self, policy: str, load: str) -> float:
        return self.row(policy, load).energy_rel_perf


def run(
    app: str = "apache",
    loads: Sequence[str] = ("low", "medium", "high"),
    policies: Sequence[str] = tuple(POLICY_ORDER),
    settings: RunSettings = RunSettings.standard(),
    snapshot_policies: Sequence[str] = ("ond.idle", "ncap.cons"),
    snapshot_load: str = "low",
    snapshot_window_ms: int = 200,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> ComparisonResult:
    specs = SweepSpec(
        apps=(app,), policies=tuple(policies), loads=tuple(loads),
        settings=settings,
    ).expand()
    records = run_sweep(specs, jobs=jobs, cache=cache)

    rows: List[PolicyRow] = []
    for load in loads:
        perf_energy: Optional[float] = None
        for record in (
            r for s, r in zip(specs, records) if s.load == load
        ):
            if record.policy == "perf":
                perf_energy = record.energy_j
            assert perf_energy is not None, "run the perf policy first"
            norm = record.normalized_latency
            rows.append(
                PolicyRow(
                    policy=record.policy,
                    load=load,
                    p50_norm=norm["p50"],
                    p90_norm=norm["p90"],
                    p95_norm=norm["p95"],
                    p99_norm=norm["p99"],
                    energy_rel_perf=record.energy_j / perf_energy,
                    meets_sla=record.meets_sla,
                    mean_ms=record.mean_ns / 1e6,
                    energy_j=record.energy_j,
                )
            )

    # Snapshots need the live trace and engine, so they stay out of the
    # record pipeline and run in-process.
    snapshots = [
        _snapshot(app, policy, snapshot_load, settings, snapshot_window_ms)
        for policy in snapshot_policies
    ]
    return ComparisonResult(app=app, rows=rows, snapshots=snapshots)


def _snapshot(
    app: str, policy: str, load: str, settings: RunSettings, window_ms: int
) -> Snapshot:
    level = load_level(app, load)
    config = ExperimentConfig.from_settings(
        settings,
        app=app,
        policy=policy,
        target_rps=level.target_rps,
        collect_traces=True,
        measure_ns=min(settings.measure_ns, window_ms * MS),
    )
    result = run_experiment(config, keep_server=True)
    trace = result.trace
    assert trace is not None
    start = config.warmup_ns
    end = config.warmup_ns + config.measure_ns
    bw_rx = bandwidth_series_mbps(trace, "server.rx_bytes", start, end, 1 * MS)
    freq = trace.event_channel("server.cpu.freq_ghz").step_series(
        start, end, 1 * MS, default=3.1
    )
    wakes: List[int] = []
    engine = result.server.engine if result.server else None
    if engine is not None:
        wakes = [t for t in engine.wake_interrupt_times() if start <= t < end]
    return Snapshot(
        policy=policy,
        bw_rx=normalized_series(bw_rx),
        frequency_ghz=freq,
        wake_interrupts_ns=wakes,
    )


def format_report(result: ComparisonResult, figure_name: str = "") -> str:
    loads = []
    for row in result.rows:
        if row.load not in loads:
            loads.append(row.load)
    lines = []
    title = figure_name or ("Figure 8" if result.app == "apache" else "Figure 9")
    for load in loads:
        rows = [r for r in result.rows if r.load == load]
        lines.append(
            format_table(
                ["policy", "p50/SLA", "p90/SLA", "p95/SLA", "p99/SLA",
                 "energy vs perf", "SLA"],
                [
                    [r.policy, round(r.p50_norm, 3), round(r.p90_norm, 3),
                     round(r.p95_norm, 3), round(r.p99_norm, 3),
                     round(r.energy_rel_perf, 3),
                     "ok" if r.meets_sla else "VIOLATED"]
                    for r in rows
                ],
                title=f"{title} — {result.app} @ {load} load",
            )
        )
    for snap in result.snapshots:
        lines.append(f"-- snapshot: {snap.policy} --")
        lines.append(format_series("BW(Rx)", snap.bw_rx))
        lines.append(format_series("F (GHz)", snap.frequency_ghz))
        if snap.wake_interrupts_ns:
            lines.append(
                f"  INT (wake) x{len(snap.wake_interrupts_ns)}, first at "
                f"{snap.wake_interrupts_ns[0] / 1e6:.2f} ms"
            )
    return "\n".join(lines)
