"""The energy-vs-p99 Pareto frontier: the figure the repo builds toward.

The NCAP paper's whole argument is a trade-off claim — deep-sleep energy
savings *without* tail-latency loss versus ondemand — so the decisive
figure is not any single run but the frontier: every (policy, load)
point plotted as joules-per-request against p99, with the non-dominated
set drawn as the achievable boundary.  This experiment sweeps policies ×
load points through the PR 1 sweep harness (cache-aware, serial or
process-pool) and classifies each point by Pareto dominance on
minimize(J/req, p99).

Determinism contract: the frontier dataset is a pure function of the
sweep's ResultRecords, which the harness returns in spec order and
byte-identically across pool sizes, and the JSON serialization is
canonical (sorted keys, no wall-clock fields) — so serial and pooled
executions of the same grid must produce *byte-identical* dataset files.
The pareto-smoke CI job asserts exactly that.

Exposed on the CLI as ``repro pareto [preset]``; rendered by
:mod:`repro.viz.frontier`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.compare import joules_per_request, load_label
from repro.harness.cache import ResultCache
from repro.harness.hashing import config_hash
from repro.harness.record import ResultRecord
from repro.harness.runner import Runner, run_sweep
from repro.harness.settings import RunSettings
from repro.harness.spec import RunSpec, SweepSpec
from repro.metrics.report import format_table

#: Canonical dataset schema; bumped when the point layout changes.
FRONTIER_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ParetoPreset:
    """One named frontier experiment: apps × policies × load points.

    Loads are explicit offered rates (requests/s), not level names, so a
    preset pins the exact grid independent of per-app level tables.
    """

    apps: Tuple[str, ...]
    policies: Tuple[str, ...]
    loads: Tuple[float, ...]
    note: str = ""


#: Named experiments.  ``headline`` is the ROADMAP item-5 figure: every
#: headline policy across four load points spanning idle-dominated to
#: near-saturation apache; ``memcached`` repeats it on the second paper
#: workload; ``smoke`` is the two-policy grid the CI job runs.
PRESETS: Dict[str, ParetoPreset] = {
    "headline": ParetoPreset(
        apps=("apache",),
        policies=("perf", "ond", "ond.idle", "ncap.cons"),
        loads=(12_000.0, 24_000.0, 36_000.0, 48_000.0),
        note="all headline policies across the apache load range",
    ),
    "memcached": ParetoPreset(
        apps=("memcached",),
        policies=("perf", "ond", "ond.idle", "ncap.cons"),
        loads=(35_000.0, 70_000.0, 105_000.0, 127_000.0),
        note="the same frontier on the second paper workload",
    ),
    "smoke": ParetoPreset(
        apps=("apache",),
        policies=("perf", "ncap.cons"),
        loads=(12_000.0, 24_000.0),
        note="CI-sized grid for the determinism gate",
    ),
}


@dataclass
class FrontierPoint:
    """One (app, policy, load, seed) run projected onto the frontier plane."""

    app: str
    policy: str
    target_rps: float
    seed: int
    joules_per_request: float
    p99_ns: float
    p50_ns: float
    energy_j: float
    avg_power_w: float
    achieved_rps: float
    meets_sla: bool
    config_hash: str
    dominated: bool = False
    #: Label of the first dominating point in dataset order (reports and
    #: tooltips), empty for frontier members.
    dominated_by: str = ""

    @property
    def label(self) -> str:
        return f"{self.policy}@{load_label(self.target_rps)}"

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "app": self.app,
            "policy": self.policy,
            "target_rps": self.target_rps,
            "seed": self.seed,
            "joules_per_request": self.joules_per_request,
            "p99_ns": self.p99_ns,
            "p50_ns": self.p50_ns,
            "energy_j": self.energy_j,
            "avg_power_w": self.avg_power_w,
            "achieved_rps": self.achieved_rps,
            "meets_sla": self.meets_sla,
            "config_hash": self.config_hash,
            "dominated": self.dominated,
            "dominated_by": self.dominated_by,
        }


def dominates(a: FrontierPoint, b: FrontierPoint) -> bool:
    """True when ``a`` Pareto-dominates ``b`` on minimize(J/req, p99)."""
    return (
        a.joules_per_request <= b.joules_per_request
        and a.p99_ns <= b.p99_ns
        and (
            a.joules_per_request < b.joules_per_request
            or a.p99_ns < b.p99_ns
        )
    )


def classify_dominance(points: List[FrontierPoint]) -> None:
    """Mark each point dominated/non-dominated, in place.

    ``dominated_by`` names the first dominating point in dataset order,
    which is deterministic because the dataset order is.
    """
    for point in points:
        point.dominated = False
        point.dominated_by = ""
        for other in points:
            if other is not point and dominates(other, point):
                point.dominated = True
                point.dominated_by = other.label
                break


@dataclass
class FrontierDataset:
    """The frontier experiment's output: classified points, canonical JSON."""

    name: str
    points: List[FrontierPoint] = field(default_factory=list)

    def frontier(self) -> List[FrontierPoint]:
        """The non-dominated set, sorted by joules/request (the polyline)."""
        return sorted(
            (p for p in self.points if not p.dominated),
            key=lambda p: (p.joules_per_request, p.p99_ns),
        )

    def policies(self) -> List[str]:
        return sorted({p.policy for p in self.points})

    def loads(self) -> List[float]:
        return sorted({p.target_rps for p in self.points})

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "schema": FRONTIER_SCHEMA_VERSION,
            "name": self.name,
            "objectives": ["joules_per_request", "p99_ns"],
            "points": [p.to_json_dict() for p in self.points],
        }

    def to_json(self) -> str:
        """Canonical serialization: sorted keys, fixed separators, no
        wall-clock fields — the byte-identity contract of the CI gate."""
        return json.dumps(
            self.to_json_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "FrontierDataset":
        schema = data.get("schema")
        if schema != FRONTIER_SCHEMA_VERSION:
            raise ValueError(
                f"frontier schema {schema!r} != {FRONTIER_SCHEMA_VERSION}"
            )
        return cls(
            name=str(data["name"]),
            points=[FrontierPoint(**p) for p in data["points"]],
        )


def dataset_from_records(
    records: List[ResultRecord], name: str = "frontier"
) -> FrontierDataset:
    """Project sweep records onto the frontier plane and classify them.

    Points keep the records' (spec) order, so the dataset inherits the
    sweep harness's serial==pooled byte-identity.
    """
    points = [
        FrontierPoint(
            app=r.app,
            policy=r.policy,
            target_rps=r.target_rps,
            seed=r.seed,
            joules_per_request=joules_per_request(r),
            p99_ns=r.p99_ns,
            p50_ns=r.p50_ns,
            energy_j=r.energy_j,
            avg_power_w=r.avg_power_w,
            achieved_rps=r.achieved_rps,
            meets_sla=r.meets_sla,
            config_hash=r.config_hash,
        )
        for r in records
    ]
    classify_dominance(points)
    return FrontierDataset(name=name, points=points)


def sweep_spec(
    preset: ParetoPreset, settings: RunSettings
) -> SweepSpec:
    """The preset's grid as a harness sweep (cache-aware, pool-ready)."""
    return SweepSpec(
        apps=preset.apps,
        policies=preset.policies,
        loads=preset.loads,
        settings=settings,
    )


def run(
    name: str = "headline",
    settings: RunSettings = RunSettings.standard(),
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress=None,
) -> Tuple[FrontierDataset, List[ResultRecord]]:
    """Run the named preset through the sweep harness.

    Returns the classified dataset plus the raw records (for summary
    tables and per-run drill-down rendering).
    """
    try:
        preset = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown pareto experiment {name!r}; "
            f"choose from {sorted(PRESETS)}"
        ) from None
    records = run_sweep(
        sweep_spec(preset, settings), jobs=jobs, cache=cache,
        progress=progress,
    )
    return dataset_from_records(records, name=name), records


def _render_detail(spec: RunSpec) -> Tuple[str, str, str]:
    """Process-pool worker: one frontier point's drill-down artifacts.

    Re-runs the point with the flight recorder and energy attribution
    attached (observers never enter the config hash, so this names the
    same cache key as the sweep record) and renders the timeline
    dashboard page plus the energy-blame text table.
    """
    from repro.analysis.energy import (
        format_energy_blame,
        format_governor_misses,
    )
    from repro.cluster.simulation import run_experiment
    from repro.viz.dashboard import dashboard_from_result

    config = spec.to_config()
    key = config_hash(config)
    result = run_experiment(
        config, record_timeseries="coarse", energy_attribution=True
    )
    label = (
        f"{spec.policy_name}@{load_label(spec.target_rps)} ({spec.app})"
    )
    page = dashboard_from_result(
        result, config=config, title=f"Frontier point {label}"
    )
    assert result.energy_attribution is not None
    pairs = [(spec.policy_name, result.energy_attribution)]
    blame = (
        format_energy_blame(pairs, title=f"Energy blame — {label}")
        + "\n\n"
        + format_governor_misses(pairs)
    )
    return key, page, blame


def write_details(
    name: str,
    settings: RunSettings,
    out_dir: str,
    jobs: Optional[int] = None,
    href_prefix: Optional[str] = None,
) -> Dict[str, Dict[str, str]]:
    """Render every grid point's drill-down pages into ``out_dir``.

    Returns the ``links`` map for :func:`repro.viz.frontier.
    render_frontier` — ``config_hash`` → ``{"timeline": href, "energy":
    href}``, with hrefs under ``href_prefix`` (default: the directory's
    basename, i.e. relative to the frontier page sitting next to it).
    """
    preset = PRESETS[name]
    specs = sweep_spec(preset, settings).expand()
    os.makedirs(out_dir, exist_ok=True)
    prefix = href_prefix if href_prefix is not None else os.path.basename(
        os.path.normpath(out_dir)
    )
    links: Dict[str, Dict[str, str]] = {}
    for key, page, blame in Runner(jobs=jobs).map(_render_detail, specs):
        with open(
            os.path.join(out_dir, f"{key}.html"), "w", encoding="utf-8"
        ) as fh:
            fh.write(page)
        with open(
            os.path.join(out_dir, f"{key}_energy.txt"), "w",
            encoding="utf-8",
        ) as fh:
            fh.write(blame + "\n")
        links[key] = {
            "timeline": f"{prefix}/{key}.html",
            "energy": f"{prefix}/{key}_energy.txt",
        }
    return links


def format_frontier_report(
    dataset: FrontierDataset, title: Optional[str] = None
) -> str:
    """Point table (frontier members first) plus the frontier summary."""
    preset = PRESETS.get(dataset.name)
    note = f" — {preset.note}" if preset and preset.note else ""
    ordered = sorted(
        dataset.points,
        key=lambda p: (p.dominated, p.joules_per_request, p.p99_ns),
    )
    rows = []
    for p in ordered:
        rows.append([
            p.app,
            p.policy,
            load_label(p.target_rps),
            f"{1e3 * p.joules_per_request:.4f}",
            round(p.p99_ns / 1e6, 3),
            round(p.p50_ns / 1e6, 3),
            round(p.avg_power_w, 2),
            "met" if p.meets_sla else "VIOLATED",
            "frontier" if not p.dominated else f"dom. by {p.dominated_by}",
        ])
    table = format_table(
        ["app", "policy", "load", "mJ/req", "p99 (ms)", "p50 (ms)",
         "power (W)", "SLA", "class"],
        rows,
        title=title or (
            f"Pareto frontier: {dataset.name}{note} "
            f"(minimize mJ/req × p99)"
        ),
    )
    frontier = dataset.frontier()
    members = ", ".join(p.label for p in frontier)
    return (
        f"{table}\n"
        f"frontier: {len(frontier)}/{len(dataset.points)} non-dominated "
        f"[{members}]"
    )
