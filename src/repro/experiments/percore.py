"""Section 7 extension — per-core NCAP versus chip-wide NCAP.

The paper argues a multi-queue NIC lets NCAP retune only the target core,
improving on the chip-wide P/C-state changes its evaluation platform
forces.  This experiment runs the same workload against:

- the chip-wide :class:`ServerNode` under ``ncap.cons``, and
- the :class:`PerCoreServerNode` (per-core V/F domains, one NCAP per
  rx queue, RFS-style core affinity),

and reports latency and energy side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apps.client import (
    OpenLoopClient,
    http_request_factory,
    memcached_request_factory,
)
from repro.apps.workload import burst_period_ns, default_burst_size, load_level, sla_for
from repro.cluster.percore_node import PerCoreServerNode
from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.experiments.common import RunSettings
from repro.harness import Runner
from repro.metrics.energy import energy_delta
from repro.metrics.latency import LatencyStats
from repro.metrics.report import format_table
from repro.net.link import Link
from repro.net.switch import Switch
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.units import US, gbps


@dataclass
class VariantResult:
    variant: str
    p95_ms: float
    p99_ms: float
    energy_j: float
    meets_sla: bool
    wake_posts: int


def run_percore(
    app: str,
    target_rps: float,
    settings: RunSettings = RunSettings.standard(),
    n_clients: int = 3,
    fcons: int = 5,
) -> VariantResult:
    """One run of the per-core NCAP server in the standard star topology."""
    sim = Simulator()
    rng = RngRegistry(settings.seed)
    server = PerCoreServerNode(sim, "server", app, rng, fcons=fcons)
    switch = Switch(sim)
    burst_size = default_burst_size(app)
    period = burst_period_ns(target_rps, n_clients, burst_size)
    clients: List[OpenLoopClient] = []
    for i in range(n_clients):
        name = f"client{i}"
        if app == "apache":
            factory = http_request_factory(name, "server")
        else:
            factory = memcached_request_factory(
                name, "server", rng=rng.stream(f"{name}.keys")
            )
        clients.append(
            OpenLoopClient(
                sim, name, factory, burst_size=burst_size, burst_period_ns=period,
                jitter_rng=rng.stream(f"{name}.jitter"), jitter_fraction=0.30,
            )
        )
    server_link = Link(sim, gbps(10), 1 * US)
    server_link.attach(server, switch)
    server.attach_port(server_link.endpoint_port(server))
    switch.attach_link(server_link, "server")
    for client in clients:
        link = Link(sim, gbps(10), 1 * US)
        link.attach(client, switch)
        client.attach_port(link.endpoint_port(client))
        switch.attach_link(link, client.name)

    server.start()
    for client in clients:
        client.start()
    window_start = settings.warmup_ns
    window_end = settings.warmup_ns + settings.measure_ns
    snapshots = {}
    sim.schedule_at(window_start, lambda: snapshots.__setitem__("a", server.energy_report()))
    sim.schedule_at(window_end, lambda: snapshots.__setitem__("b", server.energy_report()))
    for client in clients:
        sim.schedule_at(window_end, client.stop)
    sim.run(until=window_end + settings.drain_ns)

    rtts = []
    for client in clients:
        rtts.extend(client.rtts_in_window(window_start, window_end))
    latency = LatencyStats.from_values(rtts)
    energy = energy_delta(snapshots["a"], snapshots["b"])
    return VariantResult(
        variant="ncap.percore",
        p95_ms=latency.p95_ns / 1e6,
        p99_ms=latency.p99_ns / 1e6,
        energy_j=energy.energy_j,
        meets_sla=latency.meets_sla(sla_for(app)),
        wake_posts=server.total_it_high_posts() + server.total_immediate_rx_posts(),
    )


def _chipwide_task(args) -> VariantResult:
    app, target_rps, settings = args
    result = run_experiment(
        ExperimentConfig.from_settings(
            settings, app=app, policy="ncap.cons", target_rps=target_rps,
        )
    )
    return VariantResult(
        variant="ncap.cons (chip-wide)",
        p95_ms=result.latency.p95_ns / 1e6,
        p99_ms=result.latency.p99_ns / 1e6,
        energy_j=result.energy.energy_j,
        meets_sla=result.meets_sla,
        wake_posts=result.ncap_stats.get("it_high_posts", 0)
        + result.ncap_stats.get("immediate_rx_posts", 0),
    )


def _percore_task(args) -> VariantResult:
    app, target_rps, settings = args
    return run_percore(app, target_rps, settings=settings)


def _variant_task(task) -> VariantResult:
    fn, args = task
    return fn(args)


def run(
    app: str = "memcached",
    load: str = "low",
    settings: RunSettings = RunSettings.standard(),
    jobs: Optional[int] = None,
) -> List[VariantResult]:
    """Chip-wide ncap.cons versus per-core NCAP on the same workload."""
    level = load_level(app, load)
    args = (app, level.target_rps, settings)
    return Runner(jobs=jobs).map(
        _variant_task, [(_chipwide_task, args), (_percore_task, args)]
    )


def format_report(rows: List[VariantResult], app: str, load: str) -> str:
    return format_table(
        ["variant", "p95 (ms)", "p99 (ms)", "energy (J)", "SLA", "wake posts"],
        [
            [r.variant, round(r.p95_ms, 2), round(r.p99_ms, 2),
             round(r.energy_j, 2), "ok" if r.meets_sla else "VIOLATED",
             r.wake_posts]
            for r in rows
        ],
        title=f"Section 7 — per-core vs chip-wide NCAP ({app} @ {load})",
    )
