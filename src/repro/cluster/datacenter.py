"""A multi-server cluster with imbalanced load (Section 7 of the paper).

"A production datacenter consists of hundreds or thousands of servers...
One of key characteristics of large-scale datacenters is the load
imbalance amongst server nodes.  Therefore, there is a significant
fraction of underutilized servers even at a high overall load level and
NCAP can achieve energy reduction for such underutilized servers."

This builder scales the four-node experiment out pd-gem5 style: N servers
behind one switch, each with its own set of open-loop clients, and an
uneven share of the total offered load.  Per-server energy, latency, and
utilization come back side by side so the utilization-versus-saving
relationship can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

from repro.apps.client import (
    OpenLoopClient,
    http_request_factory,
    memcached_request_factory,
)
from repro.apps.workload import burst_period_ns, default_burst_size, sla_for
from repro.cluster.node import ServerNode
from repro.cluster.policies import PolicyConfig
from repro.cpu.energy import EnergyReport
from repro.metrics.energy import energy_delta
from repro.metrics.latency import LatencyStats
from repro.net.link import Link
from repro.net.switch import Switch
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import NullTraceRecorder
from repro.sim.units import MS, US, gbps


@dataclass
class DatacenterConfig:
    """A scaled-out, imbalanced cluster run."""

    app: str = "apache"
    policy: Union[str, PolicyConfig] = "ncap.cons"
    n_servers: int = 4
    #: Each server's share of ``total_rps`` (normalized internally).
    load_shares: Sequence[float] = (0.45, 0.30, 0.15, 0.10)
    total_rps: float = 120_000.0
    clients_per_server: int = 3
    warmup_ns: int = 20 * MS
    measure_ns: int = 150 * MS
    drain_ns: int = 80 * MS
    seed: int = 1

    def __post_init__(self) -> None:
        if len(self.load_shares) != self.n_servers:
            raise ValueError("one load share per server is required")
        if any(s <= 0 for s in self.load_shares):
            raise ValueError("load shares must be positive")


@dataclass
class ServerOutcome:
    server: str
    target_rps: float
    utilization: float
    latency: LatencyStats
    energy: EnergyReport
    meets_sla: bool


@dataclass
class DatacenterResult:
    config: DatacenterConfig
    servers: List[ServerOutcome]

    @property
    def total_energy_j(self) -> float:
        return sum(s.energy.energy_j for s in self.servers)


class DatacenterCluster:
    """N servers, each with its own client pool, behind one switch."""

    def __init__(self, config: DatacenterConfig):
        self.config = config
        self.sim = Simulator()
        self.rng = RngRegistry(config.seed)
        trace = NullTraceRecorder()
        self.switch = Switch(self.sim)
        self.servers: List[ServerNode] = []
        self.clients: Dict[str, List[OpenLoopClient]] = {}

        shares = [s / sum(config.load_shares) for s in config.load_shares]
        burst_size = default_burst_size(config.app)
        for i in range(config.n_servers):
            server_name = f"server{i}"
            server = ServerNode(
                self.sim, server_name, config.policy, config.app, self.rng,
                trace=trace,
            )
            link = Link(self.sim, gbps(10), 1 * US)
            link.attach(server, self.switch)
            server.attach_port(link.endpoint_port(server))
            self.switch.attach_link(link, server_name)
            self.servers.append(server)

            rps = config.total_rps * shares[i]
            period = burst_period_ns(rps, config.clients_per_server, burst_size)
            pool: List[OpenLoopClient] = []
            for j in range(config.clients_per_server):
                client_name = f"client{i}_{j}"
                if config.app == "apache":
                    factory = http_request_factory(client_name, server_name)
                else:
                    factory = memcached_request_factory(
                        client_name, server_name,
                        rng=self.rng.stream(f"{client_name}.keys"),
                    )
                client = OpenLoopClient(
                    self.sim, client_name, factory,
                    burst_size=burst_size, burst_period_ns=period,
                    jitter_rng=self.rng.stream(f"{client_name}.jitter"),
                    jitter_fraction=0.30,
                )
                client_link = Link(self.sim, gbps(10), 1 * US)
                client_link.attach(client, self.switch)
                client.attach_port(client_link.endpoint_port(client))
                self.switch.attach_link(client_link, client_name)
                pool.append(client)
            self.clients[server_name] = pool

    def run(self) -> DatacenterResult:
        config = self.config
        for server in self.servers:
            server.start()
        for pool in self.clients.values():
            for client in pool:
                client.start()

        window_start = config.warmup_ns
        window_end = config.warmup_ns + config.measure_ns
        snapshots: Dict[str, EnergyReport] = {}
        busy_marks: Dict[str, List[int]] = {}

        def snap(tag: str) -> None:
            for server in self.servers:
                snapshots[f"{server.name}.{tag}"] = server.package.energy_report()
                busy_marks[f"{server.name}.{tag}"] = server.package.busy_ns_per_core()

        self.sim.schedule_at(window_start, snap, "a")
        self.sim.schedule_at(window_end, snap, "b")
        for pool in self.clients.values():
            for client in pool:
                self.sim.schedule_at(window_end, client.stop)
        self.sim.run(until=window_end + config.drain_ns)

        shares = [s / sum(config.load_shares) for s in config.load_shares]
        sla_ns = sla_for(config.app)
        outcomes = []
        for i, server in enumerate(self.servers):
            rtts: List[int] = []
            for client in self.clients[server.name]:
                rtts.extend(client.rtts_in_window(window_start, window_end))
            latency = LatencyStats.from_values(rtts)
            energy = energy_delta(
                snapshots[f"{server.name}.a"], snapshots[f"{server.name}.b"]
            )
            busy_a = busy_marks[f"{server.name}.a"]
            busy_b = busy_marks[f"{server.name}.b"]
            utilization = sum(
                b - a for a, b in zip(busy_a, busy_b)
            ) / (len(busy_a) * config.measure_ns)
            outcomes.append(
                ServerOutcome(
                    server=server.name,
                    target_rps=config.total_rps * shares[i],
                    utilization=utilization,
                    latency=latency,
                    energy=energy,
                    meets_sla=latency.meets_sla(sla_ns),
                )
            )
        return DatacenterResult(config=config, servers=outcomes)


def run_datacenter(config: DatacenterConfig) -> DatacenterResult:
    return DatacenterCluster(config).run()
