"""A multi-server cluster with imbalanced load (Section 7 of the paper).

"A production datacenter consists of hundreds or thousands of servers...
One of key characteristics of large-scale datacenters is the load
imbalance amongst server nodes.  Therefore, there is a significant
fraction of underutilized servers even at a high overall load level and
NCAP can achieve energy reduction for such underutilized servers."

This builder scales the four-node experiment out pd-gem5 style: N servers
behind switches, each with its own share of the offered load, and
per-server energy/latency/utilization reported side by side.  Two things
make datacenter scale reachable:

- **Sharding** (``n_shards > 1``): servers are partitioned across worker
  processes advanced in conservative time windows by
  :mod:`repro.cluster.sharding`.  A sharded run merges to a
  :class:`~repro.harness.record.ResultRecord` bit-identical to the
  single-process run.
- **A frontend tier** (``frontend=FrontendConfig(...)``): instead of
  per-server client pools, an open-loop population of users is sprayed
  across servers by a load-balancing policy
  (:mod:`repro.cluster.frontend`), which is how millions of simulated
  users reach a thousand servers.

Load shares may be a literal per-server tuple (the classic four-node
shape), or a generated profile name (``"uniform"``, ``"zipf:<s>"``) so
``n_servers=1000`` works out of the box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.apps.client import OpenLoopClient
from repro.apps.workload import generate_load_shares
from repro.cluster.frontend import FrontendConfig
from repro.cluster.node import ServerNode
from repro.cluster.policies import PolicyConfig
from repro.cpu.energy import EnergyReport
from repro.harness.record import ResultRecord
from repro.metrics.latency import LatencyStats
from repro.net.switch import Switch
from repro.sim.kernel import Simulator
from repro.sim.units import MS

#: The classic four-node imbalance shape, kept as the default so existing
#: configs (and their validation behaviour) are unchanged.
_LEGACY_SHARES = (0.45, 0.30, 0.15, 0.10)


@dataclass
class DatacenterConfig:
    """A scaled-out, imbalanced cluster run."""

    app: str = "apache"
    policy: Union[str, PolicyConfig] = "ncap.cons"
    n_servers: int = 4
    #: Each server's share of ``total_rps``: a per-server sequence
    #: (normalized internally), a generated profile name (``"uniform"`` or
    #: ``"zipf:<s>"``), or None for the default (the legacy four-node
    #: tuple when ``n_servers == 4``, else ``"uniform"``).
    load_shares: Union[str, Sequence[float], None] = _LEGACY_SHARES
    total_rps: float = 120_000.0
    clients_per_server: int = 3
    warmup_ns: int = 20 * MS
    measure_ns: int = 150 * MS
    drain_ns: int = 80 * MS
    seed: int = 1
    #: Number of conservative time-window shards the servers are split
    #: over.  Results are independent of the shard count (and of whether
    #: shards run serially or in worker processes).
    n_shards: int = 1
    #: When set, the per-server client pools are replaced by the frontend
    #: load-balancer tier spraying an open-loop user population.
    frontend: Optional[FrontendConfig] = None

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError("n_servers must be at least 1")
        shares = self.load_shares
        if shares is None or isinstance(shares, str):
            if shares is not None:
                generate_load_shares(shares, self.n_servers)  # validate spec
        else:
            if len(shares) != self.n_servers:
                raise ValueError("one load share per server is required")
            if any(s <= 0 for s in shares):
                raise ValueError("load shares must be positive")
        if self.n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if self.n_shards > self.n_servers:
            raise ValueError("n_shards cannot exceed n_servers")
        if self.frontend is not None and not isinstance(
            self.frontend, FrontendConfig
        ):
            raise TypeError("frontend must be a FrontendConfig (or None)")

    def resolved_shares(self) -> Tuple[float, ...]:
        """The normalized per-server load shares."""
        shares = self.load_shares
        if shares is None:
            if self.n_servers == len(_LEGACY_SHARES):
                shares = _LEGACY_SHARES
            else:
                return generate_load_shares("uniform", self.n_servers)
        if isinstance(shares, str):
            return generate_load_shares(shares, self.n_servers)
        total = sum(shares)
        return tuple(s / total for s in shares)

    @property
    def end_ns(self) -> int:
        return self.warmup_ns + self.measure_ns + self.drain_ns


@dataclass
class ServerOutcome:
    server: str
    target_rps: float
    utilization: float
    latency: LatencyStats
    energy: EnergyReport
    meets_sla: bool


@dataclass
class ShardStats:
    """Execution statistics of one shard (never part of the merged record:
    wall time depends on the machine, not on the simulated system)."""

    shard_index: int
    server_indices: List[int]
    events: int
    wall_s: float
    profile: Dict[str, object] = field(default_factory=dict)


@dataclass
class DatacenterResult:
    config: DatacenterConfig
    servers: List[ServerOutcome]
    #: Per-shard execution stats (empty for the legacy in-process path).
    shards: List[ShardStats] = field(default_factory=list)
    #: The merged fleet-level record — bit-identical across shard counts.
    record: Optional[ResultRecord] = None
    #: Merged cross-shard request traces (``trace_requests=`` runs only);
    #: a :class:`~repro.telemetry.tracing.FleetTraceBundle`.
    trace: Optional[object] = None
    #: Window/imbalance profile (``profile_fleet=`` runs only); wall-clock
    #: data, so — like :class:`ShardStats` — never part of the record.
    fleet_profile: Optional[object] = None

    @property
    def total_energy_j(self) -> float:
        return sum(s.energy.energy_j for s in self.servers)

    @property
    def shard_speedup(self) -> float:
        """Estimated parallel speedup: total shard work / critical path."""
        if not self.shards:
            return 1.0
        slowest = max(s.wall_s for s in self.shards)
        if slowest <= 0:
            return 1.0
        return sum(s.wall_s for s in self.shards) / slowest


class DatacenterCluster:
    """N servers, each with its own client pool, behind one switch.

    Retained as the in-process view over a (serially executed) sharded
    run: ``.sim`` / ``.switch`` / ``.servers`` / ``.clients`` expose the
    built topology for tests and interactive use.  With ``n_shards > 1``
    the per-shard topologies are concatenated (``.switch`` is shard 0's).
    """

    def __init__(self, config: DatacenterConfig):
        from repro.cluster.sharding import ShardedDatacenterRun

        self.config = config
        self._coordinator = ShardedDatacenterRun(config, jobs=1)
        shards = self._coordinator.inline_shards()
        self.sim: Simulator = shards[0].sim
        self.switch: Switch = shards[0].switch
        self.rng = shards[0].rng
        self.servers: List[ServerNode] = [
            server for shard in shards for server in shard.servers
        ]
        self.clients: Dict[str, List[OpenLoopClient]] = {}
        for shard in shards:
            self.clients.update(shard.clients)

    def run(self) -> DatacenterResult:
        return self._coordinator.execute()


def run_datacenter(
    config: DatacenterConfig,
    *,
    jobs: Optional[int] = None,
    record_timeseries: Union[None, bool, str, object] = None,
    profile: Union[None, bool, object] = None,
    bulk_datapath: bool = True,
    window_ns: Optional[int] = None,
    trace_requests: Union[None, bool, int, object] = None,
    profile_fleet: bool = False,
    monitor: Union[None, bool, str, object] = None,
    energy_attribution: bool = False,
) -> DatacenterResult:
    """Run a datacenter config, sharded when ``config.n_shards > 1``.

    Everything after ``config`` is an observer/execution knob in the
    sweep-harness tradition — never part of the config hash, never able
    to change the simulated outcome:

    - ``jobs``: worker processes for the shards (None = machine default;
      1 forces serial in-process execution, which is bit-identical).
    - ``record_timeseries``: flight-recorder spec; the first few servers
      are recorded and their bundles merged with node-name prefixes.
    - ``profile``: per-shard simulator self-profiles on the result.
    - ``bulk_datapath``: vectorize frontend bursts through the link/
      switch/NIC ``receive_burst`` path (frontend mode only).
    - ``window_ns``: override the conservative sync window (testing).
    - ``trace_requests``: cross-shard request tracing spec (``True``,
      a sample-every int, or a TraceConfig); frontend mode only.
    - ``profile_fleet``: per-window shard wall-time/imbalance profile on
      ``result.fleet_profile``.
    - ``monitor``: live JSONL heartbeat (``True``/``"-"`` for stderr or
      an output path).
    - ``energy_attribution``: per-server energy decomposition +
      governor-miss accounting, merged into the fleet record's
      ``energy_attribution`` field in server-index order.
    """
    from repro.cluster.sharding import ShardedDatacenterRun

    return ShardedDatacenterRun(
        config,
        jobs=jobs,
        record_timeseries=record_timeseries,
        profile=profile,
        bulk_datapath=bulk_datapath,
        window_ns=window_ns,
        trace_requests=trace_requests,
        profile_fleet=profile_fleet,
        monitor=monitor,
        energy_attribution=energy_attribution,
    ).execute()
