"""Conservative time-window sharded execution of a datacenter run.

pd-gem5 — the simulator NCAP was evaluated on — parallelizes a cluster
by giving every node its own simulator process and synchronizing them in
fixed time quanta no larger than the minimum cross-node latency.  This
module is that shape in Python:

- a :class:`ShardRun` owns one :class:`~repro.sim.kernel.Simulator` with
  a contiguous slice of the fleet's servers (plus their client pools or
  frontend ports and a shard-local switch);
- a :class:`ShardedDatacenterRun` coordinator advances every shard to
  the same boundary, window by window, injecting the frontend tier's
  planned dispatches at the top of each window.

**Why windows are safe.**  In classic (per-server client pool) mode there
are *no* inter-shard events at all — the star topology gives every
server its own links, clients and RNG streams — so windows are pure sync
points and any window size gives the same result.  In frontend mode the
only inter-shard events are frontend dispatches, every one of which
leaves the frontend ``dispatch_latency_ns`` after its spray decision;
with a window no larger than that latency, decisions for a window are
always complete before the window executes (the classic conservative
lookahead argument).  The window defaults to
:func:`conservative_window_ns`: the dispatch latency in frontend mode,
the minimum client burst period otherwise.

**Why results are bit-identical across shard counts.**  Shard placement
never changes what any server's simulator executes: per-server event
streams are decoupled (own links/ports, name-derived RNG streams,
per-server telemetry), the frontend plan is computed coordinator-side as
a pure function of the config seed, and collection merges per-server
measurements in server-index order (fixing float summation order).  A
``n_shards=8`` run in 8 worker processes therefore merges to a
:class:`~repro.harness.record.ResultRecord` byte-identical — JSON and
sha256 — to the ``n_shards=1`` in-process run.  The recorder's
serial==pool byte-identical contract (PR 4) is the template, extended to
whole simulators.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.apps.client import (
    OpenLoopClient,
    http_request_factory,
    memcached_request_factory,
)
from repro.analysis.energy import EnergyAttribution, attribution_between
from repro.apps.workload import burst_period_ns, default_burst_size, sla_for
from repro.cluster.datacenter import (
    DatacenterConfig,
    DatacenterResult,
    ServerOutcome,
    ShardStats,
)
from repro.cluster.frontend import Dispatch, FrontendPlanner, FrontendPort
from repro.cluster.node import ServerNode
from repro.cluster.recording import build_server_recorder
from repro.cpu.energy import EnergyReport
from repro.harness.hashing import config_hash
from repro.harness.record import ResultRecord
from repro.harness.runner import resolve_jobs
from repro.metrics.energy import average_power_w, energy_delta
from repro.metrics.latency import LatencyStats
from repro.net.link import Link
from repro.net.switch import Switch
from repro.oskernel.cpuidle import IdleAccounting, build_idle_accounting
from repro.profiling.fleet import FleetProfile, WindowSample
from repro.profiling.profiler import SimProfiler
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import NullTraceRecorder
from repro.sim.units import US, gbps
from repro.telemetry.monitor import RunMonitor, resolve_monitor
from repro.telemetry.recorder import (
    RecorderConfig,
    TimeseriesBundle,
    merge_timeseries_bundles,
    resolve_recorder_config,
)
from repro.telemetry.tracing import (
    FleetTraceBundle,
    RequestTraceCollector,
    TraceConfig,
    merge_fleet_traces,
    resolve_trace_config,
)

#: At most this many servers get a flight recorder in a recorded run
#: (always the lowest indices, independent of sharding).
MAX_RECORDED_SERVERS = 4


def shard_plan(n_servers: int, n_shards: int) -> List[List[int]]:
    """Partition server indices into ``n_shards`` contiguous slices."""
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    if n_shards > n_servers:
        raise ValueError("n_shards cannot exceed n_servers")
    base, extra = divmod(n_servers, n_shards)
    plan: List[List[int]] = []
    start = 0
    for shard in range(n_shards):
        size = base + (1 if shard < extra else 0)
        plan.append(list(range(start, start + size)))
        start += size
    return plan


def conservative_window_ns(config: DatacenterConfig) -> int:
    """The default synchronization window for ``config``.

    Frontend mode: the frontend dispatch latency (the lookahead bound —
    every cross-shard event is planned at least this long before it
    lands).  Classic mode: the minimum client burst period across the
    fleet — there are no cross-shard events, so this is purely a sync
    cadence, chosen to match the natural granularity of the workload.
    """
    if config.frontend is not None:
        return config.frontend.dispatch_latency_ns
    burst_size = default_burst_size(config.app)
    periods = [
        burst_period_ns(
            config.total_rps * share, config.clients_per_server, burst_size
        )
        for share in config.resolved_shares()
    ]
    return max(1, min(periods))


@dataclass
class ServerMeasure:
    """Raw per-server measurements, picklable across the worker boundary."""

    index: int
    name: str
    policy_name: str
    rtts: List[int]
    sent: int
    responses: int
    energy: EnergyReport
    utilization: float
    cstate_entries: Dict[str, int]
    ncap_stats: Dict[str, int]
    counters: Dict[str, float]
    #: Serialized per-server recorder bundle, when this server was recorded.
    timeseries: Optional[Dict[str, object]] = None
    #: Serialized per-server :class:`~repro.analysis.energy.EnergyAttribution`
    #: (energy decomposition + governor-miss grades over the measurement
    #: window), when the run was built with ``energy_attribution=True``.
    energy_attribution: Optional[Dict[str, object]] = None


@dataclass
class ShardResult:
    """Everything one shard reports after its final window."""

    shard_index: int
    server_indices: List[int]
    measures: List[ServerMeasure]
    events: int
    wall_s: float
    profile: Dict[str, object] = field(default_factory=dict)
    #: Per-shard request-trace payload (sampled spans), when tracing.
    trace: Dict[str, object] = field(default_factory=dict)


class ShardRun:
    """One shard: a simulator owning a slice of the fleet's servers.

    The build replicates the classic single-process datacenter topology
    for exactly the servers in ``server_indices`` (global names are
    kept: shard placement is invisible to the simulated system).
    """

    def __init__(
        self,
        config: DatacenterConfig,
        shard_index: int,
        server_indices: Sequence[int],
        *,
        record_indices: Sequence[int] = (),
        recorder_config: Optional[RecorderConfig] = None,
        profiler: Optional[SimProfiler] = None,
        bulk_datapath: bool = True,
        trace_sample_every: Optional[int] = None,
        energy_attribution: bool = False,
    ):
        self.config = config
        self.shard_index = shard_index
        self.server_indices = list(server_indices)
        self.sim = Simulator()
        self.profiler = profiler
        if profiler is not None:
            self.sim.set_profiler(profiler)
        self.rng = RngRegistry(config.seed)
        self._trace = NullTraceRecorder()
        self.switch = Switch(self.sim)
        self.servers: List[ServerNode] = []
        self.clients: Dict[str, List[OpenLoopClient]] = {}
        self.frontend_ports: Dict[int, FrontendPort] = {}
        self.recorders: Dict[str, object] = {}
        self.wall_s = 0.0
        #: Wall/event deltas of the most recent ``advance`` window (the
        #: coordinator's window profiler and monitor read these).
        self.last_window_wall_s = 0.0
        self.last_window_events = 0
        self.tracer: Optional[RequestTraceCollector] = None
        if trace_sample_every is not None and config.frontend is not None:
            self.tracer = RequestTraceCollector(trace_sample_every)
        self._accountings: Dict[str, IdleAccounting] = {}
        self._accounting_snapshots: Dict[str, Dict[str, object]] = {}

        shares = config.resolved_shares()
        burst_size = default_burst_size(config.app)
        for i in self.server_indices:
            server_name = f"server{i}"
            server = ServerNode(
                self.sim, server_name, config.policy, config.app, self.rng,
                trace=self._trace,
            )
            link = Link(self.sim, gbps(10), 1 * US)
            link.attach(server, self.switch)
            server.attach_port(link.endpoint_port(server))
            self.switch.attach_link(link, server_name)
            self.servers.append(server)
            if self.tracer is not None:
                self.tracer.attach_server(i, server)
            if energy_attribution:
                # Per-server accounting is placement-independent (it only
                # reads the server's own meters/governor), so serial,
                # sharded, and pooled runs produce identical payloads.
                accounting = build_idle_accounting(
                    server.package.cstates,
                    server.cpuidle.governor
                    if server.cpuidle is not None
                    else None,
                    telemetry=server.telemetry,
                )
                accounting.attach(server.package.cores)
                self._accountings[server.name] = accounting

            if config.frontend is not None:
                port = FrontendPort(
                    self.sim, f"frontend{i}", bulk=bulk_datapath
                )
                fe_link = Link(self.sim, gbps(10), 1 * US)
                fe_link.attach(port, self.switch)
                port.attach_port(fe_link.endpoint_port(port))
                self.switch.attach_link(fe_link, port.name)
                self.frontend_ports[i] = port
                if self.tracer is not None:
                    self.tracer.attach_port(i, port)
            else:
                rps = config.total_rps * shares[i]
                period = burst_period_ns(
                    rps, config.clients_per_server, burst_size
                )
                pool: List[OpenLoopClient] = []
                for j in range(config.clients_per_server):
                    client_name = f"client{i}_{j}"
                    if config.app == "apache":
                        factory = http_request_factory(client_name, server_name)
                    else:
                        factory = memcached_request_factory(
                            client_name, server_name,
                            rng=self.rng.stream(f"{client_name}.keys"),
                        )
                    client = OpenLoopClient(
                        self.sim, client_name, factory,
                        burst_size=burst_size, burst_period_ns=period,
                        jitter_rng=self.rng.stream(f"{client_name}.jitter"),
                        jitter_fraction=0.30,
                    )
                    client_link = Link(self.sim, gbps(10), 1 * US)
                    client_link.attach(client, self.switch)
                    client.attach_port(client_link.endpoint_port(client))
                    self.switch.attach_link(client_link, client_name)
                    pool.append(client)
                self.clients[server_name] = pool

            if i in record_indices:
                self.recorders[server_name] = build_server_recorder(
                    self.sim, server, recorder_config, trace=self._trace
                )

        self._snapshots: Dict[str, EnergyReport] = {}
        self._busy_marks: Dict[str, List[int]] = {}

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Start servers/clients/recorders and arm the measurement hooks."""
        config = self.config
        for server in self.servers:
            server.start()
        for pool in self.clients.values():
            for client in pool:
                client.start()
        for recorder in self.recorders.values():
            recorder.start()
        window_start = config.warmup_ns
        window_end = config.warmup_ns + config.measure_ns
        self.sim.schedule_at(window_start, self._snap, "a")
        self.sim.schedule_at(window_end, self._snap, "b")
        for pool in self.clients.values():
            for client in pool:
                self.sim.schedule_at(window_end, client.stop)

    def _snap(self, tag: str) -> None:
        for server in self.servers:
            self._snapshots[f"{server.name}.{tag}"] = (
                server.package.energy_report()
            )
            self._busy_marks[f"{server.name}.{tag}"] = (
                server.package.busy_ns_per_core()
            )
            accounting = self._accountings.get(server.name)
            if accounting is not None:
                self._accounting_snapshots[f"{server.name}.{tag}"] = (
                    accounting.snapshot()
                )

    def advance(
        self,
        until_ns: int,
        injections: Sequence[Tuple[int, int, object]] = (),
    ) -> Dict[int, int]:
        """Inject planned dispatches and run to ``until_ns``.

        ``injections`` is ``(send_ns, server_index, frame)``, time-ordered,
        every send inside ``(now, until_ns]``.  Returns the per-server
        outstanding-request counts at the boundary (frontend mode; empty
        otherwise) — the load view the spray policies consume.
        """
        t0 = time.perf_counter()
        events_before = self.sim.events_executed
        if injections:
            grouped: Dict[int, List[Tuple[int, object]]] = {}
            for send_ns, server_index, frame in injections:
                grouped.setdefault(server_index, []).append((send_ns, frame))
            for server_index, dispatches in grouped.items():
                self.frontend_ports[server_index].inject(dispatches)
        self.sim.run(until=until_ns)
        self.last_window_wall_s = time.perf_counter() - t0
        self.last_window_events = self.sim.events_executed - events_before
        self.wall_s += self.last_window_wall_s
        if self.frontend_ports:
            return {
                i: port.outstanding for i, port in self.frontend_ports.items()
            }
        return {}

    # -- collection ------------------------------------------------------

    def collect(self) -> ShardResult:
        """Per-server measurements after the final window."""
        config = self.config
        window_start = config.warmup_ns
        window_end = config.warmup_ns + config.measure_ns
        measures: List[ServerMeasure] = []
        for i, server in zip(self.server_indices, self.servers):
            if config.frontend is not None:
                sources = [self.frontend_ports[i]]
            else:
                sources = self.clients[server.name]
            rtts: List[int] = []
            sent = 0
            for source in sources:
                rtts.extend(source.rtts_in_window(window_start, window_end))
                sent += source.sent_in_window(window_start, window_end)
            energy = energy_delta(
                self._snapshots[f"{server.name}.a"],
                self._snapshots[f"{server.name}.b"],
            )
            busy_a = self._busy_marks[f"{server.name}.a"]
            busy_b = self._busy_marks[f"{server.name}.b"]
            utilization = sum(
                b - a for a, b in zip(busy_a, busy_b)
            ) / (len(busy_a) * config.measure_ns)
            ncap_stats: Dict[str, int] = {}
            engine = server.engine
            if engine is not None:
                ncap_stats = {
                    "it_high_posts": engine.it_high_posts,
                    "it_low_posts": engine.it_low_posts,
                    "immediate_rx_posts": engine.immediate_rx_posts,
                }
            cstate_entries: Dict[str, int] = {}
            for core in server.package.cores:
                for state, count in core.cstate_entries.items():
                    cstate_entries[state] = cstate_entries.get(state, 0) + count
            recorder = self.recorders.get(server.name)
            timeseries = None
            if recorder is not None:
                recorder.stop()
                timeseries = recorder.bundle().to_json_dict()
            energy_attribution = None
            if server.name in self._accountings:
                energy_attribution = attribution_between(
                    self._accounting_snapshots[f"{server.name}.a"],
                    self._accounting_snapshots[f"{server.name}.b"],
                    energy,
                ).to_json_dict()
            measures.append(
                ServerMeasure(
                    index=i,
                    name=server.name,
                    policy_name=server.policy.name,
                    rtts=rtts,
                    sent=sent,
                    responses=len(rtts),
                    energy=energy,
                    utilization=utilization,
                    cstate_entries=cstate_entries,
                    ncap_stats=ncap_stats,
                    counters=server.telemetry.stats.snapshot(),
                    timeseries=timeseries,
                    energy_attribution=energy_attribution,
                )
            )
        return ShardResult(
            shard_index=self.shard_index,
            server_indices=list(self.server_indices),
            measures=measures,
            events=self.sim.events_executed,
            wall_s=self.wall_s,
            profile=(
                self.profiler.profile().to_json_dict()
                if self.profiler is not None
                else {}
            ),
            trace=self.tracer.payload() if self.tracer is not None else {},
        )


class _ShardHost:
    """Several ShardRuns hosted in one process (the whole fleet in serial
    mode; one slot's share of the shards in pool mode)."""

    def __init__(
        self,
        config: DatacenterConfig,
        assignments: Dict[int, List[int]],
        *,
        record_indices: Sequence[int] = (),
        recorder_config: Optional[RecorderConfig] = None,
        profile: bool = False,
        profiler: Optional[SimProfiler] = None,
        bulk_datapath: bool = True,
        trace_sample_every: Optional[int] = None,
        energy_attribution: bool = False,
    ):
        self.shards: Dict[int, ShardRun] = {}
        for shard_index in sorted(assignments):
            shard_profiler: Optional[SimProfiler] = None
            if profiler is not None and shard_index == min(assignments):
                shard_profiler = profiler
            elif profile:
                shard_profiler = SimProfiler()
            self.shards[shard_index] = ShardRun(
                config,
                shard_index,
                assignments[shard_index],
                record_indices=record_indices,
                recorder_config=recorder_config,
                profiler=shard_profiler,
                bulk_datapath=bulk_datapath,
                trace_sample_every=trace_sample_every,
                energy_attribution=energy_attribution,
            )

    def start(self) -> None:
        for shard in self.shards.values():
            shard.start()

    def advance(
        self,
        until_ns: int,
        injections: Dict[int, List[Tuple[int, int, object]]],
    ) -> Tuple[Dict[int, int], Dict[int, Tuple[float, int]]]:
        """Advance every hosted shard; returns (outstanding, reports).

        ``reports`` maps shard index to its ``(wall_s, events)`` delta for
        this window — the raw material of the fleet window profiler.
        """
        outstanding: Dict[int, int] = {}
        reports: Dict[int, Tuple[float, int]] = {}
        for shard_index, shard in self.shards.items():
            outstanding.update(
                shard.advance(until_ns, injections.get(shard_index, ()))
            )
            reports[shard_index] = (
                shard.last_window_wall_s, shard.last_window_events
            )
        return outstanding, reports

    def collect(self) -> List[ShardResult]:
        return [self.shards[k].collect() for k in sorted(self.shards)]


# -- process-pool worker plumbing ---------------------------------------
#
# Each pool slot is a single-worker ProcessPoolExecutor whose one process
# hosts a fixed subset of the shards as module-global state, pd-gem5
# style: the simulators persist across window calls.

_WORKER_HOST: Optional[_ShardHost] = None


def _worker_init(payload: Dict[str, object]) -> None:
    global _WORKER_HOST
    _WORKER_HOST = _ShardHost(**payload)


def _worker_start() -> None:
    _WORKER_HOST.start()


def _worker_advance(
    until_ns, injections
) -> Tuple[Dict[int, int], Dict[int, Tuple[float, int]]]:
    return _WORKER_HOST.advance(until_ns, injections)


def _worker_collect() -> List[ShardResult]:
    return _WORKER_HOST.collect()


class _PoolWorkers:
    """P persistent single-worker pools, each hosting n_shards/P shards."""

    def __init__(self, payloads: List[Dict[str, object]]):
        self._slots = [
            ProcessPoolExecutor(
                max_workers=1, initializer=_worker_init, initargs=(payload,)
            )
            for payload in payloads
        ]

    def start_all(self) -> None:
        for f in [slot.submit(_worker_start) for slot in self._slots]:
            f.result()

    def advance_all(
        self,
        until_ns: int,
        injections_by_shard: Dict[int, List[Tuple[int, int, object]]],
        slot_of_shard: Dict[int, int],
    ) -> Tuple[Dict[int, int], Dict[int, Tuple[float, int]]]:
        per_slot: List[Dict[int, List[Tuple[int, int, object]]]] = [
            {} for _ in self._slots
        ]
        for shard_index, dispatches in injections_by_shard.items():
            per_slot[slot_of_shard[shard_index]][shard_index] = dispatches
        futures = [
            slot.submit(_worker_advance, until_ns, inj)
            for slot, inj in zip(self._slots, per_slot)
        ]
        outstanding: Dict[int, int] = {}
        reports: Dict[int, Tuple[float, int]] = {}
        for f in futures:
            slot_outstanding, slot_reports = f.result()
            outstanding.update(slot_outstanding)
            reports.update(slot_reports)
        return outstanding, reports

    def collect_all(self) -> List[ShardResult]:
        results: List[ShardResult] = []
        for f in [slot.submit(_worker_collect) for slot in self._slots]:
            results.extend(f.result())
        results.sort(key=lambda r: r.shard_index)
        return results

    def close(self) -> None:
        for slot in self._slots:
            slot.shutdown(wait=False, cancel_futures=True)


class ShardedDatacenterRun:
    """The window coordinator: builds, advances and merges the shards."""

    def __init__(
        self,
        config: DatacenterConfig,
        *,
        jobs: Optional[int] = None,
        record_timeseries: Union[None, bool, str, object] = None,
        profile: Union[None, bool, SimProfiler] = None,
        bulk_datapath: bool = True,
        window_ns: Optional[int] = None,
        trace_requests: Union[None, bool, int, TraceConfig] = None,
        profile_fleet: bool = False,
        monitor: Union[None, bool, str, RunMonitor] = None,
        energy_attribution: bool = False,
    ):
        self.config = config
        self.plan = shard_plan(config.n_servers, config.n_shards)
        self.window_ns = window_ns or conservative_window_ns(config)
        if config.frontend is not None:
            self._dispatch_ns = config.frontend.dispatch_latency_ns
            if self.window_ns > self._dispatch_ns:
                raise ValueError(
                    "sync window must not exceed the frontend dispatch "
                    "latency (the conservative lookahead bound)"
                )
        else:
            self._dispatch_ns = 0
        self._recorder_config = resolve_recorder_config(record_timeseries)
        self._record_indices: Tuple[int, ...] = ()
        if self._recorder_config is not None:
            self._record_indices = tuple(
                range(min(MAX_RECORDED_SERVERS, config.n_servers))
            )
        self._profiler = profile if isinstance(profile, SimProfiler) else None
        self._profile = bool(profile) and self._profiler is None
        self._bulk = bulk_datapath
        # Fleet observers (never in the config hash, never able to change
        # the simulated outcome — the parity suites prove it).
        self._trace_config = resolve_trace_config(trace_requests)
        if self._trace_config is not None and config.frontend is None:
            raise ValueError(
                "request tracing requires frontend mode: classic client "
                "pools draw request ids from a process-global counter, so "
                "(src, req_id) identities would depend on shard placement "
                "and the sampled set could not be placement-deterministic"
            )
        self._profile_fleet = bool(profile_fleet)
        self._energy_attribution = bool(energy_attribution)
        self._monitor = resolve_monitor(monitor)
        self.fleet_profile: Optional[FleetProfile] = None
        n_jobs = resolve_jobs(jobs)
        self._use_pool = (
            config.n_shards > 1 and n_jobs > 1 and self._profiler is None
        )
        self._n_slots = min(n_jobs, config.n_shards)
        self._shard_of: Dict[int, int] = {}
        for shard_index, indices in enumerate(self.plan):
            for i in indices:
                self._shard_of[i] = shard_index
        self._inline_host: Optional[_ShardHost] = None
        if not self._use_pool:
            self._inline_host = _ShardHost(
                config,
                {k: idx for k, idx in enumerate(self.plan)},
                record_indices=self._record_indices,
                recorder_config=self._recorder_config,
                profile=self._profile,
                profiler=self._profiler,
                bulk_datapath=self._bulk,
                trace_sample_every=self._trace_sample_every,
                energy_attribution=self._energy_attribution,
            )

    @property
    def _trace_sample_every(self) -> Optional[int]:
        if self._trace_config is None:
            return None
        return self._trace_config.sample_every

    def inline_shards(self) -> List[ShardRun]:
        """The in-process ShardRuns (serial mode only), in shard order."""
        if self._inline_host is None:
            raise RuntimeError("shards live in worker processes (jobs > 1)")
        return [
            self._inline_host.shards[k]
            for k in sorted(self._inline_host.shards)
        ]

    # -- the window loop -------------------------------------------------

    def execute(self) -> DatacenterResult:
        config = self.config
        planner: Optional[FrontendPlanner] = None
        if config.frontend is not None:
            planner = FrontendPlanner(
                config.frontend,
                n_servers=config.n_servers,
                total_rps=config.total_rps,
                app=config.app,
                warmup_ns=config.warmup_ns,
                measure_ns=config.measure_ns,
                seed=config.seed,
                trace_sample_every=self._trace_sample_every,
            )

        pool: Optional[_PoolWorkers] = None
        slot_of_shard: Dict[int, int] = {}
        if self._use_pool:
            payload_base = dict(
                config=config,
                record_indices=self._record_indices,
                recorder_config=self._recorder_config,
                profile=self._profile,
                bulk_datapath=self._bulk,
                trace_sample_every=self._trace_sample_every,
                energy_attribution=self._energy_attribution,
            )
            payloads: List[Dict[str, object]] = []
            for slot in range(self._n_slots):
                assignments = {
                    k: self.plan[k]
                    for k in range(slot, config.n_shards, self._n_slots)
                }
                for k in assignments:
                    slot_of_shard[k] = slot
                payloads.append(dict(payload_base, assignments=assignments))
            pool = _PoolWorkers(payloads)

        fleet_profile: Optional[FleetProfile] = None
        if self._profile_fleet:
            fleet_profile = FleetProfile(
                n_shards=config.n_shards,
                n_slots=self._n_slots if self._use_pool else 1,
            )
        monitor = self._monitor
        end_ns = config.end_ns
        window = self.window_ns
        if monitor is not None:
            monitor.begin(
                n_windows=-(-end_ns // window),
                end_ns=end_ns,
                n_shards=config.n_shards,
            )
        events_total = 0

        try:
            if pool is not None:
                pool.start_all()
            else:
                self._inline_host.start()

            pending: Deque[Dispatch] = deque()
            t = 0
            window_index = 0
            while t < end_ns:
                w_end = min(t + window, end_ns)
                t_plan = time.perf_counter()
                if planner is not None:
                    pending.extend(
                        planner.plan_until(w_end - self._dispatch_ns)
                    )
                injections: Dict[int, List[Tuple[int, int, object]]] = {}
                injected = 0
                while pending and pending[0].send_ns <= w_end:
                    d = pending.popleft()
                    injections.setdefault(
                        self._shard_of[d.server_index], []
                    ).append((d.send_ns, d.server_index, d.frame))
                    injected += 1
                t_advance = time.perf_counter()
                if pool is not None:
                    outstanding, reports = pool.advance_all(
                        w_end, injections, slot_of_shard
                    )
                else:
                    outstanding, reports = self._inline_host.advance(
                        w_end, injections
                    )
                t_observe = time.perf_counter()
                if planner is not None:
                    view = [0] * config.n_servers
                    for server_index, count in outstanding.items():
                        view[server_index] = count
                    planner.observe(w_end, view)
                t_done = time.perf_counter()

                shard_wall = {s: w for s, (w, _) in reports.items()}
                shard_events = {s: n for s, (_, n) in reports.items()}
                events_total += sum(shard_events.values())
                if fleet_profile is not None:
                    fleet_profile.record(
                        WindowSample(
                            index=window_index,
                            t_start_ns=t,
                            t_end_ns=w_end,
                            plan_s=t_advance - t_plan,
                            advance_s=t_observe - t_advance,
                            observe_s=t_done - t_observe,
                            shard_wall_s=shard_wall,
                            shard_events=shard_events,
                            injections=injected,
                        )
                    )
                if monitor is not None:
                    monitor.on_window(
                        index=window_index,
                        t_end_ns=w_end,
                        shard_wall_s=shard_wall,
                        shard_events=shard_events,
                        events_total=events_total,
                    )
                t = w_end
                window_index += 1

            if pool is not None:
                shard_results = pool.collect_all()
            else:
                shard_results = self._inline_host.collect()
        finally:
            if pool is not None:
                pool.close()
            if monitor is not None:
                monitor.close(events_total=events_total)

        self.fleet_profile = fleet_profile
        return self._merge(shard_results, planner, fleet_profile)

    # -- merge -----------------------------------------------------------

    def _merge(
        self,
        shard_results: List[ShardResult],
        planner: Optional[FrontendPlanner],
        fleet_profile: Optional[FleetProfile] = None,
    ) -> DatacenterResult:
        config = self.config
        measures: List[ServerMeasure] = [
            m for r in shard_results for m in r.measures
        ]
        measures.sort(key=lambda m: m.index)
        shares = config.resolved_shares()
        sla_ns = sla_for(config.app)

        outcomes: List[ServerOutcome] = []
        for m in measures:
            if planner is not None:
                target = (
                    planner.dispatched_in_measure[m.index]
                    * 1e9 / config.measure_ns
                )
            else:
                target = config.total_rps * shares[m.index]
            latency = LatencyStats.from_values(m.rtts)
            outcomes.append(
                ServerOutcome(
                    server=m.name,
                    target_rps=target,
                    utilization=m.utilization,
                    latency=latency,
                    energy=m.energy,
                    meets_sla=latency.meets_sla(sla_ns),
                )
            )

        shard_stats = [
            ShardStats(
                shard_index=r.shard_index,
                server_indices=list(r.server_indices),
                events=r.events,
                wall_s=r.wall_s,
                profile=r.profile,
            )
            for r in shard_results
        ]
        trace_bundle: Optional[FleetTraceBundle] = None
        fleet_section: Dict[str, object] = {}
        if self._trace_config is not None and planner is not None:
            trace_bundle = merge_fleet_traces(
                self._trace_config,
                planner.trace_samples,
                [r.trace for r in shard_results],
            )
            # Only deterministic sim-time data enters the record: the
            # trace bundle is byte-identical across shard count, pool
            # size and window size (the parity tests assert it); the
            # wall-clock window profile stays on the result object.
            fleet_section = {"trace": trace_bundle.to_json_dict()}
        return DatacenterResult(
            config=config,
            servers=outcomes,
            shards=shard_stats,
            record=build_fleet_record(config, measures, fleet=fleet_section),
            trace=trace_bundle,
            fleet_profile=fleet_profile,
        )


def build_fleet_record(
    config: DatacenterConfig,
    measures: Sequence[ServerMeasure],
    *,
    fleet: Optional[Dict[str, object]] = None,
) -> ResultRecord:
    """Merge per-server measurements into one fleet ResultRecord.

    Deterministic by construction: inputs arrive sorted by server index
    and every float reduction runs in that order, so the record — JSON
    and sha256 — is independent of shard count and worker placement.
    ``n_shards`` is an execution detail, not an experiment identity, so
    the config hash is taken with it normalized to 1; wall-clock facts
    live on :class:`~repro.cluster.datacenter.ShardStats` instead.
    """
    if not measures:
        raise ValueError("cannot build a fleet record from zero servers")
    rtts: List[int] = []
    for m in measures:
        rtts.extend(m.rtts)
    latency = LatencyStats.from_values(rtts)
    sent = sum(m.sent for m in measures)
    responses = sum(m.responses for m in measures)
    energy = measures[0].energy
    for m in measures[1:]:
        energy = energy.merge(m.energy)
    counters: Dict[str, float] = {}
    cstate_entries: Dict[str, int] = {}
    ncap_stats: Dict[str, int] = {}
    for m in measures:
        for key, value in m.counters.items():
            counters[key] = counters.get(key, 0.0) + value
        for key, value in m.cstate_entries.items():
            cstate_entries[key] = cstate_entries.get(key, 0) + value
        for key, value in m.ncap_stats.items():
            ncap_stats[key] = ncap_stats.get(key, 0) + value
    bundles = {
        m.name: TimeseriesBundle.from_json_dict(m.timeseries)
        for m in measures
        if m.timeseries is not None
    }
    timeseries: Dict[str, object] = {}
    if bundles:
        timeseries = merge_timeseries_bundles(bundles).to_json_dict()
    # Per-server attributions reduce in server-index order (the same
    # float-summation-order discipline as ``energy`` above), so the
    # merged payload is byte-identical across shard counts/pool sizes.
    energy_attribution: Dict[str, object] = {}
    attributions = [
        EnergyAttribution.from_json_dict(m.energy_attribution)
        for m in measures
        if m.energy_attribution is not None
    ]
    if attributions:
        merged_attribution = attributions[0]
        for attribution in attributions[1:]:
            merged_attribution = merged_attribution.merge(attribution)
        energy_attribution = merged_attribution.to_json_dict()
    sla_ns = sla_for(config.app)
    return ResultRecord(
        config_hash=config_hash(replace(config, n_shards=1)),
        app=config.app,
        policy=measures[0].policy_name,
        target_rps=config.total_rps,
        seed=config.seed,
        sla_ns=sla_ns,
        meets_sla=latency.meets_sla(sla_ns),
        requests_sent=sent,
        responses_received=responses,
        incomplete=sent - responses,
        achieved_rps=sent * 1e9 / config.measure_ns,
        avg_power_w=average_power_w(energy, config.measure_ns),
        latency_count=latency.count,
        mean_ns=latency.mean_ns,
        p50_ns=latency.p50_ns,
        p90_ns=latency.p90_ns,
        p95_ns=latency.p95_ns,
        p99_ns=latency.p99_ns,
        max_ns=latency.max_ns,
        energy_j=energy.energy_j,
        residency_ns=dict(energy.residency_ns),
        energy_by_mode_j=dict(energy.energy_by_mode_j),
        cstate_entries=cstate_entries,
        ncap_stats=ncap_stats,
        counters=counters,
        timeseries=timeseries,
        energy_attribution=energy_attribution,
        fleet=dict(fleet) if fleet else {},
    )


__all__ = [
    "MAX_RECORDED_SERVERS",
    "ServerMeasure",
    "ShardResult",
    "ShardRun",
    "ShardedDatacenterRun",
    "build_fleet_record",
    "conservative_window_ns",
    "shard_plan",
]
