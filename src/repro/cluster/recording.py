"""Standard flight-recorder wiring for a :class:`~repro.cluster.node.ServerNode`.

:func:`build_server_recorder` declares the canonical per-server series —
the quantities every figure and the dashboard timeline panels read:

==================  ====================================================
``cpu.freq_ghz``    package operating frequency (GHz, gauge)
``core<i>.cstate``  per-core C-state table index (0 = awake, gauge)
``cpu.util``        mean core utilization over the last interval (gauge)
``power.watts``     mean package power over the last interval (gauge)
``runq.depth``      run-queue depth across cores (gauge)
``nic.rx_ring``     rx descriptor-ring occupancy (gauge)
``nic.rx.bytes``    cumulative wire bytes received (counter)
``nic.tx.bytes``    cumulative wire bytes transmitted (counter)
``app.requests``    cumulative requests accepted by the app (counter)
``app.responses``   cumulative responses produced by the app (counter)
==================  ====================================================

plus any extra registry subtrees named in
:attr:`~repro.telemetry.recorder.RecorderConfig.patterns`.

Utilization and power are *windowed* gauges: closures snapshot the
package's cumulative busy-ns / energy at each tick and record the delta
over the elapsed interval, exactly the way the retired
``UtilizationSampler`` binned utilization.  When a live trace recorder is
passed, the utilization source carries a tap that keeps writing the
legacy ``<node>.cpu.util`` event channel on every raw sample, so trace
consumers (Figure 4, the trace-invariant tests) see bit-identical data.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.telemetry.recorder import RecorderConfig, TimeSeriesRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import ServerNode
    from repro.sim.kernel import Simulator
    from repro.sim.trace import TraceRecorder

#: Registry counters sampled cumulatively on every server recorder.
STANDARD_COUNTERS = (
    "nic.rx.bytes",
    "nic.tx.bytes",
    "app.requests",
    "app.responses",
)


def utilization_source(package, interval_ns: int):
    """Mean core utilization over each elapsed interval, clamped to 1.

    Matches the legacy ``UtilizationSampler`` bin math: the delta of
    cumulative busy-ns since the previous tick, averaged across cores and
    normalized by the sampling interval.
    """
    state = {"busy": package.busy_ns_per_core()}

    def sample() -> float:
        busy = package.busy_ns_per_core()
        last = state["busy"]
        state["busy"] = busy
        deltas = [b - prev for b, prev in zip(busy, last)]
        return min(1.0, sum(deltas) / (len(deltas) * interval_ns))

    def reset() -> None:
        state["busy"] = package.busy_ns_per_core()

    sample.reset = reset  # type: ignore[attr-defined]
    return sample


def power_source(package, interval_ns: int):
    """Mean package power (W) over each elapsed interval.

    Differencing the cumulative energy account gives the exact mean over
    the interval — no assumption that power was constant within it.
    """
    state = {"energy_j": package.energy_report().energy_j}

    def sample() -> float:
        energy_j = package.energy_report().energy_j
        delta = energy_j - state["energy_j"]
        state["energy_j"] = energy_j
        return delta * 1e9 / interval_ns

    return sample


def cstate_source(core):
    """The core's current C-state table index (0 while awake)."""

    def sample() -> float:
        cstate = core.current_cstate
        return float(cstate.index) if cstate is not None else 0.0

    return sample


def build_server_recorder(
    sim: "Simulator",
    server: "ServerNode",
    config: Optional[RecorderConfig] = None,
    trace: Optional["TraceRecorder"] = None,
) -> TimeSeriesRecorder:
    """A recorder pre-loaded with the standard series for ``server``.

    The recorder is returned un-started so callers can add watchpoints or
    extra sources first.  ``trace``, when given, receives the legacy
    ``<node>.cpu.util`` channel through a tap on the utilization source.
    """
    config = config or RecorderConfig.coarse()
    recorder = TimeSeriesRecorder(
        sim,
        telemetry=server.telemetry,
        interval_ns=config.interval_ns,
        capacity=config.capacity,
    )
    package = server.package

    recorder.add_source("cpu.freq_ghz", lambda: package.frequency_hz / 1e9)
    domains = getattr(package, "domains", None)
    if domains is not None:
        for i, domain in enumerate(domains):
            recorder.add_source(
                f"cpu.domain{i}.freq_ghz",
                (lambda d: lambda: d.frequency_hz / 1e9)(domain),
            )
    for i, core in enumerate(package.cores):
        recorder.add_source(f"core{i}.cstate", cstate_source(core))

    util_tap = None
    if trace is not None:
        channel = trace.event_channel(f"{server.name}.cpu.util")
        util_tap = channel.record
    recorder.add_source(
        "cpu.util",
        utilization_source(package, config.interval_ns),
        tap=util_tap,
    )
    recorder.add_source("power.watts", power_source(package, config.interval_ns))
    recorder.add_source("runq.depth", lambda: float(server.scheduler.queue_depth))
    recorder.add_source("nic.rx_ring", lambda: float(server.nic.rx_pending))

    registry = server.telemetry.stats
    for name in STANDARD_COUNTERS:
        if registry.get(name) is not None:
            recorder.add_stat(name)
    for pattern in config.patterns:
        recorder.add_pattern(pattern)
    return recorder
