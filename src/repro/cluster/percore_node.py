"""Per-core NCAP server (the Section 7 multi-queue extension).

A server where every core owns its own V/F domain and its own NIC rx
queue:

- RSS steers each client flow to a fixed queue/core, and RFS-style
  affinity keeps that flow's request processing on the same core;
- every queue carries its own NCAP hardware (ReqMonitor + DecisionEngine),
  driving *only its* core's cpufreq/cpuidle — per-core instead of
  chip-wide P/C-state changes;
- each domain runs its own ondemand instance, and the menu governor is
  disabled/enabled per core.

Compare against the chip-wide :class:`ServerNode` under ``ncap.cons`` with
``benchmarks/bench_percore_ncap.py``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.apps.apache import ApacheApp, ApacheProfile
from repro.apps.memcached import MemcachedApp, MemcachedProfile
from repro.core.config import NCAPConfig
from repro.core.ncap_driver import NCAPDriverExtension
from repro.core.ncap_nic import NCAPHardware
from repro.cpu.config import ProcessorConfig
from repro.cpu.core import Core
from repro.cpu.multidomain import MultiDomainProcessor
from repro.net.driver import NICDriver
from repro.net.interrupts import ModerationConfig
from repro.net.link import LinkPort
from repro.net.multiqueue import MultiQueueNIC
from repro.net.packet import Frame
from repro.oskernel.cpufreq import CpufreqDriver, OndemandGovernor
from repro.oskernel.cpuidle import CpuidleDriver, MenuGovernor
from repro.oskernel.irq import IRQController
from repro.oskernel.netstack import NetStackCosts
from repro.oskernel.scheduler import Scheduler
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.sim.units import MS
from repro.telemetry import Telemetry, ensure_telemetry


class PerCoreCpuidle:
    """Routes idle notifications to one CpuidleDriver per core, so NCAP can
    disable the menu governor on a single core."""

    def __init__(
        self,
        processor: MultiDomainProcessor,
        telemetry: Optional[Telemetry] = None,
    ):
        telemetry = ensure_telemetry(telemetry)
        governor = MenuGovernor(processor.cstates, telemetry=telemetry)
        self.drivers: List[CpuidleDriver] = [
            CpuidleDriver(
                governor,
                telemetry=telemetry,
                stats_prefix=f"cpuidle.core{core.core_id}",
            )
            for core in processor.cores
        ]

    def on_core_idle(self, core: Core) -> None:
        self.drivers[core.core_id].on_core_idle(core)

    def driver_for(self, core_id: int) -> CpuidleDriver:
        return self.drivers[core_id]


class PerCoreServerNode:
    """An OLDI server with per-core DVFS and per-queue NCAP."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        app: str,
        rng: RngRegistry,
        trace: Optional[TraceRecorder] = None,
        telemetry: Optional[Telemetry] = None,
        processor: ProcessorConfig = ProcessorConfig(),
        netstack: NetStackCosts = NetStackCosts(),
        moderation: ModerationConfig = ModerationConfig(),
        ondemand_period_ns: int = 10 * MS,
        ncap_config: Optional[NCAPConfig] = None,
        fcons: int = 5,
        apache_profile: Optional[ApacheProfile] = None,
        memcached_profile: Optional[MemcachedProfile] = None,
    ):
        self.sim = sim
        self.name = name
        self.app_name = app
        # One Telemetry instance spans all domains/queues; per-instance
        # stats prefixes (cpuidle.core<N>, driver.q<N>, ncap.q<N>) keep
        # each replica's counters separate within the shared registry.
        self.telemetry = ensure_telemetry(telemetry, trace)
        self.processor = MultiDomainProcessor(
            sim, processor, name=f"{name}.cpu", telemetry=self.telemetry
        )
        if trace is not None:
            # Pre-create per-core C-state channels (the ChannelSink only
            # creates them lazily, on the first transition).
            for core in self.processor.cores:
                trace.event_channel(f"{name}.core{core.core_id}.cstate")
        self.scheduler = Scheduler(sim, self.processor)  # facade: .cores
        self.irq = IRQController(sim, self.processor)
        self.cpuidle = PerCoreCpuidle(self.processor, telemetry=self.telemetry)
        self.scheduler.idle_hook = self.cpuidle.on_core_idle

        # Per-domain cpufreq + ondemand (each samples and runs on its core).
        self.cpufreq: List[CpufreqDriver] = []
        self.ondemand: List[OndemandGovernor] = []
        for i, domain in enumerate(self.processor.domains):
            driver = CpufreqDriver(sim, domain)
            governor = OndemandGovernor(
                sim, driver, self.irq, period_ns=ondemand_period_ns, core_id=i
            )
            self.cpufreq.append(driver)
            self.ondemand.append(governor)

        # NIC: one queue per core, one driver per queue.
        n_queues = processor.n_cores
        self.nic = MultiQueueNIC(
            sim, name=name, n_queues=n_queues, moderation=moderation,
            telemetry=self.telemetry,
        )
        self.drivers: List[NICDriver] = []

        # Application (affinity hints keep flows on their RSS core).
        app_rng = rng.stream(f"{name}.{app}")
        if app == "apache":
            self.app = ApacheApp(
                sim, self.scheduler, None, netstack, app_rng, name=name,
                profile=apache_profile or ApacheProfile(),
            )
        elif app == "memcached":
            self.app = MemcachedApp(
                sim, self.scheduler, None, netstack, app_rng, name=name,
                profile=memcached_profile or MemcachedProfile(),
            )
        else:
            raise ValueError(f"unknown app {app!r}")

        config = ncap_config or NCAPConfig(fcons=fcons)
        self.ncap_hw: List[NCAPHardware] = []
        self.ncap_ext: List[NCAPDriverExtension] = []
        for i, queue in enumerate(self.nic.queues):
            driver = NICDriver(
                sim, queue, self.irq, netstack, core_id=i,  # type: ignore[arg-type]
                stats_prefix=f"driver.q{i}",
            )
            driver.packet_sink = self._make_sink(i)
            domain = self.processor.domains[i]
            hardware = NCAPHardware(
                sim, queue, config,  # type: ignore[arg-type]
                cpu_at_max=lambda d=domain: d.at_max_performance,
                stats_prefix=f"ncap.q{i}",
            )
            extension = NCAPDriverExtension(
                config,
                self.cpufreq[i],
                self.scheduler,
                cpuidle=self.cpuidle.driver_for(i),
                ondemand=self.ondemand[i],
                wake_core=self.processor.cores[i],
            )
            driver.icr_hooks.append(extension.on_icr)
            self.drivers.append(driver)
            self.ncap_hw.append(hardware)
            self.ncap_ext.append(extension)
        # The app transmits through the shared tx path via the first driver.
        self.app._driver = self.drivers[0]

    def _make_sink(self, core_id: int):
        def sink(frame: Frame) -> None:
            self.app.affinity_hint = core_id
            try:
                self.app.on_packet(frame)
            finally:
                self.app.affinity_hint = None

        return sink

    # -- link endpoint ------------------------------------------------------

    def receive_frame(self, frame: Frame) -> None:
        self.nic.receive_frame(frame)

    def attach_port(self, port: LinkPort) -> None:
        self.nic.attach_port(port)

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        for governor in self.ondemand:
            governor.start()
        for hardware in self.ncap_hw:
            hardware.start()

    def stop(self) -> None:
        for governor in self.ondemand:
            governor.stop()
        for hardware in self.ncap_hw:
            hardware.stop()

    # -- accounting ----------------------------------------------------------------

    def energy_report(self):
        return self.processor.energy_report()

    def total_it_high_posts(self) -> int:
        return sum(h.engine.it_high_posts for h in self.ncap_hw)

    def total_immediate_rx_posts(self) -> int:
        return sum(h.engine.immediate_rx_posts for h in self.ncap_hw)
