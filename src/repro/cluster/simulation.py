"""Experiment runner: the paper's four-node cluster, end to end.

Topology (Section 5): three open-loop clients and one server, joined by a
switch over 10 Gb/s, 1 µs links.  Each run has a warmup window (excluded
from all measurements), a measurement window (request latencies are
attributed to their *send* time; energy is the meter delta across the
window), and a drain window so in-flight requests can complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.analysis.attribution import AttributionReport, AttributionSink
from repro.analysis.audit import InvariantAuditor
from repro.analysis.energy import EnergyAttribution, attribution_between
from repro.analysis.sketch import StreamingSketch
from repro.apps.client import (
    OpenLoopClient,
    http_request_factory,
    memcached_request_factory,
)
from repro.apps.workload import burst_period_ns, default_burst_size, sla_for
from repro.cluster.node import ServerNode
from repro.cluster.policies import PolicyConfig
from repro.cluster.recording import build_server_recorder, utilization_source
from repro.core.config import NCAPConfig
from repro.cpu.config import ProcessorConfig
from repro.cpu.energy import EnergyReport
from repro.metrics.energy import average_power_w, energy_delta
from repro.metrics.latency import LatencyStats
from repro.net.interrupts import ModerationConfig
from repro.net.link import Link
from repro.net.switch import Switch
from repro.oskernel.cpuidle import build_idle_accounting
from repro.oskernel.netstack import NetStackCosts
from repro.profiling.profiler import LoopProfile, SimProfiler
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import NullTraceRecorder, TraceRecorder
from repro.sim.units import MS, US, gbps
from repro.telemetry import ChannelSink, Telemetry
from repro.telemetry.recorder import (
    TimeSeriesRecorder,
    TimeseriesBundle,
    resolve_recorder_config,
)
from repro.telemetry.triggers import Watchpoint


@dataclass
class ExperimentConfig:
    """One cluster run."""

    app: str = "apache"
    policy: Union[str, PolicyConfig] = "perf"
    target_rps: float = 24_000.0
    n_clients: int = 3
    #: Per-client burst size; None selects the application default
    #: (Apache 200, Memcached 75 — see ``repro.apps.workload``).
    burst_size: Optional[int] = None
    #: Fractional jitter on each client's burst period.  Datacenter burst
    #: timing is highly variable (Benson et al., the paper's [30]); 0.30
    #: reproduces the unpredictable inter-burst gaps that make reactive
    #: governors mispredict (Section 3 of the paper).
    burst_jitter: float = 0.30
    warmup_ns: int = 40 * MS
    measure_ns: int = 300 * MS
    drain_ns: int = 60 * MS
    seed: int = 1
    ondemand_period_ns: int = 10 * MS
    collect_traces: bool = False
    link_bandwidth_bps: float = gbps(10)
    link_latency_ns: int = 1 * US
    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    netstack: NetStackCosts = field(default_factory=NetStackCosts)
    moderation: ModerationConfig = field(default_factory=ModerationConfig)
    #: Override the NIC's per-frame rx DMA latency (None = NIC default).
    #: Used by the TOE-slack ablation (Section 7 of the paper).
    nic_dma_latency_ns: Optional[int] = None
    ncap_base_config: Optional[NCAPConfig] = None
    apache_profile: Optional[object] = None
    memcached_profile: Optional[object] = None

    @property
    def sla_ns(self) -> int:
        return sla_for(self.app)

    @property
    def end_ns(self) -> int:
        return self.warmup_ns + self.measure_ns + self.drain_ns

    @classmethod
    def from_settings(cls, settings, **overrides) -> "ExperimentConfig":
        """Build a config whose run windows and seed come from ``settings``.

        ``settings`` is any object with ``warmup_ns``/``measure_ns``/
        ``drain_ns``/``seed`` attributes (normally a
        :class:`repro.experiments.common.RunSettings`); every other field,
        including an explicit ``seed``, can be overridden via keywords.
        """
        fields = dict(
            warmup_ns=settings.warmup_ns,
            measure_ns=settings.measure_ns,
            drain_ns=settings.drain_ns,
            seed=settings.seed,
        )
        fields.update(overrides)
        return cls(**fields)


@dataclass
class ExperimentResult:
    """Everything a bench/table needs from one run.

    ``trace`` and ``server`` are populated only on request
    (``collect_traces=True`` / ``keep_server=True``): the live server
    pins the whole simulated cluster in memory and makes the result
    unpicklable, which sweeps and process-pool runs cannot afford.
    """

    policy_name: str
    app: str
    target_rps: float
    latency: LatencyStats
    energy: EnergyReport
    avg_power_w: float
    sla_ns: int
    meets_sla: bool
    requests_sent: int
    responses_received: int
    incomplete: int
    achieved_rps: float
    cstate_entries: Dict[str, int]
    ncap_stats: Dict[str, int]
    #: Flat snapshot of the server's stats registry (``nic.rx.frames``,
    #: ``cpuidle.c6.entries``, ``governor.ondemand.invocations``, …),
    #: taken at the end of the run.  Additive: existing fields above are
    #: unchanged by its presence.
    counters: Dict[str, float] = field(default_factory=dict)
    #: Critical-path attribution summary, populated when an
    #: :class:`~repro.analysis.attribution.AttributionSink` was attached.
    #: Additive: None on plain runs.
    attribution: Optional[AttributionReport] = None
    #: Flight-recorder capture, populated when the run was built with
    #: ``record_timeseries=`` (a preset name, ``True``, or a
    #: :class:`~repro.telemetry.recorder.RecorderConfig`).  Plain
    #: JSON-able data — the result stays picklable for pool sweeps.
    timeseries: Optional[TimeseriesBundle] = None
    #: Simulator self-profile (per-handler wall-time attribution, heap
    #: health), populated when the run was built with ``profile=``.
    #: Plain data — picklable for pool sweeps.  Additive: None on plain
    #: runs.
    profile: Optional[LoopProfile] = None
    #: Energy decomposition + governor-miss accounting over the
    #: measurement window, populated when the run was built with
    #: ``energy_attribution=True``.  Plain data — picklable.  Additive:
    #: None on plain runs.
    energy_attribution: Optional[EnergyAttribution] = None
    trace: Optional[TraceRecorder] = None
    server: Optional[ServerNode] = None

    @property
    def normalized_latency(self) -> Dict[str, float]:
        return self.latency.normalized_to(self.sla_ns)


class Cluster:
    """A built (but not yet run) four-node experiment."""

    def __init__(
        self,
        config: ExperimentConfig,
        sinks: Optional[Iterable] = None,
        audit: bool = False,
        streaming_latency: bool = False,
        record_timeseries: Union[None, bool, str, object] = None,
        watchpoints: Optional[Iterable[Watchpoint]] = None,
        profile: Union[None, bool, SimProfiler] = None,
        energy_attribution: bool = False,
        sim_factory: Optional[Callable[[], Simulator]] = None,
    ):
        self.config = config
        #: ``sim_factory`` is an observer-style knob like ``profile=`` —
        #: never a config field: it must not change results (the parity
        #: tests prove it) so it must not invalidate cached ones.  Used
        #: to rerun experiments on the retained HeapScheduler reference.
        self.sim = sim_factory() if sim_factory is not None else Simulator()
        #: Simulator self-profiler — an observer like sinks/audit, never
        #: a config field (mirroring ``record_timeseries=``): attaching
        #: it must not invalidate cached results.
        self.profiler: Optional[SimProfiler] = (
            (SimProfiler() if profile is True else profile) or None
        )
        if self.profiler is not None:
            self.sim.set_profiler(self.profiler)
        self.trace: TraceRecorder = (
            TraceRecorder() if config.collect_traces else NullTraceRecorder()
        )
        self.rng = RngRegistry(config.seed)
        # Sinks attach here (constructor argument, NOT a config field:
        # ExperimentConfig feeds the sweep cache hash, and attaching an
        # observer must not invalidate cached results).  With no sinks and
        # collect_traces=False every probe stays disabled — the hot path
        # pays a single truthiness check.  ``audit`` and
        # ``streaming_latency`` are observers too, for the same reason.
        self.telemetry = Telemetry()
        if config.collect_traces:
            self.telemetry.add_sink(ChannelSink(self.trace))
        self.auditor: Optional[InvariantAuditor] = (
            self.telemetry.add_sink(InvariantAuditor()) if audit else None
        )
        self.attribution: Optional[AttributionSink] = None
        for sink in sinks or ():
            self.telemetry.add_sink(sink)
            if isinstance(sink, AttributionSink):
                self.attribution = sink
        self.server = ServerNode(
            self.sim,
            "server",
            config.policy,
            config.app,
            self.rng,
            trace=self.trace,
            telemetry=self.telemetry,
            processor=config.processor,
            netstack=config.netstack,
            moderation=config.moderation,
            ondemand_period_ns=config.ondemand_period_ns,
            nic_dma_latency_ns=config.nic_dma_latency_ns,
            ncap_base_config=config.ncap_base_config,
            apache_profile=config.apache_profile,
            memcached_profile=config.memcached_profile,
        )
        self.switch = Switch(self.sim)
        self.clients: List[OpenLoopClient] = []
        self._energy_snapshots: Dict[str, EnergyReport] = {}
        #: Energy-attribution accounting — an observer like sinks/audit,
        #: never a config field: per-idle-exit bookings only resegment the
        #: meters at boundaries that close anyway, so attaching it cannot
        #: change the simulated result (the parity test proves it).
        self.energy_accounting = None
        self._accounting_snapshots: Dict[str, Dict[str, object]] = {}
        if energy_attribution:
            cpuidle = self.server.cpuidle
            self.energy_accounting = build_idle_accounting(
                self.server.package.cstates,
                cpuidle.governor if cpuidle is not None else None,
                telemetry=self.telemetry,
            )
            self.energy_accounting.attach(self.server.package.cores)
        window = (config.warmup_ns, config.warmup_ns + config.measure_ns)
        if self.attribution is not None:
            # The sink needs F_max (to re-cost cycles) and the measurement
            # window (to scope which requests feed the report).
            if self.attribution.f_max_hz is None:
                self.attribution.f_max_hz = self.server.package.max_frequency_hz
            if self.attribution.measure_window is None:
                self.attribution.measure_window = window
        #: Streaming-latency mode: clients retain no per-sample RTT list;
        #: the measurement window's population streams into one sketch
        #: (O(1) memory for arbitrarily long runs).
        self.latency_sketch: Optional[StreamingSketch] = (
            StreamingSketch() if streaming_latency else None
        )
        #: Flight recorder — an observer like sinks/audit, never a config
        #: field.  ``record_timeseries=`` builds the full standard-series
        #: recorder (and exports a bundle on the result); with only
        #: ``collect_traces`` a minimal recorder keeps the legacy
        #: ``<node>.cpu.util`` channel alive at the retired
        #: UtilizationSampler's exact cadence and bin math.
        self.recorder: Optional[TimeSeriesRecorder] = None
        self._export_timeseries = False
        recorder_config = resolve_recorder_config(record_timeseries)
        if recorder_config is not None:
            self.recorder = build_server_recorder(
                self.sim,
                self.server,
                recorder_config,
                trace=self.trace if config.collect_traces else None,
            )
            for watchpoint in watchpoints or ():
                self.recorder.add_watchpoint(watchpoint)
            self._export_timeseries = True
        elif config.collect_traces:
            interval_ns = 1 * MS
            recorder = TimeSeriesRecorder(
                self.sim, telemetry=self.telemetry, interval_ns=interval_ns
            )
            channel = self.trace.event_channel(f"{self.server.name}.cpu.util")
            recorder.add_source(
                "cpu.util",
                utilization_source(self.server.package, interval_ns),
                tap=channel.record,
            )
            self.recorder = recorder

        burst_size = (
            config.burst_size
            if config.burst_size is not None
            else default_burst_size(config.app)
        )
        self.burst_size = burst_size
        period = burst_period_ns(config.target_rps, config.n_clients, burst_size)
        for i in range(config.n_clients):
            name = f"client{i}"
            if config.app == "apache":
                factory = http_request_factory(name, "server")
            else:
                factory = memcached_request_factory(
                    name, "server", rng=self.rng.stream(f"{name}.keys")
                )
            client = OpenLoopClient(
                self.sim,
                name,
                factory,
                burst_size=burst_size,
                burst_period_ns=period,
                jitter_rng=self.rng.stream(f"{name}.jitter"),
                jitter_fraction=config.burst_jitter,
                retain_rtts=self.latency_sketch is None,
                measure_window=window if self.latency_sketch is not None else None,
            )
            if self.attribution is not None:
                client.rtt_listeners.append(self._attribution_listener(name))
            if self.latency_sketch is not None:
                client.rtt_listeners.append(self._sketch_listener(window))
            self.clients.append(client)

        # Star topology around the switch.
        server_link = Link(self.sim, config.link_bandwidth_bps, config.link_latency_ns)
        server_link.attach(self.server, self.switch)
        self.server.attach_port(server_link.endpoint_port(self.server))
        self.switch.attach_link(server_link, "server")
        for client in self.clients:
            link = Link(self.sim, config.link_bandwidth_bps, config.link_latency_ns)
            link.attach(client, self.switch)
            client.attach_port(link.endpoint_port(client))
            self.switch.attach_link(link, client.name)

    def _attribution_listener(self, client_name: str):
        sink = self.attribution

        def listener(req_id: int, send_ns: int, rtt_ns: int) -> None:
            sink.on_client_rtt(client_name, req_id, send_ns, rtt_ns)

        return listener

    def _sketch_listener(self, window):
        sketch = self.latency_sketch
        start, end = window

        def listener(req_id: int, send_ns: int, rtt_ns: int) -> None:
            if start <= send_ns < end:
                sketch.add(rtt_ns)

        return listener

    def _window_snapshot(self, tag: str) -> None:
        """Measurement-window boundary: cumulative energy (and, when the
        accounting observer is attached, idle-accounting) snapshots, taken
        in one callback so both see the same meter state."""
        self._energy_snapshots[tag] = self.server.package.energy_report()
        if self.energy_accounting is not None:
            self._accounting_snapshots[tag] = self.energy_accounting.snapshot()

    def run(self, keep_server: bool = False) -> ExperimentResult:
        """Simulate and extract the result in one call."""
        self.simulate()
        return self.collect(keep_server=keep_server)

    def simulate(self) -> None:
        """Drive the cluster through warmup, measurement, and drain."""
        config = self.config
        self.server.start()
        if self.recorder is not None:
            self.recorder.start()
        # Clients start aligned: their bursts aggregate into the BW(Rx)
        # surges of Figure 4 (the paper's clients are synchronized periodic
        # sources).  The small per-period jitter keeps the alignment from
        # being perfectly rigid over long runs.
        for client in self.clients:
            client.start(initial_delay_ns=0)

        window_start = config.warmup_ns
        window_end = config.warmup_ns + config.measure_ns

        self._energy_snapshots = {}
        self.sim.schedule_at(window_start, self._window_snapshot, "start")
        self.sim.schedule_at(window_end, self._window_snapshot, "end")
        # Stop generating traffic at window end; drain afterwards.
        for client in self.clients:
            self.sim.schedule_at(window_end, client.stop)
        self.sim.run(until=config.end_ns)

    def collect(self, keep_server: bool = False) -> ExperimentResult:
        """Extract a result from a finished simulation.

        With an auditor attached this is where it renders judgement:
        any violation (streamed or end-of-run) raises
        :class:`~repro.analysis.audit.AuditError`.
        """
        config = self.config
        snapshots = self._energy_snapshots
        window_start = config.warmup_ns
        window_end = config.warmup_ns + config.measure_ns

        energy_attribution: Optional[EnergyAttribution] = None
        if self.energy_accounting is not None:
            energy_attribution = attribution_between(
                self._accounting_snapshots["start"],
                self._accounting_snapshots["end"],
                energy_delta(snapshots["start"], snapshots["end"]),
            )

        if self.auditor is not None:
            self.auditor.finish(
                cluster=self,
                attribution=self.attribution,
                energy_attribution=energy_attribution,
            )

        sent = 0
        responses = 0
        if self.latency_sketch is not None:
            for client in self.clients:
                sent += client.sent_in_window(window_start, window_end)
            latency = LatencyStats.from_sketch(self.latency_sketch)
            responses = self.latency_sketch.count
        else:
            rtts: List[int] = []
            for client in self.clients:
                rtts.extend(client.rtts_in_window(window_start, window_end))
                sent += client.sent_in_window(window_start, window_end)
            latency = LatencyStats.from_values(rtts)
            responses = len(rtts)
        energy = energy_delta(snapshots["start"], snapshots["end"])

        ncap_stats: Dict[str, int] = {}
        engine = self.server.engine
        if engine is not None:
            ncap_stats = {
                "it_high_posts": engine.it_high_posts,
                "it_low_posts": engine.it_low_posts,
                "immediate_rx_posts": engine.immediate_rx_posts,
            }
        cstate_entries: Dict[str, int] = {}
        for core in self.server.package.cores:
            for state, count in core.cstate_entries.items():
                cstate_entries[state] = cstate_entries.get(state, 0) + count

        return ExperimentResult(
            policy_name=self.server.policy.name,
            app=config.app,
            target_rps=config.target_rps,
            latency=latency,
            energy=energy,
            avg_power_w=average_power_w(energy, config.measure_ns),
            sla_ns=config.sla_ns,
            meets_sla=latency.meets_sla(config.sla_ns),
            requests_sent=sent,
            responses_received=responses,
            incomplete=sent - responses,
            achieved_rps=sent * 1e9 / config.measure_ns,
            cstate_entries=cstate_entries,
            ncap_stats=ncap_stats,
            counters=self.server.telemetry.stats.snapshot(),
            attribution=(
                self.attribution.summary() if self.attribution is not None else None
            ),
            timeseries=(
                self.recorder.bundle() if self._export_timeseries else None
            ),
            profile=(
                self.profiler.profile() if self.profiler is not None else None
            ),
            energy_attribution=energy_attribution,
            trace=self.trace if config.collect_traces else None,
            server=self.server if keep_server else None,
        )


def run_experiment(
    config: ExperimentConfig,
    keep_server: bool = False,
    sinks: Optional[Iterable] = None,
    audit: bool = False,
    streaming_latency: bool = False,
    record_timeseries: Union[None, bool, str, object] = None,
    watchpoints: Optional[Iterable[Watchpoint]] = None,
    profile: Union[None, bool, SimProfiler] = None,
    energy_attribution: bool = False,
) -> ExperimentResult:
    """Build and run one cluster experiment.

    Pass ``keep_server=True`` to retain the live :class:`ServerNode` on the
    result for post-hoc inspection (engine counters, wake times); the
    default lightweight result stays picklable and lets the cluster be
    garbage-collected between sweep points.  ``sinks`` (e.g. a
    :class:`repro.telemetry.ChromeTraceSink` or an
    :class:`repro.analysis.attribution.AttributionSink`) are attached to
    the server's telemetry before the node is built.  ``audit=True``
    attaches an :class:`~repro.analysis.audit.InvariantAuditor` that
    raises on any inconsistency; ``streaming_latency=True`` aggregates
    latency through an O(1)-memory sketch instead of retaining every RTT.
    ``record_timeseries`` (``True``, ``"coarse"``/``"fine"``, or a
    :class:`~repro.telemetry.recorder.RecorderConfig`) attaches the
    flight recorder and populates ``result.timeseries``; ``watchpoints``
    arms :class:`~repro.telemetry.triggers.Watchpoint` triggers on it.
    ``profile`` (``True`` or a :class:`~repro.profiling.SimProfiler`)
    swaps in the instrumented dispatch loop and populates
    ``result.profile`` with per-handler wall-time attribution and heap
    health.  ``energy_attribution=True`` attaches the idle-accounting
    observer and populates ``result.energy_attribution`` with the
    telescoping energy decomposition and governor-miss grades.  None of
    these are config fields, so none invalidate cached results.
    """
    return Cluster(
        config,
        sinks=sinks,
        audit=audit,
        streaming_latency=streaming_latency,
        record_timeseries=record_timeseries,
        watchpoints=watchpoints,
        profile=profile,
        energy_attribution=energy_attribution,
    ).run(keep_server=keep_server)
