"""The seven power-management policies evaluated in Section 6.

Conventional policies:

- ``perf``      — performance governor, C-states disabled;
- ``ond``       — ondemand governor, C-states disabled;
- ``perf.idle`` — performance governor + menu governor;
- ``ond.idle``  — ondemand governor + menu governor.

NCAP policies (all run *atop* ond.idle, per the paper):

- ``ncap.sw``   — software NCAP in the NIC kernel driver;
- ``ncap.cons`` — hardware NCAP, FCONS = 5 (conservative F reduction);
- ``ncap.aggr`` — hardware NCAP, FCONS = 1 (aggressive F reduction).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Union

from repro.core.config import NCAPConfig


@dataclass(frozen=True)
class PolicyConfig:
    """One server power-management configuration.

    The seven named policies of the paper use the ``performance`` and
    ``ondemand`` P-state governors with the ``menu`` C-state governor;
    ``powersave`` and ``ladder`` (both described in Section 2.1) are
    supported for custom configurations and ablations.
    """

    name: str
    governor: str = "performance"       # "performance" | "ondemand" | "powersave"
    cstates: bool = False               # C-state governor active?
    cpuidle_governor: str = "menu"      # "menu" | "ladder"
    ncap: Optional[str] = None          # None | "hw" | "sw"
    fcons: int = 5

    def __post_init__(self) -> None:
        if self.governor not in ("performance", "ondemand", "powersave"):
            raise ValueError(f"unknown governor {self.governor!r}")
        if self.cpuidle_governor not in ("menu", "ladder"):
            raise ValueError(f"unknown cpuidle governor {self.cpuidle_governor!r}")
        if self.ncap not in (None, "hw", "sw"):
            raise ValueError(f"unknown ncap mode {self.ncap!r}")

    def ncap_config(self, base: Optional[NCAPConfig] = None) -> Optional[NCAPConfig]:
        """The NCAP configuration for this policy (None when NCAP is off)."""
        if self.ncap is None:
            return None
        base = base or NCAPConfig()
        return replace(base, fcons=self.fcons)

    @property
    def uses_ncap(self) -> bool:
        return self.ncap is not None


POLICIES: Dict[str, PolicyConfig] = {
    "perf": PolicyConfig("perf", governor="performance", cstates=False),
    "ond": PolicyConfig("ond", governor="ondemand", cstates=False),
    "perf.idle": PolicyConfig("perf.idle", governor="performance", cstates=True),
    "ond.idle": PolicyConfig("ond.idle", governor="ondemand", cstates=True),
    "ncap.sw": PolicyConfig(
        "ncap.sw", governor="ondemand", cstates=True, ncap="sw", fcons=5
    ),
    "ncap.cons": PolicyConfig(
        "ncap.cons", governor="ondemand", cstates=True, ncap="hw", fcons=5
    ),
    "ncap.aggr": PolicyConfig(
        "ncap.aggr", governor="ondemand", cstates=True, ncap="hw", fcons=1
    ),
}

#: The order the paper's figures present policies in.
POLICY_ORDER = ["perf", "ond", "perf.idle", "ond.idle", "ncap.sw", "ncap.cons", "ncap.aggr"]


def get_policy(policy: Union[str, PolicyConfig]) -> PolicyConfig:
    """Resolve a policy by name (pass-through for PolicyConfig)."""
    if isinstance(policy, PolicyConfig):
        return policy
    try:
        return POLICIES[policy]
    except KeyError:
        raise KeyError(
            f"unknown policy {policy!r}; choose from {sorted(POLICIES)}"
        ) from None
