"""Node wiring: a full server (CPU + OS + NIC + app) and clients.

A :class:`ServerNode` assembles the whole stack for one policy:

- processor package (Table 1), scheduler, IRQ controller;
- cpufreq driver + the policy's P-state governor;
- cpuidle driver + menu governor (when the policy enables C-states);
- NIC + driver + the application (Apache or Memcached);
- NCAP hardware or software, when the policy asks for it.

The node itself is the link endpoint (frames for ``node.name`` terminate
at its NIC).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.apps.apache import ApacheApp, ApacheProfile
from repro.apps.memcached import MemcachedApp, MemcachedProfile
from repro.core.config import NCAPConfig
from repro.core.ncap_driver import NCAPDriverExtension
from repro.core.ncap_nic import NCAPHardware
from repro.core.ncap_sw import NCAPSoftware
from repro.cluster.policies import PolicyConfig, get_policy
from repro.cpu.config import ProcessorConfig
from repro.net.driver import NICDriver
from repro.net.interrupts import ModerationConfig
from repro.net.link import LinkPort
from repro.net.nic import NIC
from repro.net.packet import Frame
from repro.oskernel.cpufreq import (
    CpufreqDriver,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from repro.oskernel.cpuidle import CpuidleDriver, LadderGovernor, MenuGovernor
from repro.oskernel.irq import IRQController
from repro.oskernel.netstack import NetStackCosts
from repro.oskernel.scheduler import Scheduler
from repro.oskernel.sysfs import SysFS
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.sim.units import MS
from repro.telemetry import Telemetry, ensure_telemetry


class ServerNode:
    """One OLDI server under a given power-management policy."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        policy: Union[str, PolicyConfig],
        app: str,
        rng: RngRegistry,
        trace: Optional[TraceRecorder] = None,
        telemetry: Optional[Telemetry] = None,
        processor: ProcessorConfig = ProcessorConfig(),
        netstack: NetStackCosts = NetStackCosts(),
        moderation: ModerationConfig = ModerationConfig(),
        ondemand_period_ns: int = 10 * MS,
        nic_dma_latency_ns: Optional[int] = None,
        ncap_base_config: Optional[NCAPConfig] = None,
        apache_profile: Optional[ApacheProfile] = None,
        memcached_profile: Optional[MemcachedProfile] = None,
    ):
        self.sim = sim
        self.name = name
        self.policy = get_policy(policy)
        self.app_name = app
        self.trace = trace

        # One Telemetry instance is shared by every component of the node,
        # so the stats registry namespaces (nic.*, cpuidle.*, governor.*,
        # ncap.*, app.*) all live together and a single snapshot covers the
        # whole server.  A ChannelSink bridges probe events back into the
        # legacy trace channels when a TraceRecorder is supplied.
        self.telemetry = ensure_telemetry(telemetry, trace)

        self.package = processor.build_package(
            sim, name=f"{name}.cpu", telemetry=self.telemetry
        )
        if trace is not None:
            # Pre-create the per-core C-state channels so traces expose
            # them even for cores that never sleep (the ChannelSink only
            # creates channels lazily, on the first transition).
            for core in self.package.cores:
                trace.event_channel(f"{name}.core{core.core_id}.cstate")
        self.scheduler = Scheduler(sim, self.package)
        self.irq = IRQController(sim, self.package)
        self.cpufreq = CpufreqDriver(sim, self.package)
        self.sysfs = SysFS()

        # -- P-state governor --
        self.ondemand: Optional[OndemandGovernor] = None
        if self.policy.governor == "ondemand":
            self.ondemand = OndemandGovernor(
                sim, self.cpufreq, self.irq, period_ns=ondemand_period_ns
            )
            self.governor = self.ondemand
        elif self.policy.governor == "powersave":
            self.governor = PowersaveGovernor(self.cpufreq)
        else:
            self.governor = PerformanceGovernor(self.cpufreq)

        # -- C-state governor --
        self.cpuidle: Optional[CpuidleDriver] = None
        if self.policy.cstates:
            if self.policy.cpuidle_governor == "ladder":
                idle_governor = LadderGovernor(
                    self.package.cstates, telemetry=self.telemetry
                )
            else:
                idle_governor = MenuGovernor(
                    self.package.cstates, telemetry=self.telemetry
                )
            self.cpuidle = CpuidleDriver(idle_governor, telemetry=self.telemetry)
            self.scheduler.idle_hook = self.cpuidle.on_core_idle

        # -- NIC + driver --
        nic_kwargs = {}
        if nic_dma_latency_ns is not None:
            nic_kwargs["dma_latency_ns"] = nic_dma_latency_ns
        self.nic = NIC(
            sim, name=name, moderation=moderation,
            telemetry=self.telemetry, **nic_kwargs,
        )
        self.driver = NICDriver(sim, self.nic, self.irq, netstack)

        # -- application --
        app_rng = rng.stream(f"{name}.{app}")
        if app == "apache":
            self.app = ApacheApp(
                sim, self.scheduler, self.driver, netstack, app_rng, name=name,
                profile=apache_profile or ApacheProfile(),
            )
        elif app == "memcached":
            self.app = MemcachedApp(
                sim, self.scheduler, self.driver, netstack, app_rng, name=name,
                profile=memcached_profile or MemcachedProfile(),
            )
        else:
            raise ValueError(f"unknown app {app!r}")
        self.driver.packet_sink = self.app.on_packet

        # -- NCAP --
        self.ncap_hw: Optional[NCAPHardware] = None
        self.ncap_sw: Optional[NCAPSoftware] = None
        self.ncap_ext: Optional[NCAPDriverExtension] = None
        ncap_config = self.policy.ncap_config(ncap_base_config)
        if ncap_config is not None:
            self.ncap_ext = NCAPDriverExtension(
                ncap_config,
                self.cpufreq,
                self.scheduler,
                cpuidle=self.cpuidle,
                ondemand=self.ondemand,
            )
            if self.policy.ncap == "hw":
                self.ncap_hw = NCAPHardware(
                    sim,
                    self.nic,
                    ncap_config,
                    cpu_at_max=lambda: self.package.at_max_performance,
                )
                self.driver.icr_hooks.append(self.ncap_ext.on_icr)
                self.ncap_hw.register_sysfs(
                    self.sysfs, prefix=f"/sys/class/net/{name}/ncap"
                )
            else:
                self.ncap_sw = NCAPSoftware(
                    sim, self.driver, self.irq, ncap_config, self.ncap_ext,
                )

    # -- link endpoint (NetDevice) ------------------------------------------

    def receive_frame(self, frame: Frame) -> None:
        self.nic.receive_frame(frame)

    def receive_burst(self, frames, times) -> None:
        """Vectorized link delivery — hands the whole burst to the NIC."""
        self.nic.receive_burst(frames, times)

    def attach_port(self, port: LinkPort) -> None:
        self.nic.attach_port(port)

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        self.governor.start()
        if self.ncap_hw is not None:
            self.ncap_hw.start()
        if self.ncap_sw is not None:
            self.ncap_sw.start()

    def stop(self) -> None:
        self.governor.stop()
        if self.ncap_hw is not None:
            self.ncap_hw.stop()
        if self.ncap_sw is not None:
            self.ncap_sw.stop()

    # -- introspection ----------------------------------------------------------------

    @property
    def engine(self):
        """The active DecisionEngine, if any (hw or sw)."""
        if self.ncap_hw is not None:
            return self.ncap_hw.engine
        if self.ncap_sw is not None:
            return self.ncap_sw.engine
        return None
