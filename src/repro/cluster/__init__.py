"""Cluster wiring: nodes, policies, and the experiment runner."""

from repro.cluster.node import ServerNode
from repro.cluster.policies import POLICIES, POLICY_ORDER, PolicyConfig, get_policy
from repro.cluster.simulation import (
    Cluster,
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)

__all__ = [
    "ServerNode",
    "POLICIES",
    "POLICY_ORDER",
    "PolicyConfig",
    "get_policy",
    "Cluster",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
]
