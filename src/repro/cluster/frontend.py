"""The frontend / load-balancer tier of a sharded datacenter run.

CARGO's observation (PAPERS.md) is that cluster-level power management
depends on *how load reaches the servers*, not just on what each server
does with it — so the spray tier is modelled as a first-class part of the
experiment.  An open-loop population of ``n_users`` users issues request
bursts at the fleet's aggregate rate; each request is assigned to a
server by a pluggable spray policy and dispatched after a fixed
frontend→server latency ``dispatch_latency_ns``.

That latency is also the conservative-lookahead window of the sharded
coordinator (:mod:`repro.cluster.sharding`): spray decisions for window
``n`` are taken before window ``n`` starts executing, using the
per-server load view observed at the previous window boundary.  Because
every dispatch leaves the frontend at ``decision + dispatch_latency``,
the view a decision uses is always strictly older than the send it
produces — exactly the (at least one RTT of) staleness a real
load-balancer tier operates under — and, crucially, the plan is a pure
function of the config seed: it is identical no matter how many shards
execute it, which is what makes sharded runs bit-identical to
single-process runs.

Spray policies:

- ``consistent-hash`` — static ring with virtual nodes keyed by a stable
  hash (CRC-32; Python's randomized ``hash()`` would break determinism);
  session affinity, load follows the ring share.
- ``least-loaded`` — pick the server with the lowest estimated
  outstanding count (O(n_servers) per request).
- ``po2`` — power-of-two-choices: sample two distinct servers, pick the
  less loaded (O(1) per request, near-optimal balance).

The load estimate for server ``s`` is ``view[s]`` (outstanding requests
at the last window boundary) plus every dispatch this frontend has since
decided whose send time the view cannot have seen yet.
"""

from __future__ import annotations

import itertools
import random
import zlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.apps.workload import burst_arrival_times, burst_period_ns
from repro.telemetry.tracing import is_sampled
from repro.net.link import LinkPort
from repro.net.packet import Frame, make_http_request, make_memcached_request
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.units import MS

SPRAY_POLICIES = ("consistent-hash", "least-loaded", "po2")


@dataclass(frozen=True)
class FrontendConfig:
    """Configuration of the frontend tier (hashes into the config hash)."""

    #: Size of the open-loop user population requests are drawn from.
    n_users: int = 100_000
    #: Spray policy name (see :data:`SPRAY_POLICIES`).
    spray: str = "po2"
    #: Requests per frontend burst (the fleet-aggregate burst).
    burst_size: int = 200
    #: Spacing of request decisions inside one burst.
    intra_burst_gap_ns: int = 1_000
    #: Frontend→server dispatch latency.  Doubles as the conservative
    #: lookahead window of the sharded coordinator.
    dispatch_latency_ns: int = 1 * MS
    #: Virtual nodes per server on the consistent-hash ring.
    hash_replicas: int = 64
    #: Memcached key space sprayed over (ignored for HTTP workloads).
    keyspace: int = 100_000

    def __post_init__(self) -> None:
        if self.spray not in SPRAY_POLICIES:
            raise ValueError(
                f"unknown spray policy {self.spray!r}; "
                f"choose from {SPRAY_POLICIES}"
            )
        if self.n_users < 1:
            raise ValueError("n_users must be at least 1")
        if self.burst_size < 1:
            raise ValueError("burst_size must be at least 1")
        if self.intra_burst_gap_ns < 0:
            raise ValueError("intra_burst_gap_ns must be non-negative")
        if self.dispatch_latency_ns < 1:
            raise ValueError("dispatch_latency_ns must be positive")
        if self.hash_replicas < 1:
            raise ValueError("hash_replicas must be at least 1")


def _stable_hash(key: str) -> int:
    """Process-stable 32-bit hash (``hash()`` is salted per process)."""
    return zlib.crc32(key.encode("ascii"))


class ConsistentHashSpray:
    """Static ring with virtual nodes; user identity picks the server."""

    def __init__(self, n_servers: int, rng: random.Random, replicas: int):
        points: List[Tuple[int, int]] = []
        for server in range(n_servers):
            for replica in range(replicas):
                points.append((_stable_hash(f"s{server}:r{replica}"), server))
        points.sort()
        self._points = [p for p, _ in points]
        self._servers = [s for _, s in points]

    def choose(self, user: int, est: Sequence[int]) -> int:
        h = _stable_hash(f"u{user}")
        i = bisect_right(self._points, h)
        if i == len(self._points):  # wrap around the ring
            i = 0
        return self._servers[i]


class LeastLoadedSpray:
    """Global minimum of the estimated outstanding counts."""

    def __init__(self, n_servers: int, rng: random.Random, replicas: int):
        self._n = n_servers

    def choose(self, user: int, est: Sequence[int]) -> int:
        return min(range(self._n), key=lambda s: (est[s], s))

class PowerOfTwoSpray:
    """Two uniform candidates, pick the less loaded (ties: lower index)."""

    def __init__(self, n_servers: int, rng: random.Random, replicas: int):
        self._n = n_servers
        self._rng = rng

    def choose(self, user: int, est: Sequence[int]) -> int:
        if self._n == 1:
            return 0
        a = self._rng.randrange(self._n)
        b = self._rng.randrange(self._n - 1)
        if b >= a:
            b += 1
        if (est[b], b) < (est[a], a):
            return b
        return a


_SPRAY_CLASSES = {
    "consistent-hash": ConsistentHashSpray,
    "least-loaded": LeastLoadedSpray,
    "po2": PowerOfTwoSpray,
}


def make_spray(name: str, n_servers: int, rng: random.Random, replicas: int):
    try:
        cls = _SPRAY_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown spray policy {name!r}; choose from {SPRAY_POLICIES}"
        ) from None
    return cls(n_servers, rng, replicas)


class Dispatch(NamedTuple):
    """One planned frontend→server request."""

    send_ns: int
    server_index: int
    frame: Frame


class FrontendPlanner:
    """Coordinator-side request planner for the frontend tier.

    Runs entirely outside the shard simulators: given the config seed it
    produces the same dispatch sequence regardless of shard count or
    worker placement.  ``plan_until(t)`` emits every burst whose first
    decision falls at or before ``t``; all resulting sends are at least
    ``dispatch_latency_ns`` in the future, which is what lets the sharded
    coordinator treat them as safely inside *later* windows.
    """

    def __init__(
        self,
        frontend: FrontendConfig,
        *,
        n_servers: int,
        total_rps: float,
        app: str,
        warmup_ns: int,
        measure_ns: int,
        seed: int,
        trace_sample_every: Optional[int] = None,
    ):
        self.config = frontend
        self.n_servers = n_servers
        self.app = app
        self._period_ns = burst_period_ns(total_rps, 1, frontend.burst_size)
        self._dispatch_ns = frontend.dispatch_latency_ns
        self._warmup_ns = warmup_ns
        self._measure_ns = measure_ns
        #: No sends at or after traffic end (mirrors clients stopping at
        #: the end of the measurement window).
        self._traffic_end_ns = warmup_ns + measure_ns
        rng = RngRegistry(seed)
        self._users = rng.stream("frontend.users")
        self._keys = rng.stream("frontend.keys")
        self._spray = make_spray(
            frontend.spray, n_servers, rng.stream("frontend.spray"),
            frontend.hash_replicas,
        )
        self._req_ids = itertools.count(1)
        self._next_burst_ns = 0
        # Load-estimate state: the boundary view plus dispatch counts the
        # view cannot have seen, bucketed by the window their send lands
        # in (window k = (k*W, (k+1)*W] with W = dispatch_latency_ns).
        self._view = [0] * n_servers
        self._unseen: Dict[int, List[int]] = {}
        self._est = [0] * n_servers
        #: Total dispatches per server, and dispatches whose send time is
        #: inside the measurement window (for per-server reporting).
        self.dispatched = [0] * n_servers
        self.dispatched_in_measure = [0] * n_servers
        # Request tracing (observer-side, never in the config hash): stamp
        # deterministically-sampled dispatches with their spray decision.
        # Sampling uses the pure hash rule shared with the shard-side
        # collectors, so it consumes no RNG stream and the plan is
        # unchanged whether tracing is on or off.
        self._trace_sample_every = trace_sample_every
        #: Stamped samples: (src, req_id, user, server, decision_ns, send_ns).
        self.trace_samples: List[Tuple[str, int, int, int, int, int]] = []

    # -- load view -------------------------------------------------------

    def observe(self, boundary_ns: int, outstanding: Sequence[int]) -> None:
        """Install the per-server outstanding counts at a window boundary.

        Dispatches with ``send_ns <= boundary_ns`` are now visible in the
        view, so their unseen-buckets are dropped.
        """
        self._view = list(outstanding)
        window = self._dispatch_ns
        for key in [k for k in self._unseen if (k + 1) * window <= boundary_ns]:
            del self._unseen[key]
        est = list(self._view)
        for counts in self._unseen.values():
            for s, c in enumerate(counts):
                est[s] += c
        self._est = est

    # -- planning --------------------------------------------------------

    def plan_until(self, until_ns: int) -> List[Dispatch]:
        """Plan every burst whose first decision is at or before ``until_ns``."""
        out: List[Dispatch] = []
        cfg = self.config
        while self._next_burst_ns <= until_ns:
            burst_start = self._next_burst_ns
            self._next_burst_ns += self._period_ns
            if burst_start + self._dispatch_ns >= self._traffic_end_ns:
                continue  # the whole burst would land after traffic end
            times = burst_arrival_times(
                burst_start, cfg.burst_size, cfg.intra_burst_gap_ns
            )
            for decision_ns in times:
                send_ns = decision_ns + self._dispatch_ns
                if send_ns >= self._traffic_end_ns:
                    break
                user = self._users.randrange(cfg.n_users)
                server = self._spray.choose(user, self._est)
                self._est[server] += 1
                bucket = self._unseen.setdefault(
                    (send_ns - 1) // self._dispatch_ns, [0] * self.n_servers
                )
                bucket[server] += 1
                self.dispatched[server] += 1
                if self._warmup_ns <= send_ns < self._warmup_ns + self._measure_ns:
                    self.dispatched_in_measure[server] += 1
                frame = self._make_frame(server, user, send_ns)
                if self._trace_sample_every is not None and is_sampled(
                    frame.src, frame.req_id, self._trace_sample_every
                ):
                    self.trace_samples.append(
                        (frame.src, frame.req_id, user, server,
                         decision_ns, send_ns)
                    )
                out.append(Dispatch(send_ns, server, frame))
        return out

    def _make_frame(self, server: int, user: int, send_ns: int) -> Frame:
        src = f"frontend{server}"
        dst = f"server{server}"
        req_id = next(self._req_ids)
        if self.app == "memcached":
            key = f"key:{self._keys.randrange(self.config.keyspace)}"
            return make_memcached_request(
                src, dst, command="get", key=key,
                req_id=req_id, created_ns=send_ns,
            )
        return make_http_request(src, dst, req_id=req_id, created_ns=send_ns)

    @property
    def done(self) -> bool:
        """True once every traffic burst has been planned."""
        return self._next_burst_ns + self._dispatch_ns >= self._traffic_end_ns


class FrontendPort:
    """Shard-local network endpoint of the frontend for ONE server.

    The sending half of the tier: it injects the coordinator's planned
    dispatches into the shard simulator (vectorized through the bulk
    datapath by default) and records RTTs of the responses the server
    routes back, with the same windowed accounting as
    :class:`~repro.apps.client.OpenLoopClient`.
    """

    def __init__(self, sim: Simulator, name: str, bulk: bool = True):
        self._sim = sim
        self.name = name
        self.bulk = bulk
        self._port: Optional[LinkPort] = None
        self.sent: Dict[int, int] = {}       # req_id -> send time
        self.rtts: List[Tuple[int, int]] = []  # (send time, rtt)
        self.requests_sent = 0
        self.responses_received = 0
        #: Observer hook ``(req_id, send_ns, recv_ns)`` called on every
        #: reply (request tracing closes sampled RTT spans through it).
        self.trace_hook: Optional[Callable[[int, int, int], None]] = None

    def attach_port(self, port: LinkPort) -> None:
        self._port = port

    def receive_frame(self, frame: Frame) -> None:
        if frame.kind != "response" or frame.req_id is None:
            return
        send_ns = self.sent.pop(frame.req_id, None)
        if send_ns is None:
            return
        self.responses_received += 1
        self.rtts.append((send_ns, self._sim.now - send_ns))
        if self.trace_hook is not None:
            self.trace_hook(frame.req_id, send_ns, self._sim.now)

    def inject(self, dispatches: Sequence[Tuple[int, Frame]]) -> None:
        """Inject planned ``(send_ns, frame)`` pairs (non-decreasing times).

        All sends must fall inside the window about to execute, i.e. they
        complete before the shard's next boundary report.  The bulk path
        books the sends up front and hands the whole vector to the link;
        the scalar path scheduls one send event per frame — both record
        the same send timestamps.
        """
        assert self._port is not None, "frontend port not attached"
        if not dispatches:
            return
        if self.bulk:
            times: List[int] = []
            frames: List[Frame] = []
            for send_ns, frame in dispatches:
                self.sent[frame.req_id] = send_ns
                self.requests_sent += 1
                times.append(send_ns)
                frames.append(frame)
            self._port.send_vector(times, frames)
        else:
            for send_ns, frame in dispatches:
                self._sim.schedule_at(send_ns, self._send_one, frame)

    def _send_one(self, frame: Frame) -> None:
        self.sent[frame.req_id] = self._sim.now
        self.requests_sent += 1
        self._port.send(frame)

    @property
    def outstanding(self) -> int:
        """Requests sent and not yet answered (the boundary load report)."""
        return len(self.sent)

    def rtts_in_window(self, start_ns: int, end_ns: int) -> List[int]:
        """RTTs of requests *sent* within [start, end)."""
        return [rtt for send, rtt in self.rtts if start_ns <= send < end_ns]

    def sent_in_window(self, start_ns: int, end_ns: int) -> int:
        completed = sum(1 for send, _ in self.rtts if start_ns <= send < end_ns)
        pending = sum(1 for send in self.sent.values() if start_ns <= send < end_ns)
        return completed + pending


__all__ = [
    "ConsistentHashSpray",
    "Dispatch",
    "FrontendConfig",
    "FrontendPlanner",
    "FrontendPort",
    "LeastLoadedSpray",
    "PowerOfTwoSpray",
    "SPRAY_POLICIES",
    "make_spray",
]
