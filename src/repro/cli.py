"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``      — one cluster experiment (app, policy, load or RPS);
- ``compare``  — all seven policies at one load level;
- ``fig``      — regenerate a paper figure report (1, 2, 4, 7, 8, 9);
- ``headline`` — the abstract's savings table;
- ``policies`` — list the policy registry.

Every command prints the same plain-text reports the benchmark suite
saves under ``benchmarks/reports/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.apps.workload import LOAD_LEVELS, load_level
from repro.cluster.policies import POLICIES, POLICY_ORDER
from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.experiments import (
    RunSettings,
    fig1_dvfs_timing,
    fig2_ondemand_period,
    fig4_correlation,
    fig7_latency_load,
    headline,
    policy_comparison,
)
from repro.metrics.report import format_table
from repro.sim.units import MS


def _settings(args: argparse.Namespace) -> RunSettings:
    preset = {
        "quick": RunSettings.quick,
        "standard": RunSettings.standard,
        "full": RunSettings.full,
    }[args.settings]
    return preset(seed=args.seed)


def _resolve_rps(app: str, load: Optional[str], rps: Optional[float]) -> float:
    if rps is not None:
        return rps
    return load_level(app, load or "low").target_rps


def cmd_run(args: argparse.Namespace) -> int:
    settings = _settings(args)
    result = run_experiment(
        ExperimentConfig(
            app=args.app,
            policy=args.policy,
            target_rps=_resolve_rps(args.app, args.load, args.rps),
            warmup_ns=settings.warmup_ns,
            measure_ns=settings.measure_ns,
            drain_ns=settings.drain_ns,
            seed=settings.seed,
        )
    )
    rows = [
        ["policy", result.policy_name],
        ["offered RPS", f"{result.target_rps / 1000:.0f}K"],
        ["achieved RPS", f"{result.achieved_rps / 1000:.1f}K"],
        ["p50 (ms)", round(result.latency.p50_ns / 1e6, 3)],
        ["p95 (ms)", round(result.latency.p95_ns / 1e6, 3)],
        ["p99 (ms)", round(result.latency.p99_ns / 1e6, 3)],
        ["SLA", "met" if result.meets_sla else "VIOLATED"],
        ["energy (J)", round(result.energy.energy_j, 3)],
        ["avg power (W)", round(result.avg_power_w, 2)],
        ["C-state entries", str(result.cstate_entries)],
        ["NCAP posts", str(result.ncap_stats)],
    ]
    print(format_table(["metric", "value"], rows, title=f"{args.app} / {args.policy}"))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    settings = _settings(args)
    result = policy_comparison.run(
        args.app,
        loads=(args.load,),
        settings=settings,
        snapshot_policies=(),
    )
    print(policy_comparison.format_report(result, figure_name="Policy comparison"))
    return 0


def cmd_fig(args: argparse.Namespace) -> int:
    settings = _settings(args)
    figure = args.number
    if figure == "1":
        print(fig1_dvfs_timing.format_report(fig1_dvfs_timing.run()))
    elif figure == "2":
        print(fig2_ondemand_period.format_report(
            fig2_ondemand_period.run(settings=settings)))
    elif figure == "4":
        print(fig4_correlation.format_report(fig4_correlation.run(settings=settings)))
    elif figure == "7":
        for app in ("apache", "memcached"):
            print(fig7_latency_load.format_report(
                fig7_latency_load.run(app, settings=settings)))
    elif figure == "8":
        print(policy_comparison.format_report(
            policy_comparison.run("apache", settings=settings), "Figure 8"))
    elif figure == "9":
        print(policy_comparison.format_report(
            policy_comparison.run("memcached", settings=settings), "Figure 9"))
    else:
        print(f"unknown figure {figure!r}; choose from 1, 2, 4, 7, 8, 9",
              file=sys.stderr)
        return 2
    return 0


def cmd_headline(args: argparse.Namespace) -> int:
    settings = _settings(args)
    results = [
        policy_comparison.run(
            app, loads=("low", "medium"), settings=settings, snapshot_policies=()
        )
        for app in ("apache", "memcached")
    ]
    print(headline.format_report(headline.derive(results)))
    return 0


def cmd_export_trace(args: argparse.Namespace) -> int:
    from repro.metrics.export import export_figure4_bundle

    settings = _settings(args)
    config = ExperimentConfig(
        app=args.app,
        policy=args.policy,
        target_rps=_resolve_rps(args.app, args.load, None),
        collect_traces=True,
        warmup_ns=settings.warmup_ns,
        measure_ns=settings.measure_ns,
        drain_ns=settings.drain_ns,
        seed=settings.seed,
    )
    result = run_experiment(config)
    assert result.trace is not None
    paths = export_figure4_bundle(
        result.trace,
        args.out,
        config.warmup_ns,
        config.warmup_ns + config.measure_ns,
        1 * MS,
    )
    for path in paths:
        print(path)
    print(f"exported {len(paths)} series to {args.out}")
    return 0


def cmd_policies(args: argparse.Namespace) -> int:
    rows = []
    for name in POLICY_ORDER:
        policy = POLICIES[name]
        rows.append([
            name, policy.governor,
            "menu" if policy.cstates else "-",
            policy.ncap or "-",
            policy.fcons if policy.uses_ncap else "-",
        ])
    print(format_table(
        ["policy", "P-state governor", "C-state governor", "ncap", "FCONS"],
        rows, title="Power-management policies (paper Section 6)",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="NCAP (HPCA 2017) reproduction toolkit"
    )
    parser.add_argument("--settings", choices=("quick", "standard", "full"),
                        default="quick", help="run-length preset")
    parser.add_argument("--seed", type=int, default=1)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("--app", choices=tuple(LOAD_LEVELS), default="apache")
    p_run.add_argument("--policy", choices=tuple(POLICIES), default="ncap.cons")
    p_run.add_argument("--load", choices=("low", "medium", "high"))
    p_run.add_argument("--rps", type=float, help="explicit offered load")
    p_run.set_defaults(fn=cmd_run)

    p_cmp = sub.add_parser("compare", help="all seven policies at one load")
    p_cmp.add_argument("--app", choices=tuple(LOAD_LEVELS), default="apache")
    p_cmp.add_argument("--load", choices=("low", "medium", "high"), default="low")
    p_cmp.set_defaults(fn=cmd_compare)

    p_fig = sub.add_parser("fig", help="regenerate a paper figure")
    p_fig.add_argument("number", choices=("1", "2", "4", "7", "8", "9"))
    p_fig.set_defaults(fn=cmd_fig)

    p_head = sub.add_parser("headline", help="abstract's savings table")
    p_head.set_defaults(fn=cmd_headline)

    p_pol = sub.add_parser("policies", help="list the policy registry")
    p_pol.set_defaults(fn=cmd_policies)

    p_exp = sub.add_parser(
        "export-trace", help="run traced and dump Figure-4 series as CSV"
    )
    p_exp.add_argument("--app", choices=tuple(LOAD_LEVELS), default="apache")
    p_exp.add_argument("--policy", choices=tuple(POLICIES), default="ond.idle")
    p_exp.add_argument("--load", choices=("low", "medium", "high"), default="low")
    p_exp.add_argument("--out", default="trace_export")
    p_exp.set_defaults(fn=cmd_export_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
