"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``      — one cluster experiment (app, policy, load or RPS);
- ``compare``  — all seven policies at one load level;
- ``fig``      — regenerate a paper figure report (1, 2, 4, 7, 8, 9);
- ``sweep``    — declarative grid over apps × policies × loads × seeds;
- ``headline`` — the abstract's savings table;
- ``attribute``— per-policy critical-path tail-blame tables with auditing;
- ``energy``   — per-policy energy decomposition + governor-miss blame
  tables (optionally a two-policy ``--diff``), with invariant auditing;
- ``trace``    — run one experiment and export Chrome-trace (Perfetto) JSON;
- ``dashboard``— run one experiment with the flight recorder and write a
  self-contained HTML timeline dashboard;
- ``bench``    — run a declared benchmark suite, write machine-readable
  ``BENCH_<suite>.json``, and optionally gate against a committed
  baseline (``--check``);
- ``pareto``   — sweep policies × load points and render the
  energy-vs-p99 Pareto frontier (canonical dataset JSON + HTML scatter
  with drill-down links);
- ``history``  — parse the committed ``BENCH_*.json`` trajectory into
  per-scenario time series, flag step changes, render a trend page;
- ``profile``  — run one experiment under the simulator self-profiler
  and print/export where wall-clock time goes;
- ``policies`` — list the policy registry.

Every command prints the same plain-text reports the benchmark suite
saves under ``benchmarks/reports/``.  Sweep-shaped commands honour
``--jobs N`` (process-pool fan-out; also ``REPRO_JOBS``), ``--no-cache``
and ``--cache-dir`` (on-disk result cache, default ``.repro-cache``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.apps.client import reset_request_ids
from repro.apps.workload import LOAD_LEVELS, load_level
from repro.cluster.policies import POLICIES, POLICY_ORDER
from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.experiments import (
    RunSettings,
    attribution,
    energy,
    fig1_dvfs_timing,
    fig2_ondemand_period,
    fig4_correlation,
    fig7_latency_load,
    headline,
    policy_comparison,
)
from repro.harness import (
    ResultCache,
    RunProgress,
    Runner,
    SweepSpec,
    default_cache_dir,
    resolve_jobs,
)
from repro.metrics.report import format_table
from repro.sim.units import MS


def _settings(args: argparse.Namespace) -> RunSettings:
    preset = {
        "quick": RunSettings.quick,
        "standard": RunSettings.standard,
        "full": RunSettings.full,
    }[args.settings]
    return preset(seed=args.seed)


def _cache(args: argparse.Namespace) -> Optional[ResultCache]:
    if args.no_cache:
        return None
    return ResultCache(args.cache_dir or default_cache_dir())


def _resolve_rps(app: str, load: Optional[str], rps: Optional[float]) -> float:
    if rps is not None:
        return rps
    return load_level(app, load or "low").target_rps


def cmd_run(args: argparse.Namespace) -> int:
    settings = _settings(args)
    result = run_experiment(
        ExperimentConfig.from_settings(
            settings,
            app=args.app,
            policy=args.policy,
            target_rps=_resolve_rps(args.app, args.load, args.rps),
        )
    )
    rows = [
        ["policy", result.policy_name],
        ["offered RPS", f"{result.target_rps / 1000:.0f}K"],
        ["achieved RPS", f"{result.achieved_rps / 1000:.1f}K"],
        ["p50 (ms)", round(result.latency.p50_ns / 1e6, 3)],
        ["p95 (ms)", round(result.latency.p95_ns / 1e6, 3)],
        ["p99 (ms)", round(result.latency.p99_ns / 1e6, 3)],
        ["SLA", "met" if result.meets_sla else "VIOLATED"],
        ["energy (J)", round(result.energy.energy_j, 3)],
        ["avg power (W)", round(result.avg_power_w, 2)],
        ["C-state entries", str(result.cstate_entries)],
        ["NCAP posts", str(result.ncap_stats)],
    ]
    print(format_table(["metric", "value"], rows, title=f"{args.app} / {args.policy}"))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    settings = _settings(args)
    result = policy_comparison.run(
        args.app,
        loads=(args.load,),
        settings=settings,
        snapshot_policies=(),
        jobs=args.jobs,
        cache=_cache(args),
    )
    print(policy_comparison.format_report(result, figure_name="Policy comparison"))
    return 0


def cmd_fig(args: argparse.Namespace) -> int:
    settings = _settings(args)
    jobs, cache = args.jobs, _cache(args)
    figure = args.number
    if figure == "1":
        print(fig1_dvfs_timing.format_report(fig1_dvfs_timing.run()))
    elif figure == "2":
        print(fig2_ondemand_period.format_report(
            fig2_ondemand_period.run(settings=settings, jobs=jobs, cache=cache)))
    elif figure == "4":
        print(fig4_correlation.format_report(fig4_correlation.run(settings=settings)))
    elif figure == "7":
        for app in ("apache", "memcached"):
            print(fig7_latency_load.format_report(
                fig7_latency_load.run(app, settings=settings, jobs=jobs,
                                      cache=cache)))
    elif figure == "8":
        print(policy_comparison.format_report(
            policy_comparison.run("apache", settings=settings, jobs=jobs,
                                  cache=cache), "Figure 8"))
    elif figure == "9":
        print(policy_comparison.format_report(
            policy_comparison.run("memcached", settings=settings, jobs=jobs,
                                  cache=cache), "Figure 9"))
    else:
        print(f"unknown figure {figure!r}; choose from 1, 2, 4, 7, 8, 9",
              file=sys.stderr)
        return 2
    return 0


def cmd_headline(args: argparse.Namespace) -> int:
    settings = _settings(args)
    cache = _cache(args)
    results = [
        policy_comparison.run(
            app, loads=("low", "medium"), settings=settings,
            snapshot_policies=(), jobs=args.jobs, cache=cache,
        )
        for app in ("apache", "memcached")
    ]
    print(headline.format_report(headline.derive(results)))
    return 0


def _parse_load(raw: str):
    try:
        return float(raw)
    except ValueError:
        return raw


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.metrics.export import export_result_records

    settings = _settings(args)
    sweep = SweepSpec(
        apps=tuple(args.apps),
        policies=tuple(args.policies),
        loads=tuple(_parse_load(load) for load in args.loads),
        seeds=tuple(args.seeds) if args.seeds else None,
        settings=settings,
    )
    try:
        specs = sweep.expand()
    except KeyError as exc:  # unknown load-level name
        print(f"repro sweep: error: {exc.args[0]}", file=sys.stderr)
        return 2

    def progress(update: RunProgress) -> None:
        spec = update.spec
        tag = " (cached)" if update.cached else ""
        print(
            f"[{update.index + 1}/{update.total}] {spec.app} "
            f"{spec.policy_name} @ {spec.target_rps / 1000:.0f}K "
            f"seed={spec.seed}{tag}",
            file=sys.stderr,
        )

    runner = Runner(jobs=args.jobs, cache=_cache(args), progress=progress)
    records = runner.run(specs)
    if args.summary:
        from repro.analysis.compare import format_runset_summary
        from repro.analysis.compare import RunSet

        print(format_runset_summary(
            RunSet.from_records(records),
            title=f"Sweep summary — {len(records)} records",
        ))
        if args.out:
            path = export_result_records(records, args.out)
            print(f"wrote {len(records)} records to {path}")
        return 0
    rows = [
        [r.app, r.policy, spec.load or f"{r.target_rps / 1000:.0f}K", r.seed,
         round(r.p50_ns / 1e6, 3), round(r.p95_ns / 1e6, 3),
         round(r.p99_ns / 1e6, 3), round(r.energy_j, 3),
         round(r.avg_power_w, 2), "met" if r.meets_sla else "VIOLATED",
         "hit" if r.from_cache else "run"]
        for spec, r in zip(specs, records)
    ]
    print(format_table(
        ["app", "policy", "load", "seed", "p50 (ms)", "p95 (ms)", "p99 (ms)",
         "energy (J)", "power (W)", "SLA", "cache"],
        rows,
        title=f"Sweep — {len(records)} runs",
    ))
    if args.out:
        path = export_result_records(records, args.out)
        print(f"wrote {len(records)} records to {path}")
    return 0


def cmd_export_trace(args: argparse.Namespace) -> int:
    from repro.metrics.export import export_figure4_bundle

    settings = _settings(args)
    config = ExperimentConfig.from_settings(
        settings,
        app=args.app,
        policy=args.policy,
        target_rps=_resolve_rps(args.app, args.load, None),
        collect_traces=True,
    )
    result = run_experiment(config)
    assert result.trace is not None
    paths = export_figure4_bundle(
        result.trace,
        args.out,
        config.warmup_ns,
        config.warmup_ns + config.measure_ns,
        1 * MS,
    )
    for path in paths:
        print(path)
    print(f"exported {len(paths)} series to {args.out}")
    return 0


#: Named experiment presets for ``repro trace``.
TRACE_PRESETS = {
    "fig4": dict(app="apache", policy="ond.idle", target_rps=24_000.0),
    "ncap": dict(app="apache", policy="ncap.cons", target_rps=24_000.0),
    "memcached": dict(app="memcached", policy="ond.idle", target_rps=90_000.0),
}


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.metrics.export import export_chrome_trace
    from repro.telemetry import ChromeTraceSink

    settings = _settings(args)
    params = dict(TRACE_PRESETS[args.experiment])
    if args.app is not None:
        params["app"] = args.app
    if args.policy is not None:
        params["policy"] = args.policy
    if args.rps is not None:
        params["target_rps"] = args.rps
    elif args.load is not None:
        params["target_rps"] = load_level(params["app"], args.load).target_rps
    config = ExperimentConfig.from_settings(settings, **params)
    # Same seed -> same bytes: restart the global request-id counter so
    # span ids in the export do not depend on prior runs in this process.
    reset_request_ids()
    sink = ChromeTraceSink()
    run_experiment(config, sinks=[sink])
    count = export_chrome_trace(sink, args.out)
    print(f"wrote {count} trace events to {args.out} "
          f"({params['app']} / {params['policy']}; open in Perfetto or "
          f"chrome://tracing)")
    return 0


#: Named experiment presets for ``repro dashboard``.
DASHBOARD_PRESETS = {
    "fig4": dict(app="apache", policy="ond.idle", target_rps=24_000.0),
    "headline": dict(app="apache", policy="ncap.cons", target_rps=24_000.0),
    "memcached": dict(app="memcached", policy="ond.idle", target_rps=90_000.0),
}


def cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.viz import dashboard_from_result, write_dashboard

    settings = _settings(args)
    params = dict(DASHBOARD_PRESETS[args.experiment])
    if args.app is not None:
        params["app"] = args.app
    if args.policy is not None:
        params["policy"] = args.policy
    if args.rps is not None:
        params["target_rps"] = args.rps
    elif args.load is not None:
        params["target_rps"] = load_level(params["app"], args.load).target_rps
    config = ExperimentConfig.from_settings(settings, **params)
    result = run_experiment(
        config, record_timeseries=args.record, energy_attribution=True
    )
    page = dashboard_from_result(
        result,
        config=config,
        title=f"Flight recorder - {params['app']} / {params['policy']}",
    )
    path = write_dashboard(page, args.out)
    n_series = len(result.timeseries.series)
    print(
        f"wrote dashboard ({n_series} series, "
        f"{len(result.timeseries.fired)} watchpoint firings) to {path}"
    )
    return 0


def cmd_attribute(args: argparse.Namespace) -> int:
    settings = _settings(args)
    if args.quick:
        settings = RunSettings.quick(seed=settings.seed)
    try:
        result = attribution.run(
            args.experiment, settings=settings, jobs=args.jobs,
            audit=not args.no_audit,
        )
    except KeyError as exc:
        print(f"repro attribute: error: {exc.args[0]}", file=sys.stderr)
        return 2
    report = attribution.format_report(result)
    print(report)
    if args.out:
        import os

        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report)
        print(f"wrote report to {args.out}")
    return 0


def cmd_energy(args: argparse.Namespace) -> int:
    settings = _settings(args)
    if args.quick:
        settings = RunSettings.quick(seed=settings.seed)
    try:
        result = energy.run(
            args.experiment, settings=settings, jobs=args.jobs,
            audit=not args.no_audit, cache=_cache(args),
        )
        report = energy.format_report(result, diff=args.diff)
    except KeyError as exc:
        print(f"repro energy: error: {exc.args[0]}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"repro energy: error: {exc}", file=sys.stderr)
        return 2
    print(report)
    if args.out:
        import os

        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report)
        print(f"wrote report to {args.out}")
    return 0


def cmd_pareto(args: argparse.Namespace) -> int:
    import os

    from repro.experiments import pareto

    settings = _settings(args)

    def progress(update: RunProgress) -> None:
        spec = update.spec
        tag = " (cached)" if update.cached else ""
        print(
            f"[{update.index + 1}/{update.total}] {spec.app} "
            f"{spec.policy_name} @ {spec.target_rps / 1000:.0f}K{tag}",
            file=sys.stderr,
        )

    try:
        dataset, _records = pareto.run(
            args.preset, settings=settings, jobs=args.jobs,
            cache=_cache(args), progress=progress,
        )
    except KeyError as exc:
        print(f"repro pareto: error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(pareto.format_frontier_report(dataset))
    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(dataset.to_json() + "\n")
        print(f"wrote frontier dataset to {args.out}")
    if args.html:
        from repro.viz.frontier import render_frontier, write_dashboard

        links = None
        if args.detail_dir:
            links = pareto.write_details(
                args.preset, settings, args.detail_dir, jobs=args.jobs,
                href_prefix=os.path.relpath(
                    args.detail_dir, os.path.dirname(args.html) or "."
                ),
            )
            print(f"wrote {len(links)} drill-down pages to {args.detail_dir}")
        path = write_dashboard(
            render_frontier(dataset, links=links), args.html
        )
        print(f"wrote frontier page to {path}")
    return 0


def cmd_history(args: argparse.Namespace) -> int:
    from repro.harness.history import (
        discover_bench_files,
        flag_steps,
        format_history_report,
        load_bench_history,
    )

    paths = args.paths or discover_bench_files(args.root)
    if not paths:
        print(
            f"repro history: error: no BENCH payloads found under "
            f"{args.root!r}",
            file=sys.stderr,
        )
        return 2
    history = load_bench_history(paths)
    if not history.series:
        print("repro history: error: no valid BENCH payloads "
              f"(rejected {len(history.rejected)})", file=sys.stderr)
        for path, reason in history.rejected:
            print(f"  {path}: {reason}", file=sys.stderr)
        return 2
    flags = flag_steps(history, tolerance_scale=args.tolerance_scale)
    print(format_history_report(history, flags))
    if args.html:
        from repro.viz.frontier import render_trend_page, write_dashboard

        path = write_dashboard(
            render_trend_page(history, flags), args.html
        )
        print(f"wrote trend page to {path}")
    if args.check:
        regressions = [f for f in flags if f.direction == "regressed"]
        return 1 if regressions else 0
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.bench import (
        baseline_path,
        compare_to_baseline,
        format_check_report,
        format_suite_report,
        load_bench_json,
        run_suite,
        write_bench_json,
    )
    from repro.harness.suites import get_suite

    try:
        suite = get_suite(args.suite)
    except KeyError as exc:
        print(f"repro bench: error: {exc.args[0]}", file=sys.stderr)
        return 2
    payload = run_suite(
        suite, repeats=args.repeats, profile=not args.no_profile
    )
    print(format_suite_report(payload))
    out = args.out or suite.bench_filename()
    write_bench_json(payload, out)
    print(f"\nwrote {out}")
    base_path = args.baseline or baseline_path(suite.name)
    if args.update_baseline:
        write_bench_json(payload, base_path)
        print(f"updated baseline {base_path}")
        return 0
    if args.check:
        try:
            baseline = load_bench_json(base_path)
        except FileNotFoundError:
            print(
                f"repro bench: error: no baseline at {base_path} "
                f"(run with --update-baseline to create one)",
                file=sys.stderr,
            )
            return 2
        except ValueError as exc:
            print(f"repro bench: error: bad baseline: {exc}", file=sys.stderr)
            return 2
        check = compare_to_baseline(
            payload, baseline, tolerance_scale=args.tolerance_scale
        )
        print("\n" + format_check_report(check))
        return 0 if check.ok else 1
    return 0


#: Named experiment presets for ``repro profile``.
PROFILE_PRESETS = {
    "headline": dict(app="apache", policy="ncap.cons", target_rps=24_000.0),
    "fig4": dict(app="apache", policy="ond.idle", target_rps=24_000.0),
    "memcached": dict(app="memcached", policy="ond.idle", target_rps=90_000.0),
}


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.metrics.export import export_chrome_trace
    from repro.profiling import (
        SimProfiler,
        collapsed_stacks,
        format_top_handlers,
    )
    from repro.telemetry import ChromeTraceSink

    settings = _settings(args)
    params = dict(PROFILE_PRESETS[args.experiment])
    if args.app is not None:
        params["app"] = args.app
    if args.policy is not None:
        params["policy"] = args.policy
    if args.rps is not None:
        params["target_rps"] = args.rps
    elif args.load is not None:
        params["target_rps"] = load_level(params["app"], args.load).target_rps
    config = ExperimentConfig.from_settings(settings, **params)
    profiler = SimProfiler()
    sink = ChromeTraceSink() if args.trace_out else None
    result = run_experiment(
        config, profile=profiler, sinks=[sink] if sink else None
    )
    profile = result.profile
    assert profile is not None
    print(format_top_handlers(profile, n=args.top))
    share = profile.attributed_wall_ns / max(profile.loop_wall_ns, 1)
    rows = [
        ["loop wall (s)", round(profile.loop_wall_ns / 1e9, 3)],
        ["attributed share", f"{100.0 * share:.2f}%"],
        ["events", profile.events],
        ["events / wall-s", f"{profile.events_per_wall_s / 1e3:.0f}K"],
        ["sim-ns / wall-s", f"{profile.sim_ns_per_wall_s / 1e6:.1f}M"],
        ["max heap depth", profile.max_heap_depth],
        ["cancelled pops", profile.cancelled_pops],
        ["cancelled unlinked", profile.cancelled_unlinked],
        ["queue compactions", profile.compactions],
        ["peak RSS (MB)", round(profile.peak_rss_bytes / 1e6, 1)],
    ]
    print()
    print(format_table(["metric", "value"], rows, title="Loop health"))
    if args.stacks_out:
        with open(args.stacks_out, "w", encoding="utf-8") as fh:
            fh.write(collapsed_stacks(profile))
        print(f"wrote collapsed stacks to {args.stacks_out} "
              f"(feed to flamegraph.pl or speedscope)")
    if sink is not None:
        sink.add_profile(profile)
        count = export_chrome_trace(sink, args.trace_out)
        print(f"wrote {count} trace events (incl. wall-clock lane) "
              f"to {args.trace_out}")
    return 0


def cmd_datacenter(args: argparse.Namespace) -> int:
    from repro.experiments import datacenter as dc_experiment

    if args.trace_out and args.trace_requests is None:
        print("repro datacenter: error: --trace-out needs --trace-requests",
              file=sys.stderr)
        return 2
    overrides: dict = {}
    if args.policy is not None:
        overrides["policy"] = args.policy
    if args.servers is not None:
        overrides["n_servers"] = args.servers
    if args.shards is not None:
        overrides["n_shards"] = args.shards
    if args.rps is not None:
        overrides["total_rps"] = args.rps
    if args.shares is not None:
        overrides["load_shares"] = args.shares
    if args.seed is not None:
        overrides["seed"] = args.seed
    preset = dc_experiment.PRESETS[args.preset]
    if preset.frontend is not None and (
        args.spray is not None or args.users is not None
    ):
        from dataclasses import replace as dc_replace

        fe = preset.frontend
        if args.spray is not None:
            fe = dc_replace(fe, spray=args.spray)
        if args.users is not None:
            fe = dc_replace(fe, n_users=args.users)
        overrides["frontend"] = fe
    try:
        result = dc_experiment.run_preset(
            args.preset,
            overrides=overrides,
            jobs=args.jobs,
            record_timeseries=args.record,
            profile=True,
            trace_requests=args.trace_requests,
            profile_fleet=args.profile_fleet,
            monitor=args.progress,
            energy_attribution=args.energy,
        )
    except ValueError as exc:
        print(f"repro datacenter: error: {exc}", file=sys.stderr)
        return 2
    print(dc_experiment.format_fleet_report(result))
    if args.energy and result.record is not None:
        attribution_report = result.record.energy_attribution_report()
        if attribution_report is not None:
            from repro.analysis.energy import (
                format_energy_blame,
                format_governor_misses,
            )

            pairs = [(result.record.policy, attribution_report)]
            print()
            print(format_energy_blame(
                pairs, title="Fleet energy decomposition (J)"
            ))
            print()
            print(format_governor_misses(pairs))
    if result.fleet_profile is not None:
        from repro.profiling.fleet import format_fleet_profile

        print()
        print(format_fleet_profile(
            result.fleet_profile, measured_speedup=result.shard_speedup
        ))
    if result.trace is not None:
        from repro.telemetry.tracing import format_hop_table

        print()
        print(format_hop_table(result.trace))
        if args.trace_out:
            from repro.telemetry.tracing import write_fleet_trace

            shard_of_server = {
                i: s.shard_index
                for s in result.shards for i in s.server_indices
            }
            extra = []
            if result.fleet_profile is not None:
                from repro.profiling.fleet import window_trace_events

                extra = window_trace_events(result.fleet_profile)
            count = write_fleet_trace(
                result.trace, shard_of_server, args.trace_out,
                extra_events=extra,
            )
            print(f"wrote {count} merged fleet trace events to "
                  f"{args.trace_out}")
    if args.out:
        import json
        import os

        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result.record.to_json_dict(), fh, indent=2, sort_keys=True)
        print(f"wrote fleet record to {args.out}")
    if args.dashboard:
        from repro.viz import dashboard_from_datacenter, write_dashboard

        page = dashboard_from_datacenter(
            result, title=f"Datacenter - {args.preset}",
            trace_path=args.trace_out,
        )
        path = write_dashboard(page, args.dashboard)
        print(f"wrote fleet dashboard to {path}")
    return 0


def cmd_policies(args: argparse.Namespace) -> int:
    rows = []
    for name in POLICY_ORDER:
        policy = POLICIES[name]
        rows.append([
            name, policy.governor,
            "menu" if policy.cstates else "-",
            policy.ncap or "-",
            policy.fcons if policy.uses_ncap else "-",
        ])
    print(format_table(
        ["policy", "P-state governor", "C-state governor", "ncap", "FCONS"],
        rows, title="Power-management policies (paper Section 6)",
    ))
    return 0


def _add_common_options(parser: argparse.ArgumentParser, top_level: bool) -> None:
    """Accept the shared flags before or after the subcommand name.

    The top-level parser carries the real defaults; subparsers use
    ``SUPPRESS`` so a flag given after the subcommand overrides one given
    before it, and an omitted flag falls through to the top-level default.
    """

    def default(value):
        return value if top_level else argparse.SUPPRESS

    parser.add_argument("--settings", choices=("quick", "standard", "full"),
                        default=default("quick"), help="run-length preset")
    parser.add_argument("--seed", type=int, default=default(1))
    parser.add_argument("--jobs", type=int, default=default(None),
                        help="parallel worker processes for sweep-shaped "
                             "commands (default: REPRO_JOBS or cpu count)")
    parser.add_argument("--no-cache", action="store_true",
                        default=default(False),
                        help="disable the on-disk result cache")
    parser.add_argument("--cache-dir", default=default(None),
                        help="result cache directory (default: .repro-cache "
                             "or REPRO_CACHE_DIR)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="NCAP (HPCA 2017) reproduction toolkit"
    )
    _add_common_options(parser, top_level=True)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_parser(name: str, **kwargs) -> argparse.ArgumentParser:
        sub_parser = sub.add_parser(name, **kwargs)
        _add_common_options(sub_parser, top_level=False)
        return sub_parser

    p_run = add_parser("run", help="run one experiment")
    p_run.add_argument("--app", choices=tuple(LOAD_LEVELS), default="apache")
    p_run.add_argument("--policy", choices=tuple(POLICIES), default="ncap.cons")
    p_run.add_argument("--load", choices=("low", "medium", "high"))
    p_run.add_argument("--rps", type=float, help="explicit offered load")
    p_run.set_defaults(fn=cmd_run)

    p_cmp = add_parser("compare", help="all seven policies at one load")
    p_cmp.add_argument("--app", choices=tuple(LOAD_LEVELS), default="apache")
    p_cmp.add_argument("--load", choices=("low", "medium", "high"), default="low")
    p_cmp.set_defaults(fn=cmd_compare)

    p_fig = add_parser("fig", help="regenerate a paper figure")
    p_fig.add_argument("number", choices=("1", "2", "4", "7", "8", "9"))
    p_fig.set_defaults(fn=cmd_fig)

    p_sweep = add_parser(
        "sweep", help="run an app x policy x load x seed grid"
    )
    p_sweep.add_argument("--apps", nargs="+", choices=tuple(LOAD_LEVELS),
                         default=["apache"])
    p_sweep.add_argument("--policies", nargs="+", choices=tuple(POLICIES),
                         default=["perf", "ond.idle", "ncap.cons"])
    p_sweep.add_argument("--loads", nargs="+", default=["low", "medium"],
                         help="load level names or explicit RPS numbers")
    p_sweep.add_argument("--seeds", nargs="+", type=int,
                         help="repeat the grid at each seed")
    p_sweep.add_argument("--out", help="write records as JSON to this path")
    p_sweep.add_argument("--summary", action="store_true",
                         help="print the cross-run summary table (one row "
                              "per record: config axes, p50/p99, mJ/req)")
    p_sweep.set_defaults(fn=cmd_sweep)

    p_head = add_parser("headline", help="abstract's savings table")
    p_head.set_defaults(fn=cmd_headline)

    p_attr = add_parser(
        "attribute",
        help="critical-path attribution: per-policy tail-blame tables "
             "(wake/ramp/queue/service/...), with invariant auditing",
    )
    p_attr.add_argument("experiment", nargs="?", default="headline",
                        choices=tuple(attribution.PRESETS),
                        help="attribution experiment preset")
    p_attr.add_argument("--quick", action="store_true",
                        help="force the quick run-length preset")
    p_attr.add_argument("--no-audit", action="store_true",
                        help="skip the invariant auditor")
    p_attr.add_argument("--out", help="also write the report to this path")
    p_attr.set_defaults(fn=cmd_attribute)

    p_energy = add_parser(
        "energy",
        help="energy provenance: per-policy decomposition (active/ramp/"
             "wake/floor/wasted-shallow) and governor-miss tables, with "
             "the conservation invariant audited",
    )
    p_energy.add_argument("experiment", nargs="?", default="headline",
                          choices=tuple(energy.PRESETS),
                          help="energy experiment preset")
    p_energy.add_argument("--diff", metavar="POLICY",
                          help="add a component diff of the preset's last "
                               "policy against this baseline policy")
    p_energy.add_argument("--quick", action="store_true",
                          help="force the quick run-length preset")
    p_energy.add_argument("--no-audit", action="store_true",
                          help="skip the invariant auditor")
    p_energy.add_argument("--out", help="also write the report to this path")
    p_energy.set_defaults(fn=cmd_energy)

    p_par = add_parser(
        "pareto",
        help="sweep policies x load points and render the energy-vs-p99 "
             "Pareto frontier (the ROADMAP's headline figure): canonical "
             "dataset JSON plus a self-contained HTML scatter with "
             "dominated-point classification and drill-down links",
    )
    from repro.experiments import pareto as pareto_experiment

    p_par.add_argument("preset", nargs="?", default="headline",
                       choices=tuple(pareto_experiment.PRESETS),
                       help="frontier experiment preset")
    p_par.add_argument("--out",
                       help="write the canonical frontier dataset JSON "
                            "here (byte-identical serial vs pooled)")
    p_par.add_argument("--html", help="write the frontier HTML page here")
    p_par.add_argument("--detail-dir",
                       help="with --html: render per-run timeline "
                            "dashboards + energy-blame tables into this "
                            "directory and link them from the point table")
    p_par.set_defaults(fn=cmd_pareto)

    p_hist = add_parser(
        "history",
        help="bench-history regression watch: parse committed "
             "BENCH_*.json payloads into per-scenario time series, flag "
             "step changes against tolerances, render a trend page",
    )
    p_hist.add_argument("paths", nargs="*",
                        help="BENCH payload files, oldest need not come "
                             "first (default: discover committed payloads "
                             "under --root)")
    p_hist.add_argument("--root", default=".",
                        help="repo root for payload discovery (default .)")
    p_hist.add_argument("--html", help="write the trend HTML page here")
    p_hist.add_argument("--check", action="store_true",
                        help="exit 1 when any regression step is flagged")
    p_hist.add_argument("--tolerance-scale", type=float, default=1.0,
                        help="multiply every step tolerance")
    p_hist.set_defaults(fn=cmd_history)

    p_bench = add_parser(
        "bench",
        help="run a declared benchmark suite and write BENCH_<suite>.json "
             "(optionally gating against a committed baseline)",
    )
    p_bench.add_argument("suite", nargs="?", default="micro",
                         help="bench suite name (micro, telemetry)")
    p_bench.add_argument("--repeats", type=int, default=None,
                         help="timed repeats per scenario (default: the "
                              "suite's declared count)")
    p_bench.add_argument("--out", default=None,
                         help="payload path (default: BENCH_<suite>.json "
                              "in the working directory)")
    p_bench.add_argument("--check", action="store_true",
                         help="diff against the committed baseline and "
                              "exit 1 on regression")
    p_bench.add_argument("--baseline", default=None,
                         help="baseline path (default: "
                              "benchmarks/baselines/<suite>.json)")
    p_bench.add_argument("--update-baseline", action="store_true",
                         help="write this run's payload as the baseline")
    p_bench.add_argument("--tolerance-scale", type=float, default=1.0,
                         help="multiply every noise tolerance (e.g. 3.0 "
                              "for gross-regression-only CI gates)")
    p_bench.add_argument("--no-profile", action="store_true",
                         help="skip the profiled attribution run")
    p_bench.set_defaults(fn=cmd_bench)

    p_prof = add_parser(
        "profile",
        help="run one experiment under the simulator self-profiler and "
             "report where wall-clock time goes",
    )
    p_prof.add_argument("experiment", nargs="?", default="headline",
                        choices=tuple(PROFILE_PRESETS),
                        help="experiment preset to profile")
    p_prof.add_argument("--app", choices=tuple(LOAD_LEVELS),
                        help="override the preset's application")
    p_prof.add_argument("--policy", choices=tuple(POLICIES),
                        help="override the preset's policy")
    p_prof.add_argument("--load", choices=("low", "medium", "high"),
                        help="override the preset's load level")
    p_prof.add_argument("--rps", type=float, help="explicit offered load")
    p_prof.add_argument("--top", type=int, default=15,
                        help="handlers to show (default 15)")
    p_prof.add_argument("--stacks-out",
                        help="write collapsed-stack text for flamegraph "
                             "tooling to this path")
    p_prof.add_argument("--trace-out",
                        help="write Chrome-trace JSON with a wall-clock "
                             "profiler lane to this path")
    p_prof.set_defaults(fn=cmd_profile)

    p_dc = add_parser(
        "datacenter",
        help="run a (sharded) multi-server fleet preset and report "
             "fleet metrics plus per-shard wall time and speedup",
    )
    from repro.cluster.frontend import SPRAY_POLICIES
    from repro.experiments.datacenter import PRESETS as DC_PRESETS

    p_dc.add_argument("preset", nargs="?", default="imbalance",
                      choices=tuple(DC_PRESETS),
                      help="cluster shape preset")
    p_dc.add_argument("--policy", choices=tuple(POLICIES),
                      help="override the preset's power policy")
    p_dc.add_argument("--servers", type=int, help="override n_servers")
    p_dc.add_argument("--shards", type=int, help="override n_shards")
    p_dc.add_argument("--rps", type=float, help="override total offered RPS")
    p_dc.add_argument("--shares",
                      help="load-share profile: 'uniform' or 'zipf:<s>'")
    p_dc.add_argument("--spray", choices=SPRAY_POLICIES,
                      help="frontend spray policy (frontend presets only)")
    p_dc.add_argument("--users", type=int,
                      help="frontend user population (frontend presets only)")
    p_dc.add_argument("--record", choices=("coarse", "fine"),
                      help="record flight-recorder series on the first "
                           "few servers")
    p_dc.add_argument("--dashboard",
                      help="write the merged-fleet HTML dashboard here "
                           "(needs --record)")
    p_dc.add_argument("--out", help="write the fleet ResultRecord JSON here")
    p_dc.add_argument("--energy", action="store_true",
                      help="attach per-server energy decomposition + "
                           "governor-miss accounting and print the "
                           "fleet-merged blame tables")
    p_dc.add_argument("--profile-fleet", action="store_true",
                      help="print the per-window shard imbalance report "
                           "(load-imbalance factor, critical path, "
                           "speedup bound, pool-slot utilization)")
    p_dc.add_argument("--progress", nargs="?", const="-", metavar="JSONL",
                      help="emit live JSONL heartbeats (windows done, "
                           "sim-time, per-shard events/s, straggler, ETA) "
                           "to stderr or to JSONL path")
    p_dc.add_argument("--trace-requests", type=int, nargs="?", const=1024,
                      metavar="N",
                      help="trace a deterministic 1-in-N sample of "
                           "requests end-to-end across shards "
                           "(frontend presets only; default N=1024)")
    p_dc.add_argument("--trace-out", metavar="JSON",
                      help="write the merged cross-shard Chrome-trace "
                           "here (with --trace-requests; Perfetto-loadable)")
    p_dc.set_defaults(fn=cmd_datacenter)

    p_pol = add_parser("policies", help="list the policy registry")
    p_pol.set_defaults(fn=cmd_policies)

    p_tr = add_parser(
        "trace", help="run one experiment and write a Chrome-trace JSON "
                      "(Perfetto-loadable) of its telemetry events"
    )
    p_tr.add_argument("experiment", nargs="?", default="fig4",
                      choices=tuple(TRACE_PRESETS),
                      help="experiment preset to trace")
    p_tr.add_argument("--app", choices=tuple(LOAD_LEVELS),
                      help="override the preset's application")
    p_tr.add_argument("--policy", choices=tuple(POLICIES),
                      help="override the preset's policy")
    p_tr.add_argument("--load", choices=("low", "medium", "high"),
                      help="override the preset's load level")
    p_tr.add_argument("--rps", type=float, help="explicit offered load")
    p_tr.add_argument("--out", default="trace.json",
                      help="output path (default: trace.json)")
    p_tr.set_defaults(fn=cmd_trace)

    p_dash = add_parser(
        "dashboard",
        help="run one experiment with the flight recorder and write a "
             "self-contained HTML timeline dashboard",
    )
    p_dash.add_argument("experiment", nargs="?", default="fig4",
                        choices=tuple(DASHBOARD_PRESETS),
                        help="experiment preset to record")
    p_dash.add_argument("--app", choices=tuple(LOAD_LEVELS),
                        help="override the preset's application")
    p_dash.add_argument("--policy", choices=tuple(POLICIES),
                        help="override the preset's policy")
    p_dash.add_argument("--load", choices=("low", "medium", "high"),
                        help="override the preset's load level")
    p_dash.add_argument("--rps", type=float, help="explicit offered load")
    p_dash.add_argument("--record", choices=("coarse", "fine"),
                        default="coarse", help="recorder cadence preset")
    p_dash.add_argument("--out", default="dashboard.html",
                        help="output path (default: dashboard.html)")
    p_dash.set_defaults(fn=cmd_dashboard)

    p_exp = add_parser(
        "export-trace", help="run traced and dump Figure-4 series as CSV"
    )
    p_exp.add_argument("--app", choices=tuple(LOAD_LEVELS), default="apache")
    p_exp.add_argument("--policy", choices=tuple(POLICIES), default="ond.idle")
    p_exp.add_argument("--load", choices=("low", "medium", "high"), default="low")
    p_exp.add_argument("--out", default="trace_export")
    p_exp.set_defaults(fn=cmd_export_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        resolve_jobs(args.jobs)
    except ValueError as exc:  # fail fast on a bad REPRO_JOBS
        parser.error(str(exc))
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
