"""Sweep harness: declarative specs, parallel fan-out, cached results.

The experiment layer's shared engine.  A sweep is declared as a
:class:`SweepSpec` (or a list of :class:`RunSpec`), executed by a
:class:`Runner` — serially or across a process pool — and comes back as
flat, picklable :class:`ResultRecord` objects whose order matches the
spec order bit-for-bit on both backends.  An optional :class:`ResultCache`
keyed by :func:`config_hash` skips points whose configs are unchanged.

    from repro.harness import SweepSpec, run_sweep

    records = run_sweep(
        SweepSpec(apps=("apache",), policies=("perf", "ncap.cons"),
                  loads=("low", "medium")),
        jobs=8,
    )
"""

from repro.harness.cache import DEFAULT_CACHE_DIR, ResultCache, default_cache_dir
from repro.harness.hashing import HASH_SCHEMA_VERSION, canonical_json, config_hash
from repro.harness.record import RECORD_SCHEMA_VERSION, ResultRecord
from repro.harness.runner import (
    JOBS_ENV,
    RunProgress,
    Runner,
    execute_spec,
    resolve_jobs,
    run_sweep,
)
from repro.harness.settings import RunSettings
from repro.harness.spec import LoadLike, PolicyLike, RunSpec, SweepSpec, policy_label

__all__ = [
    "DEFAULT_CACHE_DIR",
    "HASH_SCHEMA_VERSION",
    "JOBS_ENV",
    "LoadLike",
    "PolicyLike",
    "RECORD_SCHEMA_VERSION",
    "ResultCache",
    "ResultRecord",
    "RunProgress",
    "Runner",
    "RunSettings",
    "RunSpec",
    "SweepSpec",
    "canonical_json",
    "config_hash",
    "default_cache_dir",
    "execute_spec",
    "policy_label",
    "resolve_jobs",
    "run_sweep",
]
