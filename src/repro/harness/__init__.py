"""Sweep harness: declarative specs, parallel fan-out, cached results.

The experiment layer's shared engine.  A sweep is declared as a
:class:`SweepSpec` (or a list of :class:`RunSpec`), executed by a
:class:`Runner` — serially or across a process pool — and comes back as
flat, picklable :class:`ResultRecord` objects whose order matches the
spec order bit-for-bit on both backends.  An optional :class:`ResultCache`
keyed by :func:`config_hash` skips points whose configs are unchanged.

    from repro.harness import SweepSpec, run_sweep

    records = run_sweep(
        SweepSpec(apps=("apache",), policies=("perf", "ncap.cons"),
                  loads=("low", "medium")),
        jobs=8,
    )
"""

from repro.harness.bench import (
    BENCH_SCHEMA_VERSION,
    BenchCheck,
    BenchScenario,
    BenchSuite,
    ScenarioStats,
    baseline_path,
    compare_to_baseline,
    format_check_report,
    format_suite_report,
    load_bench_json,
    run_suite,
    validate_bench_payload,
    write_bench_json,
)
from repro.harness.cache import DEFAULT_CACHE_DIR, ResultCache, default_cache_dir
from repro.harness.hashing import HASH_SCHEMA_VERSION, canonical_json, config_hash
from repro.harness.history import (
    BenchHistory,
    StepFlag,
    TrendSeries,
    discover_bench_files,
    flag_steps,
    format_history_report,
    load_bench_history,
)
from repro.harness.record import RECORD_SCHEMA_VERSION, ResultRecord
from repro.harness.runner import (
    JOBS_ENV,
    RunProgress,
    Runner,
    execute_spec,
    resolve_jobs,
    run_sweep,
)
from repro.harness.settings import RunSettings
from repro.harness.spec import LoadLike, PolicyLike, RunSpec, SweepSpec, policy_label
from repro.harness.suites import SUITES, get_suite

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchCheck",
    "BenchHistory",
    "BenchScenario",
    "BenchSuite",
    "StepFlag",
    "TrendSeries",
    "DEFAULT_CACHE_DIR",
    "HASH_SCHEMA_VERSION",
    "JOBS_ENV",
    "SUITES",
    "ScenarioStats",
    "LoadLike",
    "PolicyLike",
    "RECORD_SCHEMA_VERSION",
    "ResultCache",
    "ResultRecord",
    "RunProgress",
    "Runner",
    "RunSettings",
    "RunSpec",
    "SweepSpec",
    "baseline_path",
    "canonical_json",
    "compare_to_baseline",
    "config_hash",
    "default_cache_dir",
    "discover_bench_files",
    "execute_spec",
    "flag_steps",
    "format_check_report",
    "format_history_report",
    "format_suite_report",
    "load_bench_history",
    "get_suite",
    "load_bench_json",
    "policy_label",
    "resolve_jobs",
    "run_suite",
    "run_sweep",
    "validate_bench_payload",
    "write_bench_json",
]
