"""Declarative experiment specifications.

A :class:`RunSpec` names one concrete cluster run — (app, policy, load,
seed, overrides) — without building it; a :class:`SweepSpec` is a grid of
those axes that :meth:`SweepSpec.expand` flattens into the concrete run
list, in a deterministic order (app, then load, then policy, then grid
override, then seed).  Specs are plain picklable dataclasses, so they can
be shipped to worker processes, and every ``ExperimentConfig`` field not
covered by a first-class axis can ride along in ``overrides``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, Sequence, Union

from repro.apps.workload import load_level
from repro.cluster.policies import PolicyConfig
from repro.cluster.simulation import ExperimentConfig
from repro.harness.settings import RunSettings

PolicyLike = Union[str, PolicyConfig]
#: A load axis entry: a named load level ("low"/"medium"/"high") resolved
#: per app, or an explicit offered rate in requests per second.
LoadLike = Union[str, float, int]


def policy_label(policy: PolicyLike) -> str:
    """The display name of a policy axis entry."""
    return policy if isinstance(policy, str) else policy.name


@dataclass
class RunSpec:
    """One concrete sweep point."""

    app: str = "apache"
    policy: PolicyLike = "perf"
    target_rps: float = 24_000.0
    seed: int = 1
    settings: RunSettings = field(default_factory=RunSettings.standard)
    #: Extra ``ExperimentConfig`` fields (e.g. ``ondemand_period_ns``,
    #: ``ncap_base_config``, ``nic_dma_latency_ns``).
    overrides: Mapping[str, Any] = field(default_factory=dict)
    #: The load-level name this point was expanded from, if any.  A label
    #: for reports only — it never reaches the config or the cache key.
    load: Optional[str] = None

    @property
    def policy_name(self) -> str:
        return policy_label(self.policy)

    def to_config(self) -> ExperimentConfig:
        return ExperimentConfig.from_settings(
            self.settings,
            app=self.app,
            policy=self.policy,
            target_rps=float(self.target_rps),
            seed=self.seed,
            **dict(self.overrides),
        )


@dataclass
class SweepSpec:
    """A grid of runs: apps x loads x policies x grid overrides x seeds."""

    apps: Sequence[str] = ("apache",)
    policies: Sequence[PolicyLike] = ("perf",)
    loads: Sequence[LoadLike] = ("low",)
    #: Explicit seed axis; ``None`` runs each point once at ``settings.seed``.
    seeds: Optional[Sequence[int]] = None
    settings: RunSettings = field(default_factory=RunSettings.standard)
    #: Applied to every point (merged under each ``grid`` entry).
    overrides: Mapping[str, Any] = field(default_factory=dict)
    #: An extra cross-product axis of override dicts, for sweeps over
    #: config fields that have no first-class axis (e.g. Figure 2's
    #: ``ondemand_period_ns``).
    grid: Sequence[Mapping[str, Any]] = field(default_factory=lambda: ({},))

    def expand(self) -> List[RunSpec]:
        """Flatten the grid into concrete runs, deterministically ordered."""
        seeds = tuple(self.seeds) if self.seeds is not None else (self.settings.seed,)
        specs: List[RunSpec] = []
        for app in self.apps:
            for load in self.loads:
                if isinstance(load, str):
                    target_rps = load_level(app, load).target_rps
                    label: Optional[str] = load
                else:
                    target_rps = float(load)
                    label = None
                for policy in self.policies:
                    for extra in self.grid:
                        merged = {**self.overrides, **extra}
                        for seed in seeds:
                            specs.append(
                                RunSpec(
                                    app=app,
                                    policy=policy,
                                    target_rps=target_rps,
                                    seed=seed,
                                    settings=self.settings,
                                    overrides=merged,
                                    load=label,
                                )
                            )
        return specs
