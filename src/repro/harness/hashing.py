"""Stable content hashing of experiment configurations.

Cache keys must survive everything that does *not* change what a run
computes: dataclass field declaration order, passing a default value
explicitly versus omitting it, int-versus-float spellings of the same
number (``target_rps=24_000`` and ``24_000.0``), and tuple-versus-list
containers.  They must *change* for anything that does: any field of the
config or of a nested ``ProcessorConfig`` / ``NetStackCosts`` /
``ModerationConfig`` / ``NCAPConfig`` / ``PolicyConfig``.

The canonical form is a JSON document with sorted keys; the key is its
SHA-256.  ``HASH_SCHEMA_VERSION`` is mixed in so that a change to the
canonicalization (or to the meaning of a config field) invalidates every
previously cached entry instead of silently aliasing it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from typing import Any

#: Bump when canonicalization or config semantics change.
HASH_SCHEMA_VERSION = 1

# Above 2**53 a float cannot represent every integer; keep such values
# (and only such values) as exact ints.
_FLOAT_EXACT_INT_LIMIT = 2 ** 53


def canonical_value(value: Any) -> Any:
    """Reduce ``value`` to a canonical JSON-serializable form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonical_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {
            "__dataclass__": type(value).__name__,
            "fields": {name: fields[name] for name in sorted(fields)},
        }
    if isinstance(value, Enum):
        return {"__enum__": type(value).__name__, "value": canonical_value(value.value)}
    if isinstance(value, dict):
        return {str(k): canonical_value(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": bytes(value).hex()}
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        # 24_000 and 24_000.0 configure the same run (dataclass equality
        # agrees); collapse integral numbers to int so they hash alike.
        if float(value) == value and abs(value) < _FLOAT_EXACT_INT_LIMIT:
            return int(value)
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for config hashing"
    )


def canonical_json(value: Any) -> str:
    """The canonical JSON text whose digest is the cache key."""
    return json.dumps(
        canonical_value(value), sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )


def config_hash(config: Any) -> str:
    """A stable hex digest identifying one expanded experiment config."""
    payload = f"v{HASH_SCHEMA_VERSION}:{canonical_json(config)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
