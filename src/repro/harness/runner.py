"""Sweep execution: serial and process-pool backends.

Every cluster run is an independent deterministic simulation (its own
``Simulator`` and seeded RNG registry), so a sweep is embarrassingly
parallel: the runner fans pending points out over a
``ProcessPoolExecutor`` and reassembles results **in spec order**, so the
two backends are interchangeable — a parallel sweep returns bit-identical
records in the same order as a serial one, regardless of completion
order.

Job-count resolution: explicit ``jobs`` argument, else the ``REPRO_JOBS``
environment variable, else ``os.cpu_count()``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar, Union

from repro.cluster.simulation import run_experiment
from repro.harness.cache import ResultCache
from repro.harness.hashing import config_hash
from repro.harness.record import ResultRecord
from repro.harness.spec import RunSpec, SweepSpec

T = TypeVar("T")
R = TypeVar("R")

JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Explicit value > ``REPRO_JOBS`` > ``os.cpu_count()``; at least 1."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ValueError(f"{JOBS_ENV}={env!r} is not an integer") from exc
    return os.cpu_count() or 1


@dataclass
class RunProgress:
    """One completed sweep point, reported through the progress hook."""

    index: int
    total: int
    spec: RunSpec
    record: ResultRecord
    cached: bool


ProgressHook = Callable[[RunProgress], None]


def execute_spec(spec: RunSpec) -> ResultRecord:
    """Run one spec to a record (the process-pool worker entry point)."""
    config = spec.to_config()
    key = config_hash(config)
    result = run_experiment(config)
    return ResultRecord.from_result(result, config_hash=key, seed=config.seed)


class Runner:
    """Executes specs serially or across a process pool, with caching."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressHook] = None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.progress = progress

    def run(self, specs: Iterable[RunSpec]) -> List[ResultRecord]:
        """All specs' records, ordered like the input specs."""
        specs = list(specs)
        total = len(specs)
        records: List[Optional[ResultRecord]] = [None] * total

        pending: List[int] = []
        for i, spec in enumerate(specs):
            cached = None
            if self.cache is not None:
                cached = self.cache.get(config_hash(spec.to_config()))
            if cached is not None:
                cached.from_cache = True
                records[i] = cached
                self._notify(i, total, spec, cached, cached=True)
            else:
                pending.append(i)

        for i, record in zip(pending, self._execute(specs, pending)):
            if self.cache is not None:
                self.cache.put(record)
            records[i] = record
            self._notify(i, total, specs[i], record, cached=False)

        return [r for r in records if r is not None]

    def _execute(
        self, specs: Sequence[RunSpec], pending: Sequence[int]
    ) -> Iterable[ResultRecord]:
        """Records for ``pending`` indices, yielded in ``pending`` order."""
        if self.jobs <= 1 or len(pending) <= 1:
            for i in pending:
                yield execute_spec(specs[i])
            return
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(pending))) as pool:
            futures = [pool.submit(execute_spec, specs[i]) for i in pending]
            for future in futures:
                yield future.result()

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Parallel map for experiment tasks that are not plain configs.

        ``fn`` must be a module-level (picklable) callable and the items
        and results picklable values.  Results come back in item order;
        no caching is applied.
        """
        items = list(items)
        if self.jobs <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(items))) as pool:
            futures = [pool.submit(fn, item) for item in items]
            return [future.result() for future in futures]

    def _notify(
        self, index: int, total: int, spec: RunSpec, record: ResultRecord,
        cached: bool,
    ) -> None:
        if self.progress is not None:
            self.progress(RunProgress(index, total, spec, record, cached))


def run_sweep(
    sweep: Union[SweepSpec, Iterable[RunSpec]],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressHook] = None,
) -> List[ResultRecord]:
    """Expand (if needed) and run a sweep; records come back in spec order."""
    specs = sweep.expand() if isinstance(sweep, SweepSpec) else list(sweep)
    return Runner(jobs=jobs, cache=cache, progress=progress).run(specs)
