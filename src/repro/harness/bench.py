"""Continuous benchmarking: declared scenarios, JSON payloads, baselines.

The machine-readable counterpart of the free-text ``benchmarks/*.py``
reports.  A :class:`BenchSuite` declares named scenarios (callables that
build, run, and summarize one workload); :func:`run_suite` executes each
scenario once under a :class:`~repro.profiling.SimProfiler` (doubling as
warmup) for handler attribution, then ``repeats`` unprofiled times for
wall timing, and aggregates everything into one JSON-able payload —
wall-clock statistics (median/min/IQR), events/sec, simulated-ns per
wall-second, peak RSS, top handlers, and scenario counters.

:func:`write_bench_json` lands the payload as ``BENCH_<suite>.json`` at
the repo root; :func:`compare_to_baseline` diffs a payload against a
committed ``benchmarks/baselines/<suite>.json`` with per-metric noise
tolerances (wall regressions gate on the *minimum* over repeats — the
noise-robust statistic — while counter drift is reported, not gated, so
legitimate functional changes only require a baseline refresh, not a
red build).
"""

from __future__ import annotations

import json
import math
import os
import platform
import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.metrics.report import format_table
from repro.profiling.profiler import SimProfiler, peak_rss_bytes

#: Bump when the BENCH payload changes shape; checks refuse to compare
#: across schema versions.
BENCH_SCHEMA_VERSION = 1

#: Where committed baselines live, relative to the repo root.
BASELINE_DIR = os.path.join("benchmarks", "baselines")

#: Per-metric relative noise tolerances for ``--check``.  ``wall_s.min``
#: is the gate: minimum-over-repeats is the stable statistic, and 0.18
#: still flags a 20% slowdown.  Baselines may override these via a
#: ``tolerances`` key.
DEFAULT_TOLERANCES: Dict[str, float] = {
    "wall_s.min": 0.18,
    "wall_s.median": 0.30,
}


@dataclass
class ScenarioStats:
    """What one scenario execution reports back to the runner."""

    events: int = 0
    sim_ns: int = 0
    counters: Dict[str, float] = field(default_factory=dict)


#: A scenario callable: builds and runs one workload.  Receives a
#: :class:`SimProfiler` to attach (or None for a plain timed run).
ScenarioFn = Callable[[Optional[SimProfiler]], ScenarioStats]


@dataclass
class BenchScenario:
    """One named benchmark workload."""

    name: str
    fn: ScenarioFn
    description: str = ""
    #: Override the suite-level repeat count for this scenario.
    repeats: Optional[int] = None


@dataclass
class BenchSuite:
    """A named set of benchmark scenarios, run and reported together."""

    name: str
    scenarios: Sequence[BenchScenario]
    description: str = ""
    repeats: int = 5

    def bench_filename(self) -> str:
        return f"BENCH_{self.name}.json"


# -- execution -----------------------------------------------------------


def _iqr(samples: Sequence[float]) -> float:
    if len(samples) < 2:
        return 0.0
    q1, _, q3 = statistics.quantiles(samples, n=4)
    return q3 - q1


def run_suite(
    suite: BenchSuite,
    repeats: Optional[int] = None,
    profile: bool = True,
    top_n: int = 8,
) -> Dict[str, Any]:
    """Run every scenario and aggregate into a BENCH payload.

    Each scenario runs once profiled (attribution + warmup), then its
    repeat count of times unprofiled for the wall-clock statistics, so
    the timing never pays the instrumented loop's overhead.
    """
    scenarios: Dict[str, Any] = {}
    for scenario in suite.scenarios:
        n = repeats if repeats is not None else (scenario.repeats or suite.repeats)
        n = max(1, n)
        profile_payload: Dict[str, Any] = {}
        top_handlers: List[Dict[str, Any]] = []
        if profile:
            profiler = SimProfiler()
            scenario.fn(profiler)
            prof = profiler.profile()
            profile_payload = {
                "loop_wall_ns": prof.loop_wall_ns,
                "attributed_wall_ns": prof.attributed_wall_ns,
                "max_heap_depth": prof.max_heap_depth,
                "final_heap_size": prof.final_heap_size,
                "cancelled_pops": prof.cancelled_pops,
                "cancelled_unlinked": prof.cancelled_unlinked,
                "compactions": prof.compactions,
                "compacted_events": prof.compacted_events,
            }
            total = max(prof.loop_wall_ns, 1)
            top_handlers = [
                {
                    "handler": h.qualname,
                    "subsystem": h.subsystem,
                    "calls": h.calls,
                    "wall_ns": h.wall_ns,
                    "share": round(h.wall_ns / total, 4),
                }
                for h in prof.top(top_n)
            ]
        walls: List[float] = []
        stats = ScenarioStats()
        for _ in range(n):
            t0 = time.perf_counter()
            stats = scenario.fn(None)
            walls.append(time.perf_counter() - t0)
        median = statistics.median(walls)
        scenarios[scenario.name] = {
            "description": scenario.description,
            "wall_s": {
                "median": median,
                "min": min(walls),
                "iqr": _iqr(walls),
                "samples": walls,
            },
            "events": stats.events,
            "sim_ns": stats.sim_ns,
            "events_per_sec": (stats.events / median) if median > 0 else 0.0,
            "sim_ns_per_wall_s": (stats.sim_ns / median) if median > 0 else 0.0,
            "peak_rss_bytes": peak_rss_bytes(),
            "counters": dict(stats.counters),
            "top_handlers": top_handlers,
            "profile": profile_payload,
        }
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "suite": suite.name,
        "description": suite.description,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats if repeats is not None else suite.repeats,
        "scenarios": scenarios,
    }


# -- payload validation and I/O ------------------------------------------

_SCENARIO_NUMBER_KEYS = (
    "events",
    "sim_ns",
    "events_per_sec",
    "sim_ns_per_wall_s",
    "peak_rss_bytes",
)


def validate_bench_payload(payload: Any) -> None:
    """Raise :class:`ValueError` unless ``payload`` is a valid BENCH dict."""
    if not isinstance(payload, dict):
        raise ValueError("BENCH payload must be a JSON object")
    if payload.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"BENCH schema {payload.get('schema')!r} != {BENCH_SCHEMA_VERSION}"
        )
    if not isinstance(payload.get("suite"), str) or not payload["suite"]:
        raise ValueError("BENCH payload missing suite name")
    scenarios = payload.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        raise ValueError("BENCH payload has no scenarios")
    for name, entry in scenarios.items():
        if not isinstance(entry, dict):
            raise ValueError(f"scenario {name!r} is not an object")
        wall = entry.get("wall_s")
        if not isinstance(wall, dict):
            raise ValueError(f"scenario {name!r} missing wall_s")
        for key in ("median", "min", "iqr"):
            value = wall.get(key)
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise ValueError(f"scenario {name!r} wall_s.{key} invalid")
        samples = wall.get("samples")
        if not isinstance(samples, list) or not samples:
            raise ValueError(f"scenario {name!r} wall_s.samples invalid")
        for key in _SCENARIO_NUMBER_KEYS:
            value = entry.get(key)
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise ValueError(f"scenario {name!r} {key} invalid")
        if not isinstance(entry.get("counters"), dict):
            raise ValueError(f"scenario {name!r} counters invalid")
        if not isinstance(entry.get("top_handlers"), list):
            raise ValueError(f"scenario {name!r} top_handlers invalid")


def write_bench_json(payload: Dict[str, Any], path: str) -> str:
    """Validate and write a BENCH payload; returns the written path."""
    validate_bench_payload(payload)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def load_bench_json(path: str) -> Dict[str, Any]:
    """Read and validate a BENCH payload."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    validate_bench_payload(payload)
    return payload


def baseline_path(suite_name: str, directory: Optional[str] = None) -> str:
    return os.path.join(directory or BASELINE_DIR, f"{suite_name}.json")


# -- baseline comparison --------------------------------------------------


@dataclass
class BenchCheck:
    """The outcome of one baseline comparison."""

    suite: str
    regressions: List[str] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Per-scenario events/s vs the baseline — informational, always
    #: emitted so throughput claims are visible in the CI gate log.
    throughput: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def _format_rate(events_per_s: float) -> str:
    if events_per_s >= 1e6:
        return f"{events_per_s / 1e6:.2f}M"
    return f"{events_per_s / 1e3:.0f}K"


def _metric(entry: Dict[str, Any], path: str) -> float:
    value: Any = entry
    for part in path.split("."):
        value = value[part]
    return float(value)


def compare_to_baseline(
    candidate: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance_scale: float = 1.0,
) -> BenchCheck:
    """Diff a fresh payload against a baseline payload.

    Wall-time metrics gate (within their tolerance, scaled by
    ``tolerance_scale``); counter and event-count drift is surfaced as
    notes only.  A scenario present in the baseline but missing from the
    candidate is a regression; a new candidate scenario is a note.
    """
    validate_bench_payload(candidate)
    validate_bench_payload(baseline)
    if candidate["suite"] != baseline["suite"]:
        raise ValueError(
            f"suite mismatch: candidate {candidate['suite']!r} "
            f"vs baseline {baseline['suite']!r}"
        )
    tolerances = dict(DEFAULT_TOLERANCES)
    overrides = baseline.get("tolerances")
    if isinstance(overrides, dict):
        tolerances.update({k: float(v) for k, v in overrides.items()})
    check = BenchCheck(suite=candidate["suite"])
    cand_scenarios = candidate["scenarios"]
    base_scenarios = baseline["scenarios"]
    for name, base in base_scenarios.items():
        cand = cand_scenarios.get(name)
        if cand is None:
            check.regressions.append(f"{name}: scenario missing from candidate")
            continue
        for path, tolerance in sorted(tolerances.items()):
            limit_frac = tolerance * tolerance_scale
            try:
                base_value = _metric(base, path)
                cand_value = _metric(cand, path)
            except (KeyError, TypeError):
                check.notes.append(f"{name}: metric {path} absent; skipped")
                continue
            if base_value <= 0:
                continue
            ratio = cand_value / base_value
            if ratio > 1.0 + limit_frac:
                check.regressions.append(
                    f"{name}: {path} regressed {ratio:.2f}x "
                    f"({base_value:.4g} -> {cand_value:.4g}, "
                    f"limit {1.0 + limit_frac:.2f}x)"
                )
            elif ratio < 1.0 - limit_frac:
                check.improvements.append(
                    f"{name}: {path} improved {ratio:.2f}x "
                    f"({base_value:.4g} -> {cand_value:.4g}) — "
                    f"consider refreshing the baseline"
                )
        base_eps = float(base.get("events_per_sec") or 0.0)
        cand_eps = float(cand.get("events_per_sec") or 0.0)
        if base_eps > 0 and cand_eps > 0:
            check.throughput.append(
                f"{name}: events_per_s {_format_rate(base_eps)} -> "
                f"{_format_rate(cand_eps)} ({cand_eps / base_eps:.2f}x)"
            )
        if cand.get("events") != base.get("events"):
            check.notes.append(
                f"{name}: events {base.get('events')} -> {cand.get('events')} "
                f"(functional change; refresh the baseline)"
            )
        base_counters = base.get("counters", {})
        cand_counters = cand.get("counters", {})
        for key in sorted(set(base_counters) | set(cand_counters)):
            if base_counters.get(key) != cand_counters.get(key):
                check.notes.append(
                    f"{name}: counter {key} "
                    f"{base_counters.get(key)} -> {cand_counters.get(key)}"
                )
    for name in sorted(set(cand_scenarios) - set(base_scenarios)):
        check.notes.append(f"{name}: new scenario (not in baseline)")
    return check


# -- rendering ------------------------------------------------------------


def format_suite_report(payload: Dict[str, Any], top_n: int = 5) -> str:
    """The plain-text rendering of a BENCH payload (the ``.txt`` report
    and the JSON file share exactly this data)."""
    rows = []
    for name, entry in payload["scenarios"].items():
        wall = entry["wall_s"]
        rows.append(
            [
                name,
                round(wall["median"] * 1e3, 2),
                round(wall["min"] * 1e3, 2),
                round(wall["iqr"] * 1e3, 2),
                f"{entry['events_per_sec'] / 1e3:.0f}K",
                f"{entry['sim_ns_per_wall_s'] / 1e6:.1f}M",
                f"{entry['peak_rss_bytes'] / 1e6:.0f}",
            ]
        )
    lines = [
        format_table(
            [
                "scenario",
                "wall p50 (ms)",
                "wall min (ms)",
                "IQR (ms)",
                "events/s",
                "sim-ns/wall-s",
                "RSS (MB)",
            ],
            rows,
            title=(
                f"Bench suite '{payload['suite']}' — "
                f"{payload['repeats']} repeats, python {payload['python']}"
            ),
        )
    ]
    for name, entry in payload["scenarios"].items():
        handlers = entry.get("top_handlers") or []
        if not handlers:
            continue
        handler_rows = [
            [
                h["subsystem"],
                h["handler"],
                h["calls"],
                round(h["wall_ns"] / 1e6, 3),
                f"{100.0 * h['share']:.1f}%",
            ]
            for h in handlers[:top_n]
        ]
        lines.append(
            format_table(
                ["subsystem", "handler", "calls", "wall (ms)", "share"],
                handler_rows,
                title=f"{name}: top handlers (profiled run)",
            )
        )
    return "\n\n".join(lines)


def format_check_report(check: BenchCheck) -> str:
    """Human-readable rendering of a :class:`BenchCheck`."""
    lines = [
        f"Baseline check — suite '{check.suite}': "
        + ("OK" if check.ok else f"{len(check.regressions)} regression(s)")
    ]
    for regression in check.regressions:
        lines.append(f"  REGRESSION  {regression}")
    for improvement in check.improvements:
        lines.append(f"  improved    {improvement}")
    for rate in check.throughput:
        lines.append(f"  events/s    {rate}")
    for note in check.notes:
        lines.append(f"  note        {note}")
    return "\n".join(lines)


__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BASELINE_DIR",
    "DEFAULT_TOLERANCES",
    "BenchCheck",
    "BenchScenario",
    "BenchSuite",
    "ScenarioFn",
    "ScenarioStats",
    "baseline_path",
    "compare_to_baseline",
    "format_check_report",
    "format_suite_report",
    "load_bench_json",
    "run_suite",
    "validate_bench_payload",
    "write_bench_json",
]
