"""The declared benchmark suites behind ``repro bench``.

Each scenario is a plain callable ``fn(profiler) -> ScenarioStats``: it
builds its own :class:`~repro.sim.kernel.Simulator` (attaching the
profiler when given one), runs the workload, and reports event/counter
totals.  The ``micro`` suite covers the simulation substrate (event
kernel, cancel churn + heap compaction, NIC rx path, a short cluster
run); the ``telemetry`` suite times the headline experiment with and
without the opt-in attribution/audit observers — the macro measurements
``benchmarks/bench_telemetry_overhead.py`` renders its report from.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.harness.bench import BenchScenario, BenchSuite, ScenarioStats
from repro.profiling.profiler import SimProfiler
from repro.sim.kernel import Simulator
from repro.sim.units import MS


def _kernel_stats(sim: Simulator, **counters: float) -> ScenarioStats:
    return ScenarioStats(
        events=sim.events_executed,
        sim_ns=sim.now,
        counters={
            "cancelled_pops": sim.cancelled_pops,
            "compactions": sim.compactions,
            "compacted_events": sim.compacted_events,
            **counters,
        },
    )


def event_kernel(profiler: Optional[SimProfiler]) -> ScenarioStats:
    """Schedule+fire 100K chained events — raw dispatch throughput."""
    sim = Simulator()
    if profiler is not None:
        sim.set_profiler(profiler)
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < 100_000:
            sim.schedule(10, tick)

    sim.schedule(0, tick)
    sim.run()
    assert count[0] == 100_000
    return _kernel_stats(sim)


def cancel_churn(profiler: Optional[SimProfiler]) -> ScenarioStats:
    """Timer-re-arm churn: every tick cancels a far-future event.

    Without heap compaction the 20K dead entries would pile up until the
    run ends; the scenario's ``compactions``/``compacted_events``
    counters pin the hygiene behavior as well as its cost.
    """
    sim = Simulator()
    if profiler is not None:
        sim.set_profiler(profiler)
    count = [0]

    def noop() -> None:  # pragma: no cover - cancelled before firing
        raise AssertionError("cancelled event fired")

    def tick() -> None:
        count[0] += 1
        sim.schedule(1_000_000_000, noop).cancel()
        if count[0] < 20_000:
            sim.schedule(10, tick)

    sim.schedule(0, tick)
    sim.run()
    assert count[0] == 20_000
    stats = _kernel_stats(sim, final_heap=sim.heap_size())
    return stats


def nic_rx_path(profiler: Optional[SimProfiler]) -> ScenarioStats:
    """Deliver 2000 request packets through NIC + driver + scheduler."""
    from repro.cpu import ProcessorConfig
    from repro.net import NIC, NICDriver, make_http_request
    from repro.oskernel import IRQController, NetStackCosts

    sim = Simulator()
    if profiler is not None:
        sim.set_profiler(profiler)
    package = ProcessorConfig(n_cores=4).build_package(sim)
    irq = IRQController(sim, package)
    nic = NIC(sim)
    driver = NICDriver(sim, nic, irq, NetStackCosts())
    delivered = []
    driver.packet_sink = delivered.append
    for i in range(2000):
        sim.schedule_at(
            i * 2_000, nic.receive_frame, make_http_request("c", "s", req_id=i)
        )
    sim.run()
    assert len(delivered) == 2000
    return _kernel_stats(sim, delivered=len(delivered))


def small_cluster(profiler: Optional[SimProfiler]) -> ScenarioStats:
    """A complete (short) Apache experiment under the NCAP policy."""
    from repro.cluster.simulation import Cluster, ExperimentConfig

    config = ExperimentConfig(
        app="apache",
        policy="ncap.cons",
        target_rps=24_000,
        warmup_ns=5 * MS,
        measure_ns=30 * MS,
        drain_ns=20 * MS,
    )
    cluster = Cluster(config, profile=profiler)
    result = cluster.run()
    assert result.responses_received > 0
    return _kernel_stats(
        cluster.sim,
        requests_sent=result.requests_sent,
        responses_received=result.responses_received,
    )


def _headline(profiler: Optional[SimProfiler], attributed: bool) -> ScenarioStats:
    from repro.analysis.attribution import AttributionSink
    from repro.cluster.simulation import Cluster, ExperimentConfig
    from repro.harness.settings import RunSettings

    config = ExperimentConfig.from_settings(
        RunSettings.quick(), app="apache", policy="ncap.cons",
        target_rps=24_000.0,
    )
    cluster = Cluster(
        config,
        sinks=[AttributionSink()] if attributed else None,
        audit=attributed,
        profile=profiler,
    )
    result = cluster.run()
    assert result.responses_received > 0
    return _kernel_stats(
        cluster.sim,
        requests_sent=result.requests_sent,
        responses_received=result.responses_received,
    )


def headline_plain(profiler: Optional[SimProfiler]) -> ScenarioStats:
    """Headline experiment (Apache / ncap.cons @ 24K RPS), no observers."""
    return _headline(profiler, attributed=False)


def headline_attributed(profiler: Optional[SimProfiler]) -> ScenarioStats:
    """Headline experiment with AttributionSink + invariant auditor."""
    return _headline(profiler, attributed=True)


MICRO_SUITE = BenchSuite(
    name="micro",
    description="Simulation-substrate micro-benchmarks (event kernel, "
    "cancel churn, NIC rx path, short cluster run)",
    scenarios=(
        BenchScenario(
            "event_kernel", event_kernel, "100K chained events"
        ),
        BenchScenario(
            "cancel_churn", cancel_churn,
            "20K cancel-heavy timer re-arms (heap compaction)",
        ),
        BenchScenario(
            "nic_rx_path", nic_rx_path, "2000 packets through NIC+driver"
        ),
        BenchScenario(
            "small_cluster", small_cluster, "short Apache/ncap.cons run"
        ),
    ),
    repeats=5,
)

TELEMETRY_SUITE = BenchSuite(
    name="telemetry",
    description="Headline-experiment wall time with and without the "
    "opt-in attribution/audit observers",
    scenarios=(
        BenchScenario(
            "headline_plain", headline_plain,
            "headline quick run, no observers",
        ),
        BenchScenario(
            "headline_attributed", headline_attributed,
            "headline quick run, attribution + audit",
        ),
    ),
    repeats=5,
)

SUITES: Dict[str, BenchSuite] = {
    suite.name: suite for suite in (MICRO_SUITE, TELEMETRY_SUITE)
}


def get_suite(name: str) -> BenchSuite:
    try:
        return SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown bench suite {name!r}; choose from {sorted(SUITES)}"
        ) from None


__all__ = [
    "MICRO_SUITE",
    "SUITES",
    "TELEMETRY_SUITE",
    "get_suite",
]
