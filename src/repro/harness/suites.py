"""The declared benchmark suites behind ``repro bench``.

Each scenario is a plain callable ``fn(profiler) -> ScenarioStats``: it
builds its own :class:`~repro.sim.kernel.Simulator` (attaching the
profiler when given one), runs the workload, and reports event/counter
totals.  Kernel scenarios also take a ``sim_cls`` keyword so the
differential-parity tests can rerun them on the retained
:class:`~repro.sim.kernel.HeapScheduler` reference.  The ``micro``
suite covers the simulation substrate (batched event kernel, timer
re-arm/cancel churn, a single-event timer chain, schedule_many burst
fan-out, NIC rx path, a short cluster run); the ``telemetry`` suite
times the headline experiment with and without the opt-in
attribution/audit observers — the macro measurements
``benchmarks/bench_telemetry_overhead.py`` renders its report from.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.harness.bench import BenchScenario, BenchSuite, ScenarioStats
from repro.profiling.profiler import SimProfiler
from repro.sim.kernel import Simulator
from repro.sim.units import MS


def _kernel_stats(sim: Simulator, **counters: float) -> ScenarioStats:
    return ScenarioStats(
        events=sim.events_executed,
        sim_ns=sim.now,
        counters={
            "cancelled_pops": sim.cancelled_pops,
            "cancelled_unlinked": sim.cancelled_unlinked,
            "compactions": sim.compactions,
            "compacted_events": sim.compacted_events,
            **counters,
        },
    )


def event_kernel(
    profiler: Optional[SimProfiler], sim_cls: type = Simulator
) -> ScenarioStats:
    """100K events as chained same-timestamp batches — peak dispatch rate.

    500 rounds of ``schedule_batch(10, 200, tick)``: the shape the
    vectorized burst clients feed the kernel, and the scenario behind
    the headline events/s claim.
    """
    sim = sim_cls()
    if profiler is not None:
        sim.set_profiler(profiler)
    count = [0]
    total = 100_000

    def tick() -> None:
        count[0] += 1

    def arm() -> None:
        if count[0] < total:
            sim.schedule_batch(10, 200, tick)
            sim.schedule(10, arm)

    arm()
    sim.run()
    assert count[0] == total
    return _kernel_stats(sim)


def cancel_churn(
    profiler: Optional[SimProfiler], sim_cls: type = Simulator
) -> ScenarioStats:
    """Timer re-arm/cancel churn: 40K batched ticks re-arming a
    far-future timer every 8th tick, plus interior + tail cancels every
    round (~5K re-arms and 1.6K explicit cancels per run).

    The re-arms take the :meth:`~repro.sim.kernel.Simulator.reschedule`
    fast path (tail unlink + object reuse); each of the 200 rounds also
    cancels interior events (lazy tombstones — keeps the compaction
    machinery hot) and tail events (eager unlink).  The counters pin
    all three cancellation paths as well as their cost.
    """
    sim = sim_cls()
    if profiler is not None:
        sim.set_profiler(profiler)
    count = [0]
    rounds, batch = 200, 200
    total = rounds * batch
    far = 1_000_000_000

    def noop() -> None:
        pass

    def cancelled_noop() -> None:  # pragma: no cover - cancelled
        raise AssertionError("cancelled event fired")

    cell = [sim.schedule(far, noop)]
    resched = sim.reschedule

    def tick() -> None:
        count[0] += 1
        if not count[0] & 7:
            cell[0] = resched(cell[0], far)

    def arm() -> None:
        if count[0] < total:
            for _ in range(4):
                interior = sim.schedule(far, cancelled_noop)
                tail = sim.schedule(far, cancelled_noop)
                interior.cancel()  # lazy tombstone (tail sits behind it)
                tail.cancel()  # eager tail unlink
            sim.schedule_batch(10, batch, tick)
            sim.schedule(10, arm)

    arm()
    sim.run()
    assert count[0] == total
    return _kernel_stats(sim, final_heap=sim.heap_size())


def chained_timers(
    profiler: Optional[SimProfiler], sim_cls: type = Simulator
) -> ScenarioStats:
    """100K chained single events — the pre-batch dispatch baseline.

    One event in flight at a time, rescheduling itself: the worst case
    for any calendar scheduler (no batching to amortize) and the shape
    of the old ``event_kernel`` scenario, kept for continuity.
    """
    sim = sim_cls()
    if profiler is not None:
        sim.set_profiler(profiler)
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < 100_000:
            sim.schedule(10, tick)

    sim.schedule(0, tick)
    sim.run()
    assert count[0] == 100_000
    return _kernel_stats(sim)


def burst_fanout(
    profiler: Optional[SimProfiler], sim_cls: type = Simulator
) -> ScenarioStats:
    """50 bursts of 2000 arrivals via ``schedule_many`` — the vectorized
    open-loop client's bulk path, timestamps spread inside each burst."""
    sim = sim_cls()
    if profiler is not None:
        sim.set_profiler(profiler)
    seen = [0]

    def arrival() -> None:
        seen[0] += 1

    for b in range(50):
        base = b * 1_000_000
        sim.schedule_many(range(base, base + 2000 * 10, 10), arrival)
    sim.run()
    assert seen[0] == 100_000
    return _kernel_stats(sim)


def nic_rx_path(profiler: Optional[SimProfiler]) -> ScenarioStats:
    """Deliver 2000 request packets through NIC + driver + scheduler."""
    from repro.cpu import ProcessorConfig
    from repro.net import NIC, NICDriver, make_http_request
    from repro.oskernel import IRQController, NetStackCosts

    sim = Simulator()
    if profiler is not None:
        sim.set_profiler(profiler)
    package = ProcessorConfig(n_cores=4).build_package(sim)
    irq = IRQController(sim, package)
    nic = NIC(sim)
    driver = NICDriver(sim, nic, irq, NetStackCosts())
    delivered = []
    driver.packet_sink = delivered.append
    for i in range(2000):
        sim.schedule_at(
            i * 2_000, nic.receive_frame, make_http_request("c", "s", req_id=i)
        )
    sim.run()
    assert len(delivered) == 2000
    return _kernel_stats(sim, delivered=len(delivered))


def small_cluster(profiler: Optional[SimProfiler]) -> ScenarioStats:
    """A complete (short) Apache experiment under the NCAP policy."""
    from repro.cluster.simulation import Cluster, ExperimentConfig

    config = ExperimentConfig(
        app="apache",
        policy="ncap.cons",
        target_rps=24_000,
        warmup_ns=5 * MS,
        measure_ns=30 * MS,
        drain_ns=20 * MS,
    )
    cluster = Cluster(config, profile=profiler)
    result = cluster.run()
    assert result.responses_received > 0
    return _kernel_stats(
        cluster.sim,
        requests_sent=result.requests_sent,
        responses_received=result.responses_received,
    )


def _headline(
    profiler: Optional[SimProfiler],
    attributed: bool,
    energy: bool = False,
) -> ScenarioStats:
    from repro.analysis.attribution import AttributionSink
    from repro.cluster.simulation import Cluster, ExperimentConfig
    from repro.harness.settings import RunSettings

    config = ExperimentConfig.from_settings(
        RunSettings.quick(), app="apache", policy="ncap.cons",
        target_rps=24_000.0,
    )
    cluster = Cluster(
        config,
        sinks=[AttributionSink()] if attributed else None,
        audit=attributed,
        profile=profiler,
        energy_attribution=energy,
    )
    result = cluster.run()
    assert result.responses_received > 0
    return _kernel_stats(
        cluster.sim,
        requests_sent=result.requests_sent,
        responses_received=result.responses_received,
    )


def headline_plain(profiler: Optional[SimProfiler]) -> ScenarioStats:
    """Headline experiment (Apache / ncap.cons @ 24K RPS), no observers."""
    return _headline(profiler, attributed=False)


def headline_attributed(profiler: Optional[SimProfiler]) -> ScenarioStats:
    """Headline experiment with AttributionSink + invariant auditor."""
    return _headline(profiler, attributed=True)


def headline_energy(profiler: Optional[SimProfiler]) -> ScenarioStats:
    """Headline experiment with energy attribution on (per-idle-exit
    governor grading + telescoping decomposition, no other observers) —
    pins the attribution-on overhead against ``headline_plain``.  The
    disabled path is ``headline_plain`` itself: without the observer the
    only residue is one ``on_idle_end is None`` check per idle exit."""
    return _headline(profiler, attributed=False, energy=True)


def _datacenter_stats(run, result) -> ScenarioStats:
    shards = run.inline_shards()
    return _kernel_stats(
        shards[0].sim,
        total_events=sum(s.sim.events_executed for s in shards),
        responses_received=result.record.responses_received,
        requests_sent=result.record.requests_sent,
    )


def datacenter_sharded(profiler: Optional[SimProfiler]) -> ScenarioStats:
    """Four servers in two conservative-window shards, executed serially
    — times the window-coordination machinery without multiprocessing."""
    from repro.cluster.datacenter import DatacenterConfig
    from repro.cluster.sharding import ShardedDatacenterRun

    config = DatacenterConfig(
        total_rps=60_000.0,
        clients_per_server=2,
        warmup_ns=5 * MS,
        measure_ns=30 * MS,
        drain_ns=20 * MS,
        n_shards=2,
    )
    run = ShardedDatacenterRun(config, jobs=1, profile=profiler)
    result = run.execute()
    assert result.record.responses_received > 0
    return _datacenter_stats(run, result)


def _frontend_run(
    profiler: Optional[SimProfiler], bulk: bool, **observers
) -> ScenarioStats:
    from repro.cluster.datacenter import DatacenterConfig
    from repro.cluster.frontend import FrontendConfig
    from repro.cluster.sharding import ShardedDatacenterRun

    config = DatacenterConfig(
        app="memcached",
        n_servers=4,
        load_shares="uniform",
        total_rps=80_000.0,
        warmup_ns=5 * MS,
        measure_ns=30 * MS,
        drain_ns=20 * MS,
        frontend=FrontendConfig(
            n_users=5_000, spray="po2", burst_size=75,
            intra_burst_gap_ns=1_000, dispatch_latency_ns=1 * MS,
        ),
    )
    run = ShardedDatacenterRun(
        config, jobs=1, profile=profiler, bulk_datapath=bulk, **observers
    )
    result = run.execute()
    assert result.record.responses_received > 0
    return _datacenter_stats(run, result)


def frontend_bulk(profiler: Optional[SimProfiler]) -> ScenarioStats:
    """Frontend tier spraying 4 servers, bursts vectorized through the
    link/switch/NIC bulk datapath (the datacenter_1000 configuration)."""
    return _frontend_run(profiler, bulk=True)


def frontend_scalar(profiler: Optional[SimProfiler]) -> ScenarioStats:
    """Same run with the scalar per-frame datapath — pins the bulk
    speedup and guards scalar-path performance."""
    return _frontend_run(profiler, bulk=False)


def frontend_observed(profiler: Optional[SimProfiler]) -> ScenarioStats:
    """The bulk frontend run with every fleet observer on — request
    tracing (1-in-64) and the window/imbalance profiler — pinning the
    cost of full observability against ``frontend_bulk``."""
    return _frontend_run(
        profiler, bulk=True, trace_requests=64, profile_fleet=True
    )


MICRO_SUITE = BenchSuite(
    name="micro",
    description="Simulation-substrate micro-benchmarks (batched event "
    "kernel, timer re-arm churn, single-event chain, schedule_many "
    "fan-out, NIC rx path, short cluster run)",
    scenarios=(
        BenchScenario(
            "event_kernel", event_kernel, "100K events in 500 batches"
        ),
        BenchScenario(
            "cancel_churn", cancel_churn,
            "40K timer re-arms + interior/tail cancels (compaction)",
        ),
        BenchScenario(
            "chained_timers", chained_timers,
            "100K chained single events (no batching)",
        ),
        BenchScenario(
            "burst_fanout", burst_fanout,
            "50x2000 arrivals via schedule_many",
        ),
        BenchScenario(
            "nic_rx_path", nic_rx_path, "2000 packets through NIC+driver"
        ),
        BenchScenario(
            "small_cluster", small_cluster, "short Apache/ncap.cons run"
        ),
    ),
    repeats=5,
)

TELEMETRY_SUITE = BenchSuite(
    name="telemetry",
    description="Headline-experiment wall time with and without the "
    "opt-in attribution/audit observers",
    scenarios=(
        BenchScenario(
            "headline_plain", headline_plain,
            "headline quick run, no observers",
        ),
        BenchScenario(
            "headline_attributed", headline_attributed,
            "headline quick run, attribution + audit",
        ),
        BenchScenario(
            "headline_energy", headline_energy,
            "headline quick run, energy attribution + audit",
        ),
    ),
    repeats=5,
)

DATACENTER_SUITE = BenchSuite(
    name="datacenter",
    description="Sharded-fleet machinery: serial conservative-window "
    "coordination, the frontend tier over the bulk vs scalar datapath, "
    "and the fully-observed run (request tracing + fleet profiler)",
    scenarios=(
        BenchScenario(
            "datacenter_sharded", datacenter_sharded,
            "4 servers / 2 shards, serial windows",
        ),
        BenchScenario(
            "frontend_bulk", frontend_bulk,
            "frontend spray, vectorized datapath",
        ),
        BenchScenario(
            "frontend_scalar", frontend_scalar,
            "frontend spray, per-frame datapath",
        ),
        BenchScenario(
            "frontend_observed", frontend_observed,
            "frontend spray with request tracing + fleet profiler",
        ),
    ),
    repeats=3,
)

SUITES: Dict[str, BenchSuite] = {
    suite.name: suite
    for suite in (MICRO_SUITE, TELEMETRY_SUITE, DATACENTER_SUITE)
}


def get_suite(name: str) -> BenchSuite:
    try:
        return SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown bench suite {name!r}; choose from {sorted(SUITES)}"
        ) from None


__all__ = [
    "DATACENTER_SUITE",
    "MICRO_SUITE",
    "SUITES",
    "TELEMETRY_SUITE",
    "get_suite",
]
