"""Run-length presets shared by every experiment and sweep.

Lives in the harness layer (below ``repro.experiments``) so that sweep
specs can carry a preset without importing the experiment modules that
themselves import the harness.  ``repro.experiments.common`` re-exports
:class:`RunSettings` for its historical import path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.sim.units import MS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.simulation import ExperimentConfig


@dataclass(frozen=True)
class RunSettings:
    """How long each cluster run simulates.

    ``quick`` keeps full benchmark sweeps to a few minutes of wall time;
    ``full`` uses longer windows for tighter percentiles.
    """

    warmup_ns: int
    measure_ns: int
    drain_ns: int
    seed: int = 1

    @classmethod
    def quick(cls, seed: int = 1) -> "RunSettings":
        return cls(warmup_ns=20 * MS, measure_ns=150 * MS, drain_ns=80 * MS, seed=seed)

    @classmethod
    def standard(cls, seed: int = 1) -> "RunSettings":
        return cls(warmup_ns=20 * MS, measure_ns=250 * MS, drain_ns=100 * MS, seed=seed)

    @classmethod
    def full(cls, seed: int = 1) -> "RunSettings":
        return cls(warmup_ns=40 * MS, measure_ns=600 * MS, drain_ns=150 * MS, seed=seed)

    def apply_to(self, config: "ExperimentConfig") -> "ExperimentConfig":
        """A copy of ``config`` with this preset's windows and seed.

        The inverse convenience of ``ExperimentConfig.from_settings(...)``
        for call sites that already hold a config.
        """
        return replace(
            config,
            warmup_ns=self.warmup_ns,
            measure_ns=self.measure_ns,
            drain_ns=self.drain_ns,
            seed=self.seed,
        )
