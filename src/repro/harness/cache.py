"""On-disk result cache keyed by config hash.

One JSON file per expanded config under the cache directory; a re-run of
a sweep only simulates the points whose configs actually changed.  Every
read is validated — wrong schema, corrupt JSON, or a key/hash mismatch is
treated as a miss (and the stale entry is ignored), never as an error.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from typing import Optional

from repro.harness.record import RECORD_SCHEMA_VERSION, ResultRecord

logger = logging.getLogger(__name__)

#: Default cache location (relative to the working directory); the CLI
#: and ``REPRO_CACHE_DIR`` can point somewhere else.
DEFAULT_CACHE_DIR = ".repro-cache"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    return os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


#: (abspath(cache_dir), old_schema_version) pairs already warned about in
#: this process.  Sweeps construct a ResultCache per runner (and every
#: stale entry re-triggers the check), so a per-instance flag still spams
#: one warning per point; the dedupe must be process-wide.
_SCHEMA_WARNED: set = set()


class ResultCache:
    """A directory of ``<config_hash>.json`` result records."""

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory or default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[ResultRecord]:
        """The cached record for ``key``, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            if isinstance(data, dict) and data.get("schema") != RECORD_SCHEMA_VERSION:
                self._warn_schema_invalidation(data.get("schema"))
            record = ResultRecord.from_json_dict(data)
        except (OSError, ValueError, TypeError):
            self.misses += 1
            return None
        if record.config_hash != key:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def _warn_schema_invalidation(self, old_version: object) -> None:
        """Log once per (cache dir, old version) per process how many
        entries a schema bump invalidated."""
        dedupe_key = (os.path.abspath(self.directory), old_version)
        if dedupe_key in _SCHEMA_WARNED:
            return
        _SCHEMA_WARNED.add(dedupe_key)
        stale = 0
        try:
            for name in os.listdir(self.directory):
                if not name.endswith(".json") or name.startswith("."):
                    continue
                try:
                    with open(
                        os.path.join(self.directory, name), "r", encoding="utf-8"
                    ) as fh:
                        data = json.load(fh)
                except (OSError, ValueError):
                    continue
                if isinstance(data, dict) and data.get("schema") != RECORD_SCHEMA_VERSION:
                    stale += 1
        except OSError:
            pass
        logger.warning(
            "result cache %s: %d entr%s from older record schemas "
            "(first seen: v%s, current is v%d); they will be re-simulated",
            self.directory,
            stale,
            "y" if stale == 1 else "ies",
            old_version,
            RECORD_SCHEMA_VERSION,
        )

    def put(self, record: ResultRecord) -> str:
        """Persist ``record`` atomically; returns the written path."""
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(record.config_hash)
        payload = json.dumps(record.to_json_dict(), sort_keys=True, indent=1)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stores += 1
        return path
