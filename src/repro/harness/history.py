"""Bench-history regression watch: BENCH trajectories, not point checks.

The PR 5 ``repro bench --check`` gate compares one fresh payload against
one committed baseline — a point comparison.  This module turns the
committed ``BENCH_*.json`` trajectory (repo root + ``benchmarks/
baselines/``) plus any newly produced payloads into per-scenario *time
series*, ordered by each payload's ``created_unix`` stamp, then flags
step changes between consecutive points against the same relative
tolerances the point gate uses.  The result is an observable trajectory:
*"cancel_churn wall time stepped +2.1× between the PR 5 and PR 6
payloads"* is read off the series, not reconstructed from git
archaeology.

Pure observer: history never touches configs, caches, or payloads — it
only reads them.  Exposed as ``repro history [paths...]`` and rendered
as a trend panel by :func:`repro.viz.frontier.render_trend_page`.
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.bench import DEFAULT_TOLERANCES, load_bench_json
from repro.metrics.report import format_table

#: Trend metrics tracked per scenario, with flagging direction:
#: +1 flags increases (a cost), -1 flags decreases (a capability).
TREND_METRICS: Tuple[Tuple[str, int], ...] = (
    ("wall_s.min", +1),
    ("wall_s.median", +1),
    ("events_per_sec", -1),
    ("peak_rss_bytes", +1),
)

#: Fallback relative tolerance for metrics without a DEFAULT_TOLERANCES
#: entry (events/s mirrors the wall gate; RSS is noisy across machines).
_EXTRA_TOLERANCES: Dict[str, float] = {
    "events_per_sec": 0.18,
    "peak_rss_bytes": 0.50,
}


@dataclass
class TrendPoint:
    """One payload's contribution to a scenario series."""

    created_unix: float
    value: float
    source: str  # payload file path (or caller-supplied label)


@dataclass
class TrendSeries:
    """One (suite, scenario, metric) trajectory, oldest first."""

    suite: str
    scenario: str
    metric: str
    points: List[TrendPoint] = field(default_factory=list)

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.suite, self.scenario, self.metric)


@dataclass
class StepFlag:
    """A tolerance-breaking change between consecutive trajectory points."""

    suite: str
    scenario: str
    metric: str
    before: TrendPoint
    after: TrendPoint
    ratio: float
    tolerance: float

    @property
    def direction(self) -> str:
        return "regressed" if self.ratio > 1.0 else "improved"

    def describe(self) -> str:
        return (
            f"{self.suite}/{self.scenario} {self.metric} {self.direction} "
            f"{self.ratio:.2f}x ({self.before.value:.4g} -> "
            f"{self.after.value:.4g}; tol {self.tolerance:.2f}) "
            f"[{os.path.basename(self.before.source)} -> "
            f"{os.path.basename(self.after.source)}]"
        )


@dataclass
class BenchHistory:
    """All trajectories parsed from a set of BENCH payload files."""

    series: List[TrendSeries] = field(default_factory=list)
    sources: List[str] = field(default_factory=list)
    #: Files that failed schema validation, with the reason (surfaced,
    #: never silently dropped — a corrupt committed payload is a finding).
    rejected: List[Tuple[str, str]] = field(default_factory=list)

    def suites(self) -> List[str]:
        return sorted({s.suite for s in self.series})

    def get(self, suite: str, scenario: str, metric: str) -> TrendSeries:
        for series in self.series:
            if series.key == (suite, scenario, metric):
                return series
        raise KeyError(f"no series {(suite, scenario, metric)!r}")


def discover_bench_files(root: str = ".") -> List[str]:
    """Every committed BENCH payload under a repo root.

    Repo-root ``BENCH_*.json`` files are the most recent run of each
    suite; ``benchmarks/baselines/*.json`` are the older gate anchors —
    together they are the committed trajectory.
    """
    paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    paths += sorted(
        glob.glob(os.path.join(root, "benchmarks", "baselines", "*.json"))
    )
    return paths


def _metric_value(entry: Dict, metric: str) -> Optional[float]:
    value = entry
    for part in metric.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return float(value) if isinstance(value, (int, float)) else None


def load_bench_history(paths: Sequence[str]) -> BenchHistory:
    """Parse payload files into per-(suite, scenario, metric) series.

    Series points are ordered by ``created_unix`` (ties broken by path,
    so the ordering is deterministic across filesystems).
    """
    history = BenchHistory()
    by_key: Dict[Tuple[str, str, str], List[TrendPoint]] = {}
    loaded: List[Tuple[float, str, Dict]] = []
    for path in paths:
        try:
            payload = load_bench_json(path)
        except (OSError, ValueError) as exc:
            history.rejected.append((path, str(exc)))
            continue
        history.sources.append(path)
        loaded.append((float(payload.get("created_unix", 0.0)), path, payload))
    loaded.sort(key=lambda item: (item[0], item[1]))
    for created, path, payload in loaded:
        suite = payload["suite"]
        for scenario, entry in sorted(payload["scenarios"].items()):
            for metric, _ in TREND_METRICS:
                value = _metric_value(entry, metric)
                if value is None:
                    continue
                by_key.setdefault((suite, scenario, metric), []).append(
                    TrendPoint(created_unix=created, value=value, source=path)
                )
    for key in sorted(by_key):
        suite, scenario, metric = key
        history.series.append(
            TrendSeries(suite, scenario, metric, by_key[key])
        )
    return history


def metric_tolerance(
    metric: str, tolerances: Optional[Dict[str, float]] = None
) -> float:
    merged = {**DEFAULT_TOLERANCES, **_EXTRA_TOLERANCES, **(tolerances or {})}
    return merged.get(metric, 0.30)


def flag_steps(
    history: BenchHistory,
    tolerances: Optional[Dict[str, float]] = None,
    tolerance_scale: float = 1.0,
) -> List[StepFlag]:
    """Tolerance-breaking steps between consecutive points of each series.

    A wall/RSS *increase* or an events/s *decrease* beyond ``1 + tol``
    (relative) is flagged.  Improvements beyond the same band are flagged
    too — with ``direction == "improved"`` — so trajectory reports name
    the wins as well as the regressions; gating callers filter on
    direction.
    """
    flags: List[StepFlag] = []
    directions = dict(TREND_METRICS)
    for series in history.series:
        tol = metric_tolerance(series.metric, tolerances) * tolerance_scale
        sign = directions.get(series.metric, +1)
        for before, after in zip(series.points, series.points[1:]):
            if before.value <= 0:
                continue
            ratio = after.value / before.value
            # Normalize so ratio > 1 always means "got worse".
            worse = ratio if sign > 0 else (1.0 / ratio if ratio else 0.0)
            if worse > 1.0 + tol or worse < 1.0 / (1.0 + tol):
                flags.append(
                    StepFlag(
                        suite=series.suite,
                        scenario=series.scenario,
                        metric=series.metric,
                        before=before,
                        after=after,
                        ratio=worse,
                        tolerance=tol,
                    )
                )
    flags.sort(
        key=lambda f: (-f.ratio, f.suite, f.scenario, f.metric)
    )
    return flags


def format_history_report(
    history: BenchHistory,
    flags: Optional[List[StepFlag]] = None,
    title: Optional[str] = None,
) -> str:
    """Trajectory summary: newest value + span per series, then flags."""
    if flags is None:
        flags = flag_steps(history)
    rows = []
    for series in history.series:
        first, last = series.points[0], series.points[-1]
        trend = last.value / first.value if first.value else float("nan")
        rows.append([
            series.suite,
            series.scenario,
            series.metric,
            len(series.points),
            f"{first.value:.4g}",
            f"{last.value:.4g}",
            f"{trend:.2f}x",
        ])
    out = format_table(
        ["suite", "scenario", "metric", "runs", "oldest", "newest", "span"],
        rows,
        title=title or (
            f"Bench history — {len(history.sources)} payloads, "
            f"{len(history.series)} series"
        ),
    )
    if history.rejected:
        out += "\n\nrejected payloads:"
        for path, reason in history.rejected:
            out += f"\n  {path}: {reason}"
    if flags:
        out += f"\n\nstep changes ({len(flags)}):"
        for flag in flags:
            out += f"\n  {flag.describe()}"
    else:
        out += "\n\nno step changes beyond tolerance"
    return out
