"""Serializable per-run results.

A :class:`ResultRecord` is the flat, picklable projection of an
:class:`~repro.cluster.simulation.ExperimentResult`: latency percentiles,
windowed energy, power, C-state entry counts, and NCAP counters — and no
live ``server``/``trace``/``Simulator`` references, so records cross
process-pool boundaries, serialize to JSON byte-for-byte reproducibly,
and can be cached on disk between runs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import TYPE_CHECKING, Dict

from repro.cpu.energy import EnergyReport
from repro.metrics.latency import LatencyStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.simulation import ExperimentResult

#: Bump when the record's fields change; cached records from other
#: versions are discarded instead of misread.
#: v2: added ``counters`` — the full namespaced stats-registry snapshot.
#: v3: added ``attribution`` — flattened critical-path tail-blame report.
#: v4: added ``timeseries`` — the flight recorder's serialized bundle.
#: v5: added ``profile`` — the simulator self-profile payload.
#: v6: added ``fleet`` — fleet observability payload (merged cross-shard
#:     request traces and sampling metadata; sim-time data only).
#: v7: added ``energy_attribution`` — telescoping energy decomposition +
#:     governor-miss accounting (serialized EnergyAttribution).
RECORD_SCHEMA_VERSION = 7


@dataclass
class ResultRecord:
    """One sweep point's results, flattened."""

    config_hash: str
    app: str
    policy: str
    target_rps: float
    seed: int
    sla_ns: int
    meets_sla: bool
    requests_sent: int
    responses_received: int
    incomplete: int
    achieved_rps: float
    avg_power_w: float
    latency_count: int
    mean_ns: float
    p50_ns: float
    p90_ns: float
    p95_ns: float
    p99_ns: float
    max_ns: float
    energy_j: float
    residency_ns: Dict[str, int] = field(default_factory=dict)
    energy_by_mode_j: Dict[str, float] = field(default_factory=dict)
    cstate_entries: Dict[str, int] = field(default_factory=dict)
    ncap_stats: Dict[str, int] = field(default_factory=dict)
    #: Full stats-registry snapshot (``nic.rx.frames``, ``irq.hardirqs``,
    #: ``cpuidle.c6.entries``, …) — every counter the server accumulated.
    counters: Dict[str, float] = field(default_factory=dict)
    #: Flattened critical-path attribution report (``mean.wake_ns``,
    #: ``p99.wake_ramp_share``, …) when the run attached an
    #: :class:`~repro.analysis.attribution.AttributionSink`; empty otherwise.
    attribution: Dict[str, float] = field(default_factory=dict)
    #: Serialized flight-recorder capture
    #: (:meth:`~repro.telemetry.recorder.TimeseriesBundle.to_json_dict`)
    #: when the run was built with ``record_timeseries=``; empty
    #: otherwise.  Rebuild with :meth:`timeseries_bundle`.
    timeseries: Dict[str, object] = field(default_factory=dict)
    #: Serialized simulator self-profile
    #: (:meth:`~repro.profiling.profiler.LoopProfile.to_json_dict`) when
    #: the run was built with ``profile=``; empty otherwise.  Rebuild
    #: with :meth:`loop_profile`.
    profile: Dict[str, object] = field(default_factory=dict)
    #: Fleet observability payload for sharded datacenter runs: the
    #: merged cross-shard request-trace bundle
    #: (:meth:`~repro.telemetry.tracing.FleetTraceBundle.to_json_dict`)
    #: under ``"trace"`` when the run was built with ``trace_requests=``;
    #: empty otherwise.  Sim-time data only — byte-identical across shard
    #: count, pool size and window size.  Rebuild with
    #: :meth:`fleet_trace_bundle`.
    fleet: Dict[str, object] = field(default_factory=dict)
    #: Serialized energy decomposition + governor-miss accounting
    #: (:meth:`~repro.analysis.energy.EnergyAttribution.to_json_dict`)
    #: when the run was built with ``energy_attribution=True``; empty
    #: otherwise.  Fleet runs merge per-server payloads in server-index
    #: order, so the field is byte-identical across shard count and pool
    #: size.  Rebuild with :meth:`energy_attribution_report`.
    energy_attribution: Dict[str, object] = field(default_factory=dict)
    #: True when the runner served this record from the on-disk cache.
    #: Not part of the run's identity: excluded from equality and JSON.
    from_cache: bool = field(default=False, compare=False)

    @classmethod
    def from_result(
        cls, result: "ExperimentResult", config_hash: str, seed: int
    ) -> "ResultRecord":
        latency = result.latency
        energy = result.energy
        return cls(
            config_hash=config_hash,
            app=result.app,
            policy=result.policy_name,
            target_rps=result.target_rps,
            seed=seed,
            sla_ns=result.sla_ns,
            meets_sla=result.meets_sla,
            requests_sent=result.requests_sent,
            responses_received=result.responses_received,
            incomplete=result.incomplete,
            achieved_rps=result.achieved_rps,
            avg_power_w=result.avg_power_w,
            latency_count=latency.count,
            mean_ns=latency.mean_ns,
            p50_ns=latency.p50_ns,
            p90_ns=latency.p90_ns,
            p95_ns=latency.p95_ns,
            p99_ns=latency.p99_ns,
            max_ns=latency.max_ns,
            energy_j=energy.energy_j,
            residency_ns=dict(energy.residency_ns),
            energy_by_mode_j=dict(energy.energy_by_mode_j),
            cstate_entries=dict(result.cstate_entries),
            ncap_stats=dict(result.ncap_stats),
            counters=dict(result.counters),
            attribution=(
                result.attribution.to_flat_dict()
                if result.attribution is not None
                else {}
            ),
            timeseries=(
                result.timeseries.to_json_dict()
                if result.timeseries is not None
                else {}
            ),
            profile=(
                result.profile.to_json_dict()
                if result.profile is not None
                else {}
            ),
            energy_attribution=(
                result.energy_attribution.to_json_dict()
                if result.energy_attribution is not None
                else {}
            ),
        )

    # -- views ----------------------------------------------------------

    @property
    def latency(self) -> LatencyStats:
        """The percentile summary, rebuilt as a :class:`LatencyStats`."""
        return LatencyStats(
            count=self.latency_count,
            mean_ns=self.mean_ns,
            p50_ns=self.p50_ns,
            p90_ns=self.p90_ns,
            p95_ns=self.p95_ns,
            p99_ns=self.p99_ns,
            max_ns=self.max_ns,
        )

    @property
    def energy(self) -> EnergyReport:
        """The windowed energy, rebuilt as an :class:`EnergyReport`."""
        return EnergyReport(
            energy_j=self.energy_j,
            residency_ns=dict(self.residency_ns),
            energy_by_mode_j=dict(self.energy_by_mode_j),
        )

    @property
    def normalized_latency(self) -> Dict[str, float]:
        return self.latency.normalized_to(self.sla_ns)

    def timeseries_bundle(self):
        """The flight-recorder capture, rebuilt as a
        :class:`~repro.telemetry.recorder.TimeseriesBundle` (None when the
        run recorded no timeseries)."""
        if not self.timeseries:
            return None
        from repro.telemetry.recorder import TimeseriesBundle

        return TimeseriesBundle.from_json_dict(self.timeseries)

    def fleet_trace_bundle(self):
        """The merged cross-shard request traces, rebuilt as a
        :class:`~repro.telemetry.tracing.FleetTraceBundle` (None when the
        run traced no requests)."""
        if not self.fleet.get("trace"):
            return None
        from repro.telemetry.tracing import FleetTraceBundle

        return FleetTraceBundle.from_json_dict(self.fleet["trace"])

    def energy_attribution_report(self):
        """The energy decomposition, rebuilt as an
        :class:`~repro.analysis.energy.EnergyAttribution` (None when the
        run carried no energy attribution)."""
        if not self.energy_attribution:
            return None
        from repro.analysis.energy import EnergyAttribution

        return EnergyAttribution.from_json_dict(self.energy_attribution)

    def loop_profile(self):
        """The simulator self-profile, rebuilt as a
        :class:`~repro.profiling.profiler.LoopProfile` (None when the run
        was not profiled)."""
        if not self.profile:
            return None
        from repro.profiling.profiler import LoopProfile

        return LoopProfile.from_json_dict(self.profile)

    # -- JSON round-trip ------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        data = asdict(self)
        del data["from_cache"]
        data["schema"] = RECORD_SCHEMA_VERSION
        return data

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "ResultRecord":
        data = dict(data)
        schema = data.pop("schema", None)
        if schema != RECORD_SCHEMA_VERSION:
            raise ValueError(
                f"result record schema {schema!r} != {RECORD_SCHEMA_VERSION}"
            )
        known = {f.name for f in fields(cls) if f.name != "from_cache"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown result record fields: {sorted(unknown)}")
        return cls(**data)
