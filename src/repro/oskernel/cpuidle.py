"""cpuidle driver and C-state governors (Section 2.1 of the paper).

Two governors, matching Linux:

- :class:`MenuGovernor` (the default) — records how long each core's recent
  idle periods lasted, predicts the next one with Linux's
  ``get_typical_interval``-style outlier rejection, and picks the deepest
  C-state whose target residency fits the prediction and whose exit latency
  respects the latency limit.
- :class:`LadderGovernor` — starts shallow and promotes to a deeper state
  when the last residency was long enough, demotes on early wake-ups.

The driver re-evaluates while a core stays idle, as the Linux idle loop
does: a core parked in C0 (prediction too short for any state) is
re-examined every ``repoll_ns``, and a core sleeping shallow is promoted
to a deeper state once it has out-slept the prediction — modelling the
tick-driven re-entry of the real idle loop.  Without this, one burst of
short idle periods would poison the history and keep cores polling through
multi-millisecond gaps, which is not what the paper observes (cores reach
C6 between bursts, Figure 4(b)).

NCAP hooks: :meth:`CpuidleDriver.disable` stops *new* C-state entries
during a detected request burst (IT_HIGH); :meth:`CpuidleDriver.enable`
re-arms the governor on the first IT_LOW (Section 4.3).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from repro.cpu.core import Core, CoreState
from repro.cpu.cstates import CState, CStateTable
from repro.cpu.power import PowerMode
from repro.sim.units import MS, US
from repro.telemetry import GovernorDecision, GovernorMiss, Telemetry, ensure_telemetry


class _HistoryGovernorBase:
    """Shared idle-duration observation machinery."""

    def __init__(self, cstates: CStateTable, history_len: int = 8):
        self.cstates = cstates
        self._history: Dict[int, Deque[int]] = {}
        self._seen_periods: Dict[int, int] = {}
        self._history_len = history_len

    def _observe(self, core: Core) -> Deque[int]:
        history = self._history.get(core.core_id)
        if history is None:
            history = deque(maxlen=self._history_len)
            self._history[core.core_id] = history
            self._seen_periods[core.core_id] = 0
        completed = core.idle_periods_completed
        if completed > self._seen_periods[core.core_id]:
            # Only the most recent period is new information (select() is
            # invoked on every idle entry, so at most one period elapsed).
            history.append(core.last_idle_duration_ns)
            self._seen_periods[core.core_id] = completed
        return history


class MenuGovernor(_HistoryGovernorBase):
    """Linux menu governor, simplified to its history predictor."""

    name = "menu"

    def __init__(
        self,
        cstates: CStateTable,
        latency_limit_ns: int = 10**12,
        history_len: int = 8,
        initial_prediction_ns: int = 1 * MS,
        telemetry: Optional[Telemetry] = None,
    ):
        super().__init__(cstates, history_len)
        self.latency_limit_ns = latency_limit_ns
        self.initial_prediction_ns = initial_prediction_ns
        self.telemetry = ensure_telemetry(telemetry)
        self._selections = self.telemetry.counter(f"governor.{self.name}.selections")
        self._decision_probe = self.telemetry.probe("governor.decision")

    @property
    def selections(self) -> int:
        return int(self._selections.value)

    def predict_idle_ns(self, core: Core, already_idle_ns: int = 0) -> int:
        """Predicted remaining length of the idle period starting now.

        ``already_idle_ns`` — how long the core has been idle so far; a core
        that has out-slept its history is predicted to keep idling (idle
        periods are heavy-tailed).
        """
        history = self._observe(core)
        if not history:
            predicted = self.initial_prediction_ns
        else:
            predicted = self._typical_interval(history)
        return max(predicted, already_idle_ns)

    @staticmethod
    def _typical_interval(samples) -> int:
        """Average with iterative rejection of >2x-average outliers, after
        Linux's ``get_typical_interval``."""
        values = list(samples)
        for _ in range(3):
            if not values:
                return 0
            avg = sum(values) / len(values)
            kept = [v for v in values if v <= 2 * avg]
            if len(kept) == len(values):
                return int(avg)
            values = kept
        return int(sum(values) / len(values)) if values else 0

    def select(self, core: Core, already_idle_ns: int = 0) -> Optional[CState]:
        """Pick a C-state for an idle core (None = stay polling in C0)."""
        self._selections.inc()
        predicted = self.predict_idle_ns(core, already_idle_ns)
        choice = self.cstates.deepest_allowed(predicted, self.latency_limit_ns)
        if self._decision_probe.enabled:
            self._decision_probe.emit(
                GovernorDecision(
                    core.sim.now,
                    self.name,
                    choice.index if choice is not None else 0,
                    float(predicted),
                    core_id=core.core_id,
                )
            )
        return choice


class LadderGovernor(_HistoryGovernorBase):
    """Step-wise promotion/demotion governor (Linux ladder)."""

    name = "ladder"

    def __init__(
        self,
        cstates: CStateTable,
        history_len: int = 1,
        telemetry: Optional[Telemetry] = None,
    ):
        super().__init__(cstates, history_len)
        self._depth: Dict[int, int] = {}
        self.telemetry = ensure_telemetry(telemetry)
        self._selections = self.telemetry.counter(f"governor.{self.name}.selections")
        self._decision_probe = self.telemetry.probe("governor.decision")

    @property
    def selections(self) -> int:
        return int(self._selections.value)

    def select(self, core: Core, already_idle_ns: int = 0) -> Optional[CState]:
        self._selections.inc()
        history = self._observe(core)
        depth = self._depth.get(core.core_id, 0)
        if history:
            last = history[-1]
            current = self.cstates[min(depth, len(self.cstates) - 1)]
            if last >= current.target_residency_ns:
                depth = min(depth + 1, len(self.cstates) - 1)
            elif last < current.exit_latency_ns * 2:
                depth = max(depth - 1, 0)
        self._depth[core.core_id] = depth
        choice = self.cstates[depth]
        if self._decision_probe.enabled:
            self._decision_probe.emit(
                GovernorDecision(
                    core.sim.now,
                    self.name,
                    choice.index,
                    float(already_idle_ns),
                    core_id=core.core_id,
                )
            )
        return choice


class CpuidleDriver:
    """Applies a governor's choice whenever a core goes idle, and keeps
    re-evaluating while the core stays idle.

    Wire :meth:`on_core_idle` into ``Scheduler.idle_hook``.
    """

    def __init__(
        self,
        governor,
        repoll_ns: int = 30 * US,
        promotion: bool = True,
        telemetry: Optional[Telemetry] = None,
        stats_prefix: str = "cpuidle",
    ):
        self.governor = governor
        self.enabled = True
        self.repoll_ns = repoll_ns
        self.promotion = promotion
        self.telemetry = ensure_telemetry(telemetry)
        stats = self.telemetry.scope(stats_prefix)
        self._entries = stats.counter("entries")
        self._promotions = stats.counter("promotions")
        self._suppressed = stats.counter("suppressed")

    @property
    def entries(self) -> int:
        """C-state entries this driver initiated (not counting promotions)."""
        return int(self._entries.value)

    @property
    def promotions(self) -> int:
        return int(self._promotions.value)

    @property
    def suppressed(self) -> int:
        """Idle notifications ignored while NCAP disabled the governor."""
        return int(self._suppressed.value)

    def on_core_idle(self, core: Core) -> None:
        if not self.enabled:
            self._suppressed.inc()
            return
        self._consider(core)

    # -- internals ----------------------------------------------------------

    def _consider(self, core: Core) -> None:
        sim = core.sim
        token = core.idle_since
        already = sim.now - token
        choice = self.governor.select(core, already_idle_ns=already)
        if choice is None:
            # Stay polling in C0 and re-examine shortly (idle-loop
            # re-entry) — but only while a longer elapsed idle could still
            # change the verdict.  Once the core has out-idled the deepest
            # state's residency and the governor still declines (e.g. a
            # tight latency limit), nothing will ever qualify: stop.
            if already <= self.governor.cstates.deepest.target_residency_ns:
                sim.schedule(self.repoll_ns, self._recheck_idle, core, token)
            return
        self._entries.inc()
        core.enter_sleep(choice)
        self._arm_promotion(core, token, choice)

    def _recheck_idle(self, core: Core, token: int) -> None:
        if not self.enabled:
            return
        if core.state is not CoreState.IDLE or core.idle_since != token:
            return  # the idle period we were watching ended
        self._consider(core)

    def _arm_promotion(self, core: Core, token: int, current: CState) -> None:
        """Schedule exactly one promotion check per deeper level, at the
        moment the elapsed idle time alone would justify that level."""
        if not self.promotion:
            return
        deeper = self._next_deeper(current)
        if deeper is None:
            return
        check_at = token + deeper.target_residency_ns + 1
        sim = core.sim
        if check_at <= sim.now:
            check_at = sim.now
        sim.schedule_at(check_at, self._promotion_check, core, token)

    def _promotion_check(self, core: Core, token: int) -> None:
        if not self.enabled:
            return
        if core.state is not CoreState.SLEEP or core.idle_since != token:
            return
        already = core.sim.now - token
        choice = self.governor.select(core, already_idle_ns=already)
        current = core.current_cstate
        assert current is not None
        if choice is not None and choice.index > current.index:
            self._promotions.inc()
            core.promote_sleep(choice)
            self._arm_promotion(core, token, choice)
        # Otherwise the governor declined (latency limit): give up on this
        # idle period — elapsed time can only grow, but the limit is fixed.

    def _next_deeper(self, state: CState) -> Optional[CState]:
        states = list(self.governor.cstates)
        for i, s in enumerate(states):
            if s.index == state.index:
                return states[i + 1] if i + 1 < len(states) else None
        return None

    # -- NCAP hooks ------------------------------------------------------------

    def disable(self) -> None:
        """Stop entering C-states (NCAP IT_HIGH action)."""
        self.enabled = False

    def enable(self) -> None:
        """Re-arm C-state entry (NCAP first IT_LOW action)."""
        self.enabled = True


def build_idle_accounting(
    cstates: CStateTable,
    governor=None,
    telemetry: Optional[Telemetry] = None,
) -> "IdleAccounting":
    """Accounting for a node: its governor's name and latency limit when
    cpuidle is active, the ``"none"`` pseudo-governor (cores poll in C0,
    every long idle period grades ``below``) otherwise."""
    if governor is None:
        name, limit = "none", 10**12
    else:
        name = governor.name
        limit = getattr(governor, "latency_limit_ns", 10**12)
    return IdleAccounting(cstates, name, limit, telemetry=telemetry)


#: Meter modes a core can occupy while idle, shallow to deep.  ``"idle"``
#: is C0 polling (:attr:`~repro.cpu.power.PowerMode.IDLE_POLL`).
_IDLE_MODE_KEYS = ("idle", "C1", "C3", "C6")

#: The "chose C0 / oracle says C0" pseudo-state name in verdicts and
#: per-state floor breakdowns.
C0_NAME = "C0"


class IdleAccounting:
    """Linux-cpuidle-style governor decision accounting for one node.

    Attached to a node's cores via :meth:`attach` (observer pattern: the
    per-core ``on_idle_end`` hook, one attribute check when disabled).  On
    every completed idle period it

    - books the idle-mode energy/residency the meter accumulated since the
      previous booking (deltas of the meter's cumulative per-mode dicts,
      so the sum over bookings telescopes exactly to the meter totals),
    - splits that energy into the *oracle floor* — what a perfect C-state
      choice for the realized residency would have cost — and the
      *wasted-shallow* remainder, and
    - grades the chosen state (deepest residency reached) against the
      oracle into ``above`` / ``below`` / ``hit`` counters per core, with
      the ns of excess exit latency (above) and wasted joules (below)
      each miss cost.

    :meth:`snapshot` forces a partial booking on every attached core, so
    cumulative totals taken at window boundaries diff exactly — the hook
    the sharded fleet runs use to merge byte-identically.  Two documented
    approximations: an idle period split by a DVFS ``stall()`` (no
    ``_start`` in between) books its pre-stall energy at the *next*
    booking, and a period shorter than the C-state's entry latency shows
    no sleep-mode residency, so its chosen state is inferred as C0.
    Energy is conserved exactly in both cases; only the decision grading
    of those rare periods is approximate.
    """

    def __init__(
        self,
        cstates: CStateTable,
        governor: str,
        latency_limit_ns: int = 10**12,
        telemetry: Optional[Telemetry] = None,
    ):
        self.cstates = cstates
        self.governor = governor
        self.latency_limit_ns = latency_limit_ns
        self.decisions: Dict[int, Dict[str, int]] = {}
        self.above_ns = 0
        self.below_j = 0.0
        self.floor_j_by_state: Dict[str, float] = {}
        self.floor_ns_by_state: Dict[str, int] = {}
        self.wasted_shallow_j = 0.0
        self._last_e: Dict[int, Dict[str, float]] = {}
        self._last_r: Dict[int, Dict[str, int]] = {}
        self._cores: List[Core] = []
        telemetry = ensure_telemetry(telemetry)
        self._miss_probe = telemetry.probe("cpuidle.verdict")

    def attach(self, cores: Iterable[Core]) -> None:
        for core in cores:
            core.on_idle_end = self._on_idle_end
            self._cores.append(core)

    # -- booking -----------------------------------------------------------

    def _on_idle_end(self, core: Core, realized_ns: int) -> None:
        if realized_ns == 0:
            # take_next zero-length handoff: the governor never ran, the
            # meter never left RUN — nothing to grade or book.
            return
        self._book(core, realized_ns, classify=True)

    def _book(self, core: Core, realized_ns: int, classify: bool) -> None:
        meter = core.meter
        meter.sync()
        core_id = core.core_id
        last_e = self._last_e.get(core_id)
        if last_e is None:
            last_e = self._last_e[core_id] = {}
            self._last_r[core_id] = {}
        last_r = self._last_r[core_id]
        idle_e = 0.0
        idle_ns = 0
        chosen: Optional[CState] = None
        for key in _IDLE_MODE_KEYS:
            cur_e = meter.energy_by_mode_j.get(key, 0.0)
            cur_r = meter.residency_ns.get(key, 0)
            de = cur_e - last_e.get(key, 0.0)
            dr = cur_r - last_r.get(key, 0)
            last_e[key] = cur_e
            last_r[key] = cur_r
            if dr > 0 and key != "idle":
                chosen = self.cstates.by_name(key)
            idle_e += de
            idle_ns += dr
        if idle_ns == 0 and idle_e == 0.0 and not classify:
            return
        package = core.package
        oracle = self.cstates.deepest_allowed(realized_ns, self.latency_limit_ns)
        oracle_mode = (
            PowerMode.IDLE_POLL if oracle is None else Core._sleep_mode(oracle)
        )
        oracle_power_w = package.power_model.core_power_w(
            oracle_mode, package.voltage, package.frequency_hz
        )
        floor_j = min(idle_e, oracle_power_w * idle_ns * 1e-9)
        wasted_j = idle_e - floor_j
        state_name = C0_NAME if oracle is None else oracle.name
        self.floor_j_by_state[state_name] = (
            self.floor_j_by_state.get(state_name, 0.0) + floor_j
        )
        self.floor_ns_by_state[state_name] = (
            self.floor_ns_by_state.get(state_name, 0) + idle_ns
        )
        self.wasted_shallow_j += wasted_j
        if not classify:
            return
        counts = self.decisions.get(core_id)
        if counts is None:
            counts = self.decisions[core_id] = {"above": 0, "below": 0, "hit": 0}
        chosen_index = chosen.index if chosen is not None else 0
        oracle_index = oracle.index if oracle is not None else 0
        cost_ns = 0
        cost_j = 0.0
        if chosen_index > oracle_index:
            verdict = "above"
            assert chosen is not None
            cost_ns = chosen.exit_latency_ns - (
                oracle.exit_latency_ns if oracle is not None else 0
            )
            self.above_ns += cost_ns
        elif chosen_index < oracle_index:
            verdict = "below"
            cost_j = wasted_j
            self.below_j += cost_j
        else:
            verdict = "hit"
        counts[verdict] += 1
        if self._miss_probe.enabled:
            self._miss_probe.emit(
                GovernorMiss(
                    core.sim.now,
                    self.governor,
                    core_id,
                    chosen.name if chosen is not None else C0_NAME,
                    state_name,
                    verdict,
                    realized_ns,
                    cost_ns=cost_ns,
                    cost_j=cost_j,
                )
            )

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Force a partial booking on every attached core and return a
        deep copy of the cumulative totals (plain data, picklable).

        A straddling idle period's energy-so-far is booked against the
        oracle for its elapsed-so-far duration (no decision is graded —
        the period has not ended).  Taken at window start and end, the
        totals diff exactly: every joule the meters accumulated inside
        the window lands in exactly one snapshot delta.
        """
        for core in self._cores:
            if core.state in (CoreState.IDLE, CoreState.SLEEP, CoreState.WAKING):
                elapsed = core.sim.now - core.idle_since
            else:
                elapsed = 0
            self._book(core, elapsed, classify=False)
        return self.totals()

    def totals(self) -> Dict[str, object]:
        """Cumulative accounting state as plain data (no booking forced)."""
        return {
            "governor": self.governor,
            "decisions": {
                str(core_id): dict(counts)
                for core_id, counts in sorted(self.decisions.items())
            },
            "above_ns": self.above_ns,
            "below_j": self.below_j,
            "floor_j_by_state": dict(self.floor_j_by_state),
            "floor_ns_by_state": dict(self.floor_ns_by_state),
            "wasted_shallow_j": self.wasted_shallow_j,
        }
