"""cpufreq driver and P-state governors (Section 2.1 of the paper).

The Linux kernel's static policies — ``performance`` (always P0),
``powersave`` (always the deepest P-state), ``userspace`` (pinned by the
user) — and the dynamic ``ondemand`` governor, which samples core
utilization every invocation period (10 ms by default; the paper recompiles
the kernel to allow 1 ms for Figure 2) and retunes the shared P-state.

Every ondemand invocation executes real kernel cycles on its housekeeping
core, and every P-state change stalls all cores for the PLL relock — the
two overheads that make short invocation periods counterproductive
(Figure 2) and late reactions unavoidable (Figure 4).

NCAP hooks: :meth:`CpufreqDriver.boost_to_max` is the fast path called from
the NIC interrupt handler, and :meth:`OndemandGovernor.hold` suppresses the
governor for one invocation period after an NCAP decision (Section 4.3).
"""

from __future__ import annotations

from typing import List, Optional

from repro.cpu.package import ClockDomain
from repro.oskernel.irq import IRQController
from repro.oskernel.timers import PeriodicKernelTask
from repro.sim.kernel import Simulator
from repro.sim.units import MS
from repro.telemetry import GovernorDecision


class CpufreqDriver:
    """Kernel interface for requesting P-state changes on one package.

    Supports a *performance cap* (``scaling_max_freq`` in Linux terms): a
    shallowest-allowed P-state index.  Requests for faster states are
    clamped to the cap — the hook Pegasus/TimeTrader-style latency-slack
    controllers use (the paper's Section 7 pointer to [12, 34]).
    """

    def __init__(self, sim: Simulator, package: ClockDomain):
        self._sim = sim
        self.package = package
        self.telemetry = package.telemetry
        self._requests = self.telemetry.counter("cpufreq.requests")
        self._cap_index: int = 0  # 0 = no cap (P0 allowed)

    @property
    def requests(self) -> int:
        """P-state change requests across the package's telemetry scope."""
        return int(self._requests.value)

    @property
    def cap_index(self) -> int:
        return self._cap_index

    def set_cap(self, index: int) -> None:
        """Disallow P-states shallower (faster) than ``index``."""
        self._cap_index = self.package.pstates.clamp_index(index)
        if self.package.effective_target_index < self._cap_index:
            self.set_pstate(self._cap_index)

    def set_pstate(self, index: int) -> None:
        self._requests.inc()
        self.package.set_pstate(max(index, self._cap_index))

    def set_frequency(self, freq_hz: float) -> None:
        self.set_pstate(self.package.pstates.index_for_frequency(freq_hz))

    def boost_to_max(self) -> None:
        """Fast path to P0 (called from NCAP's interrupt handler)."""
        self.set_pstate(0)

    def step_down(self, steps_remaining: int) -> None:
        """Lower frequency toward the deepest P-state over ``steps_remaining``
        equal strides (NCAP's FCONS mechanism, Section 4.3)."""
        if steps_remaining < 1:
            steps_remaining = 1
        current = self.package.effective_target_index
        deepest = self.package.pstates.max_index
        gap = deepest - current
        if gap <= 0:
            return
        stride = max(1, round(gap / steps_remaining))
        self.set_pstate(current + stride)


class PerformanceGovernor:
    """Pins the package at P0."""

    name = "performance"

    def __init__(self, driver: CpufreqDriver):
        self._driver = driver

    def start(self) -> None:
        self._driver.set_pstate(0)

    def stop(self) -> None:
        pass


class PowersaveGovernor:
    """Pins the package at the deepest P-state."""

    name = "powersave"

    def __init__(self, driver: CpufreqDriver):
        self._driver = driver

    def start(self) -> None:
        self._driver.set_pstate(self._driver.package.pstates.max_index)

    def stop(self) -> None:
        pass


class UserspaceGovernor:
    """Lets the user pin an arbitrary P-state (sysfs ``scaling_setspeed``)."""

    name = "userspace"

    def __init__(self, driver: CpufreqDriver, initial_index: int = 0):
        self._driver = driver
        self._index = initial_index

    def start(self) -> None:
        self._driver.set_pstate(self._index)

    def stop(self) -> None:
        pass

    def set_speed(self, index: int) -> None:
        self._index = index
        self._driver.set_pstate(index)


class OndemandGovernor:
    """Utilization-sampling dynamic governor.

    Every ``period_ns`` the governor runs ``overhead_cycles`` of kernel work
    on its housekeeping core, computes the maximum per-core utilization over
    the elapsed window, and retunes:

    - utilization >= ``up_threshold``  -> P0;
    - otherwise a frequency proportional to utilization/up_threshold
      (Linux's non-powersave-bias formula), mapped to the covering P-state.
    """

    name = "ondemand"

    def __init__(
        self,
        sim: Simulator,
        driver: CpufreqDriver,
        irq: IRQController,
        period_ns: int = 10 * MS,
        up_threshold: float = 0.80,
        overhead_cycles: float = 15_000.0,
        core_id: int = 0,
    ):
        if not 0.0 < up_threshold <= 1.0:
            raise ValueError("up_threshold must be in (0, 1]")
        self._sim = sim
        self._driver = driver
        self._irq = irq
        self.period_ns = period_ns
        self.up_threshold = up_threshold
        self._task = PeriodicKernelTask(
            sim, irq, period_ns, overhead_cycles, self._sample,
            core_id=core_id, name="ondemand",
        )
        self._last_busy: Optional[List[int]] = None
        self._last_time: int = 0
        self._hold_until: int = -1
        self.telemetry = driver.telemetry
        self._invocations = self.telemetry.counter("governor.ondemand.invocations")
        self._utilization = self.telemetry.gauge("governor.ondemand.utilization")
        self._decision_probe = self.telemetry.probe("governor.decision")
        self._core_id = core_id

    @property
    def samples(self) -> int:
        """Completed sampling invocations (registry-backed)."""
        return int(self._invocations.value)

    @property
    def last_utilization(self) -> float:
        return float(self._utilization.value)

    def start(self) -> None:
        self._reset_baseline()
        self._task.start()

    def stop(self) -> None:
        self._task.stop()

    def hold(self, duration_ns: Optional[int] = None) -> None:
        """Suppress governor decisions until ``duration_ns`` from now
        (defaults to one invocation period) — used by NCAP to avoid fighting
        its own boost decision."""
        if duration_ns is None:
            duration_ns = self.period_ns
        self._hold_until = max(self._hold_until, self._sim.now + duration_ns)

    def _reset_baseline(self) -> None:
        self._last_busy = [c.busy_ns_total() for c in self._driver.package.cores]
        self._last_time = self._sim.now

    def _sample(self) -> None:
        now = self._sim.now
        elapsed = now - self._last_time
        if elapsed <= 0:
            return
        busy = [c.busy_ns_total() for c in self._driver.package.cores]
        assert self._last_busy is not None
        utilization = max(
            (b - last) / elapsed for b, last in zip(busy, self._last_busy)
        )
        utilization = min(1.0, utilization)
        self._last_busy = busy
        self._last_time = now
        self._invocations.inc()
        self._utilization.set(utilization)
        if now < self._hold_until:
            return
        if utilization >= self.up_threshold:
            target = 0
        else:
            table = self._driver.package.pstates
            target_freq = table.p0.freq_hz * utilization / self.up_threshold
            target = table.index_for_frequency(target_freq)
        if self._decision_probe.enabled:
            self._decision_probe.emit(
                GovernorDecision(
                    now, self.name, target, utilization, core_id=self._core_id
                )
            )
        self._driver.set_pstate(target)
