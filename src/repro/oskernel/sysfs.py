"""A sysfs-like configuration surface.

The paper programs NCAP's ReqMonitor template registers "through the
operating system's sysfs interface" during NIC driver initialization
(Section 4.1).  This module provides that administrative surface: a
hierarchical attribute tree with read/write handlers, so examples and tests
can configure the NIC the way an operator would.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional


class SysfsError(KeyError):
    """Raised for reads/writes of unknown attributes."""


class SysFS:
    """A registry of attribute paths with optional read/write handlers."""

    def __init__(self) -> None:
        self._readers: Dict[str, Callable[[], str]] = {}
        self._writers: Dict[str, Callable[[str], None]] = {}
        self._values: Dict[str, str] = {}

    @staticmethod
    def _normalize(path: str) -> str:
        return "/" + path.strip("/")

    def register(
        self,
        path: str,
        read: Optional[Callable[[], str]] = None,
        write: Optional[Callable[[str], None]] = None,
        initial: Optional[str] = None,
    ) -> None:
        """Expose an attribute at ``path``.

        With no handlers the attribute is a plain stored value.
        """
        path = self._normalize(path)
        if read is not None:
            self._readers[path] = read
        if write is not None:
            self._writers[path] = write
        if initial is not None:
            self._values[path] = initial
        elif read is None and write is None and path not in self._values:
            self._values[path] = ""

    def read(self, path: str) -> str:
        path = self._normalize(path)
        if path in self._readers:
            return self._readers[path]()
        if path in self._values:
            return self._values[path]
        raise SysfsError(path)

    def write(self, path: str, value: str) -> None:
        path = self._normalize(path)
        if path in self._writers:
            self._writers[path](value)
            self._values[path] = value
            return
        if path in self._values or path in self._readers:
            self._values[path] = value
            return
        raise SysfsError(path)

    def exists(self, path: str) -> bool:
        path = self._normalize(path)
        return path in self._readers or path in self._values

    def ls(self, prefix: str = "/") -> list:
        """All attribute paths under ``prefix``."""
        prefix = self._normalize(prefix)
        names = set(self._readers) | set(self._values) | set(self._writers)
        if prefix == "/":
            return sorted(names)
        return sorted(n for n in names if n.startswith(prefix + "/") or n == prefix)
