"""Hardware interrupt delivery and SoftIRQ deferral.

A hardware interrupt preempts whatever its target core is running (or wakes
it from a C-state, paying the exit latency) and executes a short handler.
Handlers typically schedule a SoftIRQ — a longer, still kernel-priority job
that runs on the same core before the preempted task resumes, mirroring
Linux's ``do_softirq`` on hardirq exit.

The paper's NCAP driver enhancement lives in this layer: its enhanced
handler (``repro.core.ncap_driver``) is just another hardirq handler with
extra work in it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cpu.core import Core, Job
from repro.cpu.package import ClockDomain
from repro.sim.kernel import Simulator
from repro.telemetry import IrqDelivered


class IRQController:
    """Delivers interrupts to cores as preempting kernel jobs."""

    def __init__(
        self,
        sim: Simulator,
        package: ClockDomain,
        default_core: int = 0,
    ):
        self._sim = sim
        self._package = package
        self.default_core = default_core
        self.telemetry = package.telemetry
        self._hardirqs = self.telemetry.counter("irq.hardirqs")
        self._softirqs = self.telemetry.counter("irq.softirqs")
        self._probe = self.telemetry.probe("irq.delivered")

    @property
    def interrupts_delivered(self) -> int:
        return int(self._hardirqs.value)

    @property
    def softirqs_scheduled(self) -> int:
        return int(self._softirqs.value)

    def core_for(self, core_id: Optional[int]) -> Core:
        if core_id is None:
            core_id = self.default_core
        return self._package.cores[core_id]

    def raise_irq(
        self,
        handler: Callable[[], None],
        handler_cycles: float,
        core_id: Optional[int] = None,
        name: str = "hardirq",
    ) -> None:
        """Deliver a hardirq: preempt/wake the target core, run the handler
        for ``handler_cycles``, then call ``handler()`` (top-half body)."""
        core = self.core_for(core_id)
        self._hardirqs.inc()
        if self._probe.enabled:
            self._probe.emit(
                IrqDelivered(self._sim.now, "hardirq", name, core.core_id)
            )
        core.dispatch(
            Job(handler_cycles, on_complete=handler, name=name, kernel=True),
            preempt=True,
        )

    def raise_softirq(
        self,
        body: Callable[[], None],
        cycles: float,
        core_id: Optional[int] = None,
        name: str = "softirq",
    ) -> None:
        """Queue a SoftIRQ on the target core.

        SoftIRQs run at kernel priority: they preempt user jobs, but they do
        not preempt kernel work already in flight — raised while another
        kernel job runs, they queue behind it and drain FIFO before the
        preempted user job resumes (as on hardirq exit in Linux).
        """
        core = self.core_for(core_id)
        self._softirqs.inc()
        if self._probe.enabled:
            self._probe.emit(
                IrqDelivered(self._sim.now, "softirq", name, core.core_id)
            )
        job = Job(cycles, on_complete=body, name=name, kernel=True)
        current = core.current_job
        if current is not None and current.kernel:
            core.enqueue_pending(job)
        else:
            core.dispatch(job, preempt=True)
