"""Run queue and job dispatch.

Models the slice of the Linux scheduler the paper's mechanisms interact
with: a global FIFO run queue feeding idle cores, waking sleeping cores
when work arrives (paying the C-state exit latency), and notifying the
cpuidle layer whenever a core runs out of work (``cpu_idle_loop``).

Dispatch preference order for a newly enqueued job:

1. an idle (C0) core — cheapest;
2. a waking core with an empty backlog — the job rides the in-flight wake;
3. a sleeping core — woken, paying its exit latency;
4. otherwise the global FIFO queue, drained as cores become idle.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.cpu.core import Core, CoreState, Job
from repro.cpu.package import ClockDomain
from repro.sim.kernel import Simulator


class Scheduler:
    """Global FIFO run queue over the cores of one package."""

    def __init__(self, sim: Simulator, package: ClockDomain):
        self._sim = sim
        self._package = package
        self.cores: List[Core] = package.cores
        self._queue: Deque[Job] = deque()
        # cpuidle hook: called with a core that has gone idle and has no work.
        self.idle_hook: Optional[Callable[[Core], None]] = None
        self.max_queue_depth: int = 0
        self.jobs_enqueued: int = 0
        for core in self.cores:
            core.on_idle = self._on_core_idle
            core.take_next = self._take_next

    # -- submission ------------------------------------------------------

    def enqueue(self, job: Job, core_hint: Optional[int] = None) -> None:
        """Submit ``job`` for execution on any core (or ``core_hint``)."""
        self.jobs_enqueued += 1
        if core_hint is not None:
            core = self.cores[core_hint]
            if core.state in (
                CoreState.IDLE, CoreState.SLEEP, CoreState.WAKING, CoreState.STALL,
            ):
                core.dispatch(job)
                return
            # Soft affinity (RFS-like): the preferred core is busy, so fall
            # through to normal selection rather than starving the job
            # behind it while other cores sleep.

        core = self._pick_core()
        if core is not None:
            core.dispatch(job)
        else:
            self._queue.append(job)
            self.max_queue_depth = max(self.max_queue_depth, len(self._queue))

    def _pick_core(self) -> Optional[Core]:
        waking = None
        sleeping = None
        for core in self.cores:
            state = core.state
            if state is CoreState.IDLE:
                return core
            if state is CoreState.WAKING and waking is None and core.queue_depth() == 0:
                waking = core
            elif state is CoreState.SLEEP and sleeping is None and core.queue_depth() == 0:
                sleeping = core
        return waking or sleeping

    # -- core callbacks -----------------------------------------------------

    def _on_core_idle(self, core: Core) -> None:
        if self._queue:
            core.dispatch(self._queue.popleft())
            return
        if self.idle_hook is not None:
            self.idle_hook(core)

    def _take_next(self) -> Optional[Job]:
        """Completion fast path: pop the next queued job for the asking
        core, or None to let it go idle (then ``_on_core_idle`` runs the
        cpuidle hook as before)."""
        if self._queue:
            return self._queue.popleft()
        return None

    # -- introspection --------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def wake_all(self) -> None:
        """Wake every sleeping core (used by NCAP's IT_HIGH path)."""
        for core in self.cores:
            if core.state is CoreState.SLEEP:
                core.wake()
