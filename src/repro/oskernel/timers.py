"""Kernel timers: periodic work executed as (preempting) kernel jobs.

Used by the ondemand governor's sampling tick and by the software NCAP
variant's 1 ms high-resolution timer.  Each expiry costs real cycles on its
target core — this overhead is load-bearing: it is why short ondemand
periods hurt (Figure 2) and why ``ncap.sw`` cannot keep up at high load.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.oskernel.irq import IRQController
from repro.sim.kernel import Event, Simulator


class PeriodicKernelTask:
    """A repeating kernel job: every ``period_ns``, run ``cycles`` of kernel
    work on ``core_id`` and then invoke ``body``."""

    def __init__(
        self,
        sim: Simulator,
        irq: IRQController,
        period_ns: int,
        cycles: float,
        body: Callable[[], None],
        core_id: Optional[int] = None,
        name: str = "ktimer",
    ):
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self._sim = sim
        self._irq = irq
        self.period_ns = period_ns
        self.cycles = cycles
        self._body = body
        self._core_id = core_id
        self.name = name
        self._next: Optional[Event] = None
        self.expirations: int = 0
        self._running = False

    def start(self, initial_delay_ns: Optional[int] = None) -> None:
        if self._running:
            return
        self._running = True
        delay = self.period_ns if initial_delay_ns is None else initial_delay_ns
        self._next = self._sim.schedule(delay, self._expire)

    def stop(self) -> None:
        self._running = False
        if self._next is not None:
            self._next.cancel()
            self._next = None

    @property
    def running(self) -> bool:
        return self._running

    def _expire(self) -> None:
        if not self._running:
            return
        self.expirations += 1
        # Re-arm first so the period is stable even if the body is delayed
        # by queueing on a busy core.  The just-fired event is reused via
        # the kernel's O(1) reschedule fast path — no allocation per tick.
        self._next = self._sim.reschedule(self._next, self.period_ns)
        self._irq.raise_softirq(
            self._body, self.cycles, core_id=self._core_id, name=self.name
        )


class OneShotKernelTask:
    """A single deferred kernel job (delay, then cycles on a core, then body)."""

    def __init__(
        self,
        sim: Simulator,
        irq: IRQController,
        delay_ns: int,
        cycles: float,
        body: Callable[[], None],
        core_id: Optional[int] = None,
        name: str = "ktimer-once",
    ):
        self._sim = sim
        self._irq = irq
        self._cycles = cycles
        self._body = body
        self._core_id = core_id
        self.name = name
        self._event: Optional[Event] = sim.schedule(delay_ns, self._expire)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _expire(self) -> None:
        self._event = None
        self._irq.raise_softirq(
            self._body, self._cycles, core_id=self._core_id, name=self.name
        )
