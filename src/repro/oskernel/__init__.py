"""OS-kernel substrate: scheduler, IRQs, timers, cpufreq/cpuidle, sysfs."""

from repro.oskernel.cpufreq import (
    CpufreqDriver,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    UserspaceGovernor,
)
from repro.oskernel.cpuidle import CpuidleDriver, LadderGovernor, MenuGovernor
from repro.oskernel.irq import IRQController
from repro.oskernel.netstack import NetStackCosts
from repro.oskernel.scheduler import Scheduler
from repro.oskernel.sysfs import SysFS, SysfsError
from repro.oskernel.timers import OneShotKernelTask, PeriodicKernelTask

__all__ = [
    "CpufreqDriver",
    "OndemandGovernor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "UserspaceGovernor",
    "CpuidleDriver",
    "LadderGovernor",
    "MenuGovernor",
    "IRQController",
    "NetStackCosts",
    "Scheduler",
    "SysFS",
    "SysfsError",
    "OneShotKernelTask",
    "PeriodicKernelTask",
]
