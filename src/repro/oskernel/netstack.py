"""Network-stack CPU cost model.

The paper attributes a large share of server utilization to executing the
kernel network software layers for received and transmitted packets
(Section 3).  This module centralizes those per-packet/per-segment cycle
costs; the NIC driver charges them to cores as hardirq/SoftIRQ jobs.

Defaults are calibrated (together with the application service costs in
``repro.apps``) so a 4-core 3.1 GHz server saturates near the paper's
maximum sustained loads: ~68 K RPS for Apache and ~143 K RPS for Memcached.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetStackCosts:
    """Cycle costs of kernel network processing."""

    # Top half: interrupt dispatch + ICR read over PCIe + IRQ housekeeping.
    hardirq_cycles: float = 5_000.0
    # Per NAPI poll invocation (softirq entry, ring scan, re-arm).
    softirq_poll_cycles: float = 3_000.0
    # Per received packet: skb handling, IP/TCP layers, socket demux,
    # copy to the user buffer.
    rx_per_packet_cycles: float = 8_000.0
    # Per transmitted segment: TCP segmentation, IP/Ethernet encapsulation,
    # descriptor setup.
    tx_per_segment_cycles: float = 9_000.0
    # Per transmitted message: syscall entry, socket bookkeeping.
    tx_send_cycles: float = 4_000.0
    # Per reclaimed tx descriptor (only when the NIC posts tx-complete
    # interrupts; otherwise reclamation piggybacks on the send path).
    tx_reclaim_cycles: float = 800.0

    def rx_batch_cycles(self, n_packets: int) -> float:
        """SoftIRQ cost of delivering a batch of ``n_packets``."""
        if n_packets <= 0:
            return self.softirq_poll_cycles
        return self.softirq_poll_cycles + n_packets * self.rx_per_packet_cycles

    def tx_message_cycles(self, n_segments: int) -> float:
        """Kernel cost of transmitting one message of ``n_segments``."""
        return self.tx_send_cycles + max(1, n_segments) * self.tx_per_segment_cycles
