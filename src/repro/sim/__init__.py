"""Discrete-event simulation substrate: kernel, units, RNG, tracing."""

from repro.sim.kernel import Event, HeapScheduler, SimulationError, Simulator
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.trace import (
    CounterChannel,
    EventChannel,
    NullTraceRecorder,
    TraceRecorder,
)
from repro.sim import units

__all__ = [
    "Event",
    "HeapScheduler",
    "SimulationError",
    "Simulator",
    "RngRegistry",
    "derive_seed",
    "CounterChannel",
    "EventChannel",
    "NullTraceRecorder",
    "TraceRecorder",
    "units",
]
