"""Deterministic discrete-event simulation kernel.

The kernel is a two-tier calendar queue (a timing-wheel / calendar-queue
hybrid) with same-timestamp batch dispatch:

- :class:`Event` — a scheduled callback, cancellable in O(1).
- :class:`Simulator` — the production scheduler.  Near-future events
  (before the *overflow horizon*) live in exact-timestamp buckets — a
  dict keyed by firing time plus an int min-heap of bucket times — so
  the inner loop pops one integer per *timestamp*, not one Python object
  per *event*.  Far-future events (at or past the horizon) sit in an
  unsorted overflow list with O(1) append and O(1) tail removal; the
  overflow is sorted and folded into the wheel only when the wheel
  drains, advancing the horizon.
- :class:`HeapScheduler` — the classic binary-heap scheduler the wheel
  replaced, retained as the differential-parity reference.  Same API,
  same observable behaviour (event order, seq consumption, results).

Determinism guarantees (both schedulers):

- Time is an integer; no float drift can reorder events.
- Ties at the same timestamp fire in scheduling order (a monotonically
  increasing sequence number breaks ties; bucket order is insertion
  order, which is seq order).
- Callbacks scheduled *during* an event at the current time run after
  all previously scheduled events at that time.
- ``stop()`` halts dispatch after the current event — mid-bucket and
  mid-batch included; the unconsumed remainder is requeued ahead of any
  same-timestamp events scheduled while the bucket was dispatching.

Bulk entrypoints (the batch layer):

- :meth:`Simulator.schedule_many` — bulk fire-and-forget scheduling of
  one callback at many timestamps; entries share a single tuple, no
  per-event :class:`Event` allocation.
- :meth:`Simulator.schedule_batch` — ``count`` same-timestamp calls as
  one bucket entry with a precomputed handler binding; the dispatch
  loop does one clock update (and, when profiled, one timer read) for
  the whole batch.
- :meth:`Simulator.reschedule` — re-arm an event in O(1): a fired or
  tail-resident event is unlinked and its object reused; an interior
  event falls back to tombstone-plus-fresh-event.  Semantically
  identical to ``cancel()`` + ``schedule()``.

Cancellation hygiene: a cancelled event that is the *tail* of its
bucket (or of the overflow) is unlinked immediately (counted in
:attr:`Simulator.cancelled_unlinked`); anything interior becomes a lazy
tombstone skipped at dispatch (:attr:`Simulator.cancelled_pops`).  The
simulator counts live tombstones and compacts all tiers in place —
O(n), order preserving — once they exceed
:attr:`Simulator.COMPACT_FRACTION` of the queue.

Self-profiling: :meth:`Simulator.set_profiler` swaps the dispatch loop
for an instrumented twin (:meth:`Simulator._run_profiled`) that
attributes wall-clock time to each handler — one timer read per single
event, one per *batch* for batch entries (the whole interval is charged
to the batch's handler, so attribution still telescopes to the loop
total).  The uninstrumented loop is untouched — with no profiler
attached the only cost is one ``is None`` check per ``run()`` call.
"""

from __future__ import annotations

import heapq
from time import perf_counter_ns
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.profiling.profiler import SimProfiler


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, running twice, ...)."""


class Event:
    """A single scheduled callback.

    Events are created via :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; users only hold them to :meth:`cancel`
    or :meth:`Simulator.reschedule` them, or to inspect :attr:`time`.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "owner", "_queued")

    def __init__(
        self,
        time: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        owner: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.owner = owner
        #: Physically linked into the owner's queue.  Cleared on dispatch
        #: and on unlink, so cancellation accounting is exact.
        self._queued = True

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self.owner is not None:
                self.owner._note_cancel(self)

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state}, fn={self.fn!r})"


class _Batch:
    """``count`` same-timestamp fire-and-forget calls as one bucket entry."""

    __slots__ = ("fn", "args", "count")

    def __init__(self, fn: Callable[..., None], args: tuple, count: int):
        self.fn = fn
        self.args = args
        self.count = count


_TUPLE = tuple
_EVENT = Event


class Simulator:
    """Event-driven simulator with an integer-nanosecond clock.

    Two-tier calendar scheduler: exact-timestamp wheel buckets indexed
    by an int min-heap for everything before :attr:`_horizon`, an
    unsorted overflow list for everything at or past it.  The horizon
    only ever advances inside :meth:`_migrate` — all wheel times stay
    strictly below it and all overflow times at or above it, so the two
    tiers never interleave.
    """

    #: Compact once cancelled tombstones exceed this fraction of the queue.
    COMPACT_FRACTION = 0.5
    #: ... but never bother below this queue size (compaction is O(n)).
    COMPACT_MIN_SIZE = 64
    #: Width of the near-future window serviced by the wheel.  Events
    #: scheduled further out stage in the overflow list until the wheel
    #: drains.  ~2.1 simulated milliseconds: wide enough to hold every
    #: periodic timer in the model (ITR, governor ticks, burst periods),
    #: narrow enough that the due-heap stays small.
    OVERFLOW_SPAN_NS = 1 << 21

    def __init__(self) -> None:
        #: firing time -> list of entries (Event | (fn, args) | _Batch),
        #: in seq order.  Only times < _horizon.
        self._wheel: Dict[int, list] = {}
        #: Min-heap of (possibly stale) wheel bucket times.
        self._due: List[int] = []
        #: Unsorted far-future staging: (time, seq, entry) records.
        self._overflow: List[Tuple[int, int, Any]] = []
        self._horizon: int = self.OVERFLOW_SPAN_NS
        self._now: int = 0
        self._seq: int = 0
        #: Scheduled call units physically queued (tombstones included;
        #: a _Batch counts as its ``count``).
        self._size: int = 0
        self._running = False
        self._stopped = False
        self._profiler: Optional["SimProfiler"] = None
        self.events_executed: int = 0
        #: Cancelled tombstones lazily skipped by the dispatch loop.
        self.cancelled_pops: int = 0
        #: Cancelled events unlinked eagerly (tail-of-bucket fast path).
        self.cancelled_unlinked: int = 0
        #: In-place queue rebuilds triggered by cancellation pressure.
        self.compactions: int = 0
        #: Cancelled events removed by those compactions.
        self.compacted_events: int = 0
        #: Exact count of cancelled tombstones still linked in the queue.
        self._cancelled_in_heap: int = 0

    # -- clock ---------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        time = self._now + int(delay)
        self._seq += 1
        event = Event(time, self._seq, fn, args, self)
        if time < self._horizon:
            bucket = self._wheel.get(time)
            if bucket is None:
                self._wheel[time] = [event]
                heapq.heappush(self._due, time)
            else:
                bucket.append(event)
        else:
            self._overflow.append((time, self._seq, event))
        self._size += 1
        return event

    def schedule_at(self, time: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time`` ns."""
        time = int(time)
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} ns; now is t={self._now} ns"
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args, self)
        if time < self._horizon:
            bucket = self._wheel.get(time)
            if bucket is None:
                self._wheel[time] = [event]
                heapq.heappush(self._due, time)
            else:
                bucket.append(event)
        else:
            self._overflow.append((time, self._seq, event))
        self._size += 1
        return event

    def call_now(self, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time (after pending ties)."""
        return self.schedule_at(self._now, fn, *args)

    def schedule_many(
        self, times: Iterable[int], fn: Callable[..., None], *args: Any
    ) -> int:
        """Bulk fire-and-forget scheduling of ``fn(*args)`` at ``times``.

        Each timestamp consumes one sequence number, exactly as the
        equivalent loop of :meth:`schedule_at` calls would, so ordering
        against individually scheduled events is identical.  No
        :class:`Event` objects are created — the entries cannot be
        cancelled.  Returns the number of calls scheduled.
        """
        wheel = self._wheel
        due = self._due
        overflow = self._overflow
        push = heapq.heappush
        horizon = self._horizon
        now = self._now
        entry = (fn, args)
        seq = self._seq
        n = 0
        for t in times:
            t = int(t)
            if t < now:
                self._seq = seq
                self._size += n
                raise SimulationError(
                    f"cannot schedule at t={t} ns; now is t={now} ns"
                )
            seq += 1
            if t < horizon:
                bucket = wheel.get(t)
                if bucket is None:
                    wheel[t] = [entry]
                    push(due, t)
                else:
                    bucket.append(entry)
            else:
                overflow.append((t, seq, entry))
            n += 1
        self._seq = seq
        self._size += n
        return n

    def schedule_batch(
        self, delay: int, count: int, fn: Callable[..., None], *args: Any
    ) -> int:
        """Schedule ``count`` fire-and-forget ``fn(*args)`` calls ``delay``
        ns from now, as a single bucket entry.

        Consumes ``count`` sequence numbers (the batch occupies the same
        ordering slots as ``count`` individual ``schedule`` calls) and
        dispatches with one clock update — and, under the profiler, one
        timer read — for the whole batch.  Returns ``count``.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        if count <= 0:
            raise SimulationError(f"batch count must be positive, got {count}")
        time = self._now + int(delay)
        first_seq = self._seq + 1
        self._seq += count
        entry = _Batch(fn, args, count)
        if time < self._horizon:
            bucket = self._wheel.get(time)
            if bucket is None:
                self._wheel[time] = [entry]
                heapq.heappush(self._due, time)
            else:
                bucket.append(entry)
        else:
            self._overflow.append((time, first_seq, entry))
        self._size += count
        return count

    def reschedule(self, event: Event, delay: int) -> Event:
        """Re-arm ``event`` to fire ``delay`` ns from now.

        Semantically identical to ``event.cancel()`` followed by
        ``schedule(delay, event.fn, *event.args)`` — one sequence number
        is consumed either way — but O(1) when the event has already
        fired or sits at the tail of its bucket: the Event object is
        unlinked and reused with no allocation and no tombstone.  Always
        use the *returned* event for the next re-arm.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        time = self._now + int(delay)
        if event._queued:
            if event.cancelled:
                # Tombstone still linked elsewhere: reusing the object
                # would resurrect it in place.  Schedule fresh.
                return self.schedule_at(time, event.fn, *event.args)
            etime = event.time
            if etime >= self._horizon:
                overflow = self._overflow
                if overflow and overflow[-1][2] is event:
                    # Tail unlink + reuse: net queue size is unchanged
                    # and the event's flags are already clean.
                    overflow.pop()
                    seq = self._seq + 1
                    self._seq = seq
                    event.time = time
                    event.seq = seq
                    if time < self._horizon:
                        bucket = self._wheel.get(time)
                        if bucket is None:
                            self._wheel[time] = [event]
                            heapq.heappush(self._due, time)
                        else:
                            bucket.append(event)
                    else:
                        overflow.append((time, seq, event))
                    return event
            else:
                bucket = self._wheel.get(etime)
                if bucket is not None and bucket[-1] is event:
                    bucket.pop()
                    if not bucket:
                        del self._wheel[etime]
                    seq = self._seq + 1
                    self._seq = seq
                    event.time = time
                    event.seq = seq
                    if time < self._horizon:
                        bucket = self._wheel.get(time)
                        if bucket is None:
                            self._wheel[time] = [event]
                            heapq.heappush(self._due, time)
                        else:
                            bucket.append(event)
                    else:
                        self._overflow.append((time, seq, event))
                    return event
            # Interior: tombstone in place, arm a fresh event.
            event.cancelled = True
            self._lazy_cancel()
            return self.schedule_at(time, event.fn, *event.args)
        # Previously fired or cancelled-and-unlinked: reuse the object.
        self._seq += 1
        event.time = time
        event.seq = self._seq
        event.cancelled = False
        event._queued = True
        if time < self._horizon:
            bucket = self._wheel.get(time)
            if bucket is None:
                self._wheel[time] = [event]
                heapq.heappush(self._due, time)
            else:
                bucket.append(event)
        else:
            self._overflow.append((time, self._seq, event))
        self._size += 1
        return event

    # -- queue hygiene ---------------------------------------------------

    def heap_size(self) -> int:
        """Call units currently queued, cancelled tombstones included."""
        return self._size

    @property
    def cancelled_pending(self) -> int:
        """Cancelled tombstones still occupying queue slots."""
        return self._cancelled_in_heap

    def _note_cancel(self, event: Event) -> None:
        """Called by :meth:`Event.cancel` (``event.cancelled`` already set)."""
        if not event._queued:
            return  # already fired or unlinked; nothing to remove
        time = event.time
        if time >= self._horizon:
            overflow = self._overflow
            if overflow and overflow[-1][2] is event:
                overflow.pop()
                event._queued = False
                self._size -= 1
                self.cancelled_unlinked += 1
                return
        else:
            bucket = self._wheel.get(time)
            if bucket is not None and bucket[-1] is event:
                bucket.pop()
                event._queued = False
                self._size -= 1
                self.cancelled_unlinked += 1
                if not bucket:
                    del self._wheel[time]
                return
        self._lazy_cancel()

    def _lazy_cancel(self) -> None:
        """Account one interior tombstone; compact under pressure."""
        self._cancelled_in_heap += 1
        if (
            self._size >= self.COMPACT_MIN_SIZE
            and self._cancelled_in_heap >= self._size * self.COMPACT_FRACTION
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled tombstones from every tier, in place.

        In place matters: the dispatch loop holds local aliases to the
        wheel dict, due heap, and overflow list, so those objects must
        survive compaction.  Bucket order is preserved, so live-event
        ordering is unchanged.
        """
        removed = 0
        wheel = self._wheel
        for time in list(wheel):
            bucket = wheel[time]
            kept = [
                e
                for e in bucket
                if e.__class__ is not Event or not e.cancelled
            ]
            if len(kept) != len(bucket):
                removed += len(bucket) - len(kept)
                if kept:
                    wheel[time] = kept
                else:
                    del wheel[time]
        # Rebuild the due-heap from live bucket times; stale times from
        # emptied buckets drop out here.
        self._due[:] = list(wheel)
        heapq.heapify(self._due)
        overflow = self._overflow
        kept_overflow = [
            rec
            for rec in overflow
            if rec[2].__class__ is not Event or not rec[2].cancelled
        ]
        removed += len(overflow) - len(kept_overflow)
        overflow[:] = kept_overflow
        self._size -= removed
        self.compactions += 1
        self.compacted_events += removed
        self._cancelled_in_heap = 0

    def _migrate(self) -> None:
        """Fold the nearest overflow span into the wheel.

        Only called when the wheel is empty, so ordering cannot be
        violated: the horizon advances to ``min(overflow time) + span``
        and exactly the records below it move, sorted by (time, seq) so
        bucket insertion order remains seq order.  This is the *only*
        place the horizon changes.
        """
        overflow = self._overflow
        t_min = min(rec[0] for rec in overflow)
        new_horizon = t_min + self.OVERFLOW_SPAN_NS
        moved = []
        kept = []
        for rec in overflow:
            if rec[0] < new_horizon:
                moved.append(rec)
            else:
                kept.append(rec)
        moved.sort(key=lambda rec: (rec[0], rec[1]))
        wheel = self._wheel
        due = self._due
        push = heapq.heappush
        for time, _seq, entry in moved:
            bucket = wheel.get(time)
            if bucket is None:
                wheel[time] = [entry]
                push(due, time)
            else:
                bucket.append(entry)
        overflow[:] = kept
        self._horizon = new_horizon

    # -- execution -------------------------------------------------------

    def stop(self) -> None:
        """Stop the currently running :meth:`run` after the current event."""
        self._stopped = True

    def set_profiler(self, profiler: Optional["SimProfiler"]) -> None:
        """Attach (or detach, with ``None``) a dispatch-loop profiler.

        Subsequent :meth:`run` calls go through the instrumented loop,
        which attributes wall time per handler into ``profiler``.
        """
        self._profiler = profiler

    @property
    def profiler(self) -> Optional["SimProfiler"]:
        return self._profiler

    def _requeue(self, time: int, rest: list) -> None:
        """Put an unconsumed bucket remainder back at the front of ``time``.

        Entries scheduled at ``time`` *during* the dispatch of this
        bucket carry higher seqs, so the remainder is prepended.
        """
        bucket = self._wheel.get(time)
        if bucket is None:
            self._wheel[time] = rest
            heapq.heappush(self._due, time)
        else:
            bucket[:0] = rest

    def run(self, until: Optional[int] = None) -> int:
        """Run events until the queue empties or the clock passes ``until``.

        Returns the final simulated time.  When ``until`` is given, the
        clock is advanced to exactly ``until`` even if the last event fired
        earlier (so rate/energy integrations over the window are exact).
        """
        if self._running:
            raise SimulationError("simulator is already running")
        if self._profiler is not None:
            return self._run_profiled(until)
        self._running = True
        self._stopped = False
        wheel = self._wheel
        due = self._due
        pop_due = heapq.heappop
        executed = self.events_executed
        try:
            while not self._stopped:
                if not due:
                    if not self._overflow:
                        break
                    self._migrate()
                    continue
                time = due[0]
                bucket = wheel.get(time)
                if bucket is None:
                    pop_due(due)  # stale: bucket emptied by unlink/compact
                    continue
                if until is not None and time > until:
                    break
                pop_due(due)
                del wheel[time]
                # Drain leading tombstones before touching the clock: a
                # bucket that turns out to be all-cancelled must not
                # advance ``now`` (parity with the heap, where cancelled
                # pops never set the clock).
                i = 0
                n = len(bucket)
                consumed = 0
                while i < n:
                    e = bucket[i]
                    if e.__class__ is not _EVENT or not e.cancelled:
                        break
                    i += 1
                    consumed += 1
                    self.cancelled_pops += 1
                    if self._cancelled_in_heap > 0:
                        self._cancelled_in_heap -= 1
                if i == n:
                    self._size -= consumed
                    continue
                self._now = time
                try:
                    while i < n:
                        e = bucket[i]
                        cls = e.__class__
                        if cls is _TUPLE:
                            i += 1
                            consumed += 1
                            executed += 1
                            e[0](*e[1])
                            if self._stopped:
                                break
                        elif cls is _Batch:
                            fn = e.fn
                            args = e.args
                            k = e.count
                            j = 0
                            try:
                                while j < k:
                                    fn(*args)
                                    j += 1
                                    if self._stopped:
                                        break
                            finally:
                                consumed += j
                                executed += j
                                if j < k:
                                    e.count = k - j
                            if j < k:
                                break  # stopped mid-batch; e stays at bucket[i]
                            i += 1
                            if self._stopped:
                                break
                        else:
                            i += 1
                            if e.cancelled:
                                consumed += 1
                                self.cancelled_pops += 1
                                if self._cancelled_in_heap > 0:
                                    self._cancelled_in_heap -= 1
                                continue
                            e._queued = False
                            consumed += 1
                            executed += 1
                            e.fn(*e.args)
                            if self._stopped:
                                break
                finally:
                    self.events_executed = executed
                    self._size -= consumed
                    if i < n:
                        self._requeue(time, bucket[i:])
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self.events_executed = executed
            self._running = False
        return self._now

    def _run_profiled(self, until: Optional[int] = None) -> int:
        """Instrumented twin of :meth:`run`.

        Identical event semantics; additionally attributes wall time per
        handler.  One ``perf_counter_ns()`` reading per single event and
        one per *batch* entry: each handler is charged the interval from
        the previous reading to the one taken right after it fires
        (bucket bookkeeping and the *previous* iteration's accounting
        included), so the per-handler totals plus the cancelled-pop
        bucket telescope to the measured loop total.
        """
        profiler = self._profiler
        self._running = True
        self._stopped = False
        perf = perf_counter_ns
        record = profiler._record
        checkpoint = profiler._checkpoint
        every = profiler.checkpoint_every
        countdown = profiler._countdown
        max_depth = profiler.max_heap_depth
        cancelled_ns = 0
        loop_start = perf()
        if profiler._wall0_ns is None:
            profiler._note_start(self, loop_start)
        t_prev = loop_start
        wheel = self._wheel
        due = self._due
        pop_due = heapq.heappop
        executed = self.events_executed
        try:
            while not self._stopped:
                if not due:
                    if not self._overflow:
                        break
                    self._migrate()
                    continue
                time = due[0]
                bucket = wheel.get(time)
                if bucket is None:
                    pop_due(due)
                    continue
                if until is not None and time > until:
                    break
                pop_due(due)
                del wheel[time]
                # Mirror run(): drain leading tombstones (charged to the
                # cancelled bucket) before the clock moves, so an
                # all-cancelled bucket never advances ``now``.
                i = 0
                n = len(bucket)
                consumed = 0
                while i < n:
                    e = bucket[i]
                    if e.__class__ is not _EVENT or not e.cancelled:
                        break
                    i += 1
                    consumed += 1
                    self.cancelled_pops += 1
                    profiler.cancelled_pops += 1
                    if self._cancelled_in_heap > 0:
                        self._cancelled_in_heap -= 1
                    t_now = perf()
                    cancelled_ns += t_now - t_prev
                    t_prev = t_now
                if i == n:
                    self._size -= consumed
                    continue
                self._now = time
                try:
                    while i < n:
                        e = bucket[i]
                        cls = e.__class__
                        if cls is _TUPLE:
                            i += 1
                            consumed += 1
                            executed += 1
                            fn = e[0]
                            fn(*e[1])
                            t_now = perf()
                            elapsed = t_now - t_prev
                            t_prev = t_now
                            entry = record.get(fn)
                            if entry is None:
                                record[fn] = [1, elapsed]
                                if len(record) >= profiler.fold_threshold:
                                    profiler._fold()
                            else:
                                entry[0] += 1
                                entry[1] += elapsed
                            profiler.events += 1
                            countdown -= 1
                            stopped = self._stopped
                        elif cls is _Batch:
                            fn = e.fn
                            args = e.args
                            k = e.count
                            j = 0
                            try:
                                while j < k:
                                    fn(*args)
                                    j += 1
                                    if self._stopped:
                                        break
                            finally:
                                consumed += j
                                executed += j
                                if j < k:
                                    e.count = k - j
                            t_now = perf()
                            elapsed = t_now - t_prev
                            t_prev = t_now
                            entry = record.get(fn)
                            if entry is None:
                                record[fn] = [j, elapsed]
                                if len(record) >= profiler.fold_threshold:
                                    profiler._fold()
                            else:
                                entry[0] += j
                                entry[1] += elapsed
                            profiler.events += j
                            countdown -= j
                            if j < k:
                                break
                            i += 1
                            stopped = self._stopped
                        else:
                            i += 1
                            if e.cancelled:
                                consumed += 1
                                self.cancelled_pops += 1
                                profiler.cancelled_pops += 1
                                if self._cancelled_in_heap > 0:
                                    self._cancelled_in_heap -= 1
                                t_now = perf()
                                cancelled_ns += t_now - t_prev
                                t_prev = t_now
                                continue
                            e._queued = False
                            consumed += 1
                            executed += 1
                            fn = e.fn
                            fn(*e.args)
                            t_now = perf()
                            elapsed = t_now - t_prev
                            t_prev = t_now
                            entry = record.get(fn)
                            if entry is None:
                                record[fn] = [1, elapsed]
                                if len(record) >= profiler.fold_threshold:
                                    profiler._fold()
                            else:
                                entry[0] += 1
                                entry[1] += elapsed
                            profiler.events += 1
                            countdown -= 1
                            stopped = self._stopped
                        depth = self._size - consumed
                        if depth > max_depth:
                            max_depth = depth
                        if countdown <= 0:
                            checkpoint(self._now)
                            countdown = every
                        if stopped:
                            break
                finally:
                    self.events_executed = executed
                    self._size -= consumed
                    if i < n:
                        self._requeue(time, bucket[i:])
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self.events_executed = executed
            self._running = False
            loop_wall = perf() - loop_start
            profiler.loop_wall_ns += loop_wall
            profiler.cancelled_wall_ns += cancelled_ns
            profiler.max_heap_depth = max_depth
            profiler._countdown = countdown
            profiler._note_run(self)
        return self._now

    def peek_next_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or None if the queue is empty.

        Drains (physically unlinks) any cancelled tombstones at the
        front of the queue on the way, migrating the overflow if the
        wheel is empty.
        """
        wheel = self._wheel
        due = self._due
        while True:
            while due:
                time = due[0]
                bucket = wheel.get(time)
                if bucket is None:
                    heapq.heappop(due)
                    continue
                i = 0
                n = len(bucket)
                while (
                    i < n
                    and bucket[i].__class__ is Event
                    and bucket[i].cancelled
                ):
                    i += 1
                if i:
                    del bucket[:i]
                    self.cancelled_pops += i
                    self._cancelled_in_heap -= min(i, self._cancelled_in_heap)
                    self._size -= i
                if bucket:
                    return time
                del wheel[time]
                heapq.heappop(due)
            if not self._overflow:
                return None
            self._migrate()

    def pending_count(self) -> int:
        """Number of non-cancelled call units still queued (O(n))."""
        total = 0
        for bucket in self._wheel.values():
            for e in bucket:
                cls = e.__class__
                if cls is Event:
                    if not e.cancelled:
                        total += 1
                elif cls is _Batch:
                    total += e.count
                else:
                    total += 1
        for _time, _seq, e in self._overflow:
            cls = e.__class__
            if cls is Event:
                if not e.cancelled:
                    total += 1
            elif cls is _Batch:
                total += e.count
            else:
                total += 1
        return total


class HeapScheduler:
    """The classic binary-heap scheduler, retained as the parity reference.

    Byte-for-byte the pre-wheel dispatch semantics (lazy cancellation,
    in-place compaction, one heap pop per event), extended with naive
    equivalents of the wheel's bulk API — same sequence-number
    consumption, so event order is bit-identical to :class:`Simulator`
    and differential tests can diff the two directly.
    """

    COMPACT_FRACTION = 0.5
    COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._now: int = 0
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self._profiler: Optional["SimProfiler"] = None
        self.events_executed: int = 0
        #: Cancelled events lazily discarded off the top of the heap.
        self.cancelled_pops: int = 0
        #: The heap has no unlink fast path; kept for a uniform stats API.
        self.cancelled_unlinked: int = 0
        #: In-place heap rebuilds triggered by cancellation pressure.
        self.compactions: int = 0
        #: Cancelled events removed by those compactions.
        self.compacted_events: int = 0
        #: Best-effort count of cancelled events still in the heap.  May
        #: overcount when an already-fired event is cancelled; compaction
        #: re-derives the truth.
        self._cancelled_in_heap: int = 0

    # -- clock ---------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        return self.schedule_at(self._now + int(delay), fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time`` ns."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} ns; now is t={self._now} ns"
            )
        self._seq += 1
        event = Event(int(time), self._seq, fn, args, self)
        heapq.heappush(self._heap, event)
        return event

    def call_now(self, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time (after pending ties)."""
        return self.schedule_at(self._now, fn, *args)

    def schedule_many(
        self, times: Iterable[int], fn: Callable[..., None], *args: Any
    ) -> int:
        """Naive loop equivalent of :meth:`Simulator.schedule_many`."""
        n = 0
        for t in times:
            self.schedule_at(int(t), fn, *args)
            n += 1
        return n

    def schedule_batch(
        self, delay: int, count: int, fn: Callable[..., None], *args: Any
    ) -> int:
        """Naive loop equivalent of :meth:`Simulator.schedule_batch`."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        if count <= 0:
            raise SimulationError(f"batch count must be positive, got {count}")
        time = self._now + int(delay)
        for _ in range(count):
            self.schedule_at(time, fn, *args)
        return count

    def reschedule(self, event: Event, delay: int) -> Event:
        """Cancel-plus-schedule equivalent of :meth:`Simulator.reschedule`."""
        if event._queued and not event.cancelled:
            event.cancel()
        return self.schedule(delay, event.fn, *event.args)

    # -- heap hygiene ----------------------------------------------------

    def heap_size(self) -> int:
        """Entries currently in the heap, cancelled ones included."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Estimated cancelled events still occupying heap slots."""
        return self._cancelled_in_heap

    def _note_cancel(self, _event: Event) -> None:
        self._cancelled_in_heap += 1
        heap = self._heap
        if (
            len(heap) >= self.COMPACT_MIN_SIZE
            and self._cancelled_in_heap >= len(heap) * self.COMPACT_FRACTION
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In place matters: the dispatch loops hold a local alias to the
        heap list, so the list object must survive compaction.
        """
        heap = self._heap
        before = len(heap)
        heap[:] = [event for event in heap if not event.cancelled]
        heapq.heapify(heap)
        self.compactions += 1
        self.compacted_events += before - len(heap)
        self._cancelled_in_heap = 0

    # -- execution -------------------------------------------------------

    def stop(self) -> None:
        """Stop the currently running :meth:`run` after the current event."""
        self._stopped = True

    def set_profiler(self, profiler: Optional["SimProfiler"]) -> None:
        """Attach (or detach, with ``None``) a dispatch-loop profiler."""
        self._profiler = profiler

    @property
    def profiler(self) -> Optional["SimProfiler"]:
        return self._profiler

    def run(self, until: Optional[int] = None) -> int:
        """Run events until the heap empties or the clock passes ``until``."""
        if self._running:
            raise SimulationError("simulator is already running")
        if self._profiler is not None:
            return self._run_profiled(until)
        self._running = True
        self._stopped = False
        try:
            heap = self._heap
            while heap and not self._stopped:
                event = heap[0]
                if event.cancelled:
                    heapq.heappop(heap)
                    event._queued = False
                    self.cancelled_pops += 1
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(heap)
                event._queued = False
                self._now = event.time
                self.events_executed += 1
                event.fn(*event.args)
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False
        return self._now

    def _run_profiled(self, until: Optional[int] = None) -> int:
        """Instrumented twin of :meth:`run` (one timer read per event)."""
        profiler = self._profiler
        self._running = True
        self._stopped = False
        perf = perf_counter_ns
        record = profiler._record
        checkpoint = profiler._checkpoint
        every = profiler.checkpoint_every
        countdown = profiler._countdown
        max_depth = profiler.max_heap_depth
        cancelled_ns = 0
        loop_start = perf()
        if profiler._wall0_ns is None:
            profiler._note_start(self, loop_start)
        t_prev = loop_start
        try:
            heap = self._heap
            while heap and not self._stopped:
                event = heap[0]
                if event.cancelled:
                    heapq.heappop(heap)
                    event._queued = False
                    self.cancelled_pops += 1
                    self._cancelled_in_heap -= 1
                    profiler.cancelled_pops += 1
                    t_now = perf()
                    cancelled_ns += t_now - t_prev
                    t_prev = t_now
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(heap)
                event._queued = False
                self._now = event.time
                self.events_executed += 1
                event.fn(*event.args)
                t_now = perf()
                elapsed = t_now - t_prev
                t_prev = t_now
                entry = record.get(event.fn)
                if entry is None:
                    record[event.fn] = [1, elapsed]
                    if len(record) >= profiler.fold_threshold:
                        profiler._fold()
                else:
                    entry[0] += 1
                    entry[1] += elapsed
                depth = len(heap)
                if depth > max_depth:
                    max_depth = depth
                profiler.events += 1
                countdown -= 1
                if countdown <= 0:
                    checkpoint(self._now)
                    countdown = every
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False
            loop_wall = perf() - loop_start
            profiler.loop_wall_ns += loop_wall
            profiler.cancelled_wall_ns += cancelled_ns
            profiler.max_heap_depth = max_depth
            profiler._countdown = countdown
            profiler._note_run(self)
        return self._now

    def peek_next_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or None if the heap is empty.

        Drains (physically pops) any cancelled events sitting at the top
        of the heap on the way.
        """
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self.cancelled_pops += 1
            self._cancelled_in_heap -= 1
        return heap[0].time if heap else None

    def pending_count(self) -> int:
        """Number of non-cancelled events still queued (O(n))."""
        return sum(1 for event in self._heap if not event.cancelled)
