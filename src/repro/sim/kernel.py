"""Deterministic discrete-event simulation kernel.

The kernel is a classic event-heap design:

- :class:`Event` — a scheduled callback, cancellable in O(1) (lazy deletion).
- :class:`Simulator` — owns the clock (integer nanoseconds) and the heap.

Determinism guarantees:

- Time is an integer; no float drift can reorder events.
- Ties at the same timestamp fire in scheduling order (a monotonically
  increasing sequence number breaks ties).
- Callbacks scheduled *during* an event at the current time run after all
  previously scheduled events at that time.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, running twice, ...)."""


class Event:
    """A single scheduled callback.

    Events are created via :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; users only hold them to :meth:`cancel`
    them or to inspect :attr:`time`.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state}, fn={self.fn!r})"


class Simulator:
    """Event-driven simulator with an integer-nanosecond clock."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._now: int = 0
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self.events_executed: int = 0

    # -- clock ---------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        return self.schedule_at(self._now + int(delay), fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time`` ns."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} ns; now is t={self._now} ns"
            )
        self._seq += 1
        event = Event(int(time), self._seq, fn, args)
        heapq.heappush(self._heap, event)
        return event

    def call_now(self, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time (after pending ties)."""
        return self.schedule_at(self._now, fn, *args)

    # -- execution -------------------------------------------------------

    def stop(self) -> None:
        """Stop the currently running :meth:`run` after the current event."""
        self._stopped = True

    def run(self, until: Optional[int] = None) -> int:
        """Run events until the heap empties or the clock passes ``until``.

        Returns the final simulated time.  When ``until`` is given, the
        clock is advanced to exactly ``until`` even if the last event fired
        earlier (so rate/energy integrations over the window are exact).
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        try:
            heap = self._heap
            while heap and not self._stopped:
                event = heap[0]
                if event.cancelled:
                    heapq.heappop(heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(heap)
                self._now = event.time
                self.events_executed += 1
                event.fn(*event.args)
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False
        return self._now

    def peek_next_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or None if the heap is empty."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def pending_count(self) -> int:
        """Number of non-cancelled events still queued (O(n))."""
        return sum(1 for event in self._heap if not event.cancelled)
