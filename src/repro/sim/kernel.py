"""Deterministic discrete-event simulation kernel.

The kernel is a classic event-heap design:

- :class:`Event` — a scheduled callback, cancellable in O(1) (lazy deletion).
- :class:`Simulator` — owns the clock (integer nanoseconds) and the heap.

Determinism guarantees:

- Time is an integer; no float drift can reorder events.
- Ties at the same timestamp fire in scheduling order (a monotonically
  increasing sequence number breaks ties).
- Callbacks scheduled *during* an event at the current time run after all
  previously scheduled events at that time.

Heap hygiene: cancellation only marks an event, so cancel-heavy
workloads (timer re-arms) would otherwise bloat the heap with dead
entries until they drift to the top.  The simulator counts live
cancelled entries and compacts the heap in place — O(n), order
preserving — once they exceed :attr:`Simulator.COMPACT_FRACTION` of it.

Self-profiling: :meth:`Simulator.set_profiler` swaps the dispatch loop
for an instrumented twin (:meth:`Simulator._run_profiled`) that
attributes wall-clock time to each handler.  The uninstrumented loop in
:meth:`Simulator.run` is untouched — with no profiler attached the only
cost is one ``is None`` check per ``run()`` call, not per event.
"""

from __future__ import annotations

import heapq
from time import perf_counter_ns
from typing import Any, Callable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.profiling.profiler import SimProfiler


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, running twice, ...)."""


class Event:
    """A single scheduled callback.

    Events are created via :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; users only hold them to :meth:`cancel`
    them or to inspect :attr:`time`.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "owner")

    def __init__(
        self,
        time: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        owner: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.owner = owner

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self.owner is not None:
                self.owner._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state}, fn={self.fn!r})"


class Simulator:
    """Event-driven simulator with an integer-nanosecond clock."""

    #: Compact once cancelled entries exceed this fraction of the heap.
    COMPACT_FRACTION = 0.5
    #: ... but never bother below this heap size (compaction is O(n)).
    COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._now: int = 0
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self._profiler: Optional["SimProfiler"] = None
        self.events_executed: int = 0
        #: Cancelled events lazily discarded off the top of the heap.
        self.cancelled_pops: int = 0
        #: In-place heap rebuilds triggered by cancellation pressure.
        self.compactions: int = 0
        #: Cancelled events removed by those compactions.
        self.compacted_events: int = 0
        #: Best-effort count of cancelled events still in the heap.  May
        #: overcount when an already-fired event is cancelled; compaction
        #: re-derives the truth.
        self._cancelled_in_heap: int = 0

    # -- clock ---------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        return self.schedule_at(self._now + int(delay), fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time`` ns."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} ns; now is t={self._now} ns"
            )
        self._seq += 1
        event = Event(int(time), self._seq, fn, args, self)
        heapq.heappush(self._heap, event)
        return event

    def call_now(self, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time (after pending ties)."""
        return self.schedule_at(self._now, fn, *args)

    # -- heap hygiene ----------------------------------------------------

    def heap_size(self) -> int:
        """Entries currently in the heap, cancelled ones included."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Estimated cancelled events still occupying heap slots."""
        return self._cancelled_in_heap

    def _note_cancel(self) -> None:
        self._cancelled_in_heap += 1
        heap = self._heap
        if (
            len(heap) >= self.COMPACT_MIN_SIZE
            and self._cancelled_in_heap >= len(heap) * self.COMPACT_FRACTION
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In place matters: the dispatch loops hold a local alias to the
        heap list, so the list object must survive compaction.
        """
        heap = self._heap
        before = len(heap)
        heap[:] = [event for event in heap if not event.cancelled]
        heapq.heapify(heap)
        self.compactions += 1
        self.compacted_events += before - len(heap)
        self._cancelled_in_heap = 0

    # -- execution -------------------------------------------------------

    def stop(self) -> None:
        """Stop the currently running :meth:`run` after the current event."""
        self._stopped = True

    def set_profiler(self, profiler: Optional["SimProfiler"]) -> None:
        """Attach (or detach, with ``None``) a dispatch-loop profiler.

        Subsequent :meth:`run` calls go through the instrumented loop,
        which attributes wall time per handler into ``profiler``.
        """
        self._profiler = profiler

    @property
    def profiler(self) -> Optional["SimProfiler"]:
        return self._profiler

    def run(self, until: Optional[int] = None) -> int:
        """Run events until the heap empties or the clock passes ``until``.

        Returns the final simulated time.  When ``until`` is given, the
        clock is advanced to exactly ``until`` even if the last event fired
        earlier (so rate/energy integrations over the window are exact).
        """
        if self._running:
            raise SimulationError("simulator is already running")
        if self._profiler is not None:
            return self._run_profiled(until)
        self._running = True
        self._stopped = False
        try:
            heap = self._heap
            while heap and not self._stopped:
                event = heap[0]
                if event.cancelled:
                    heapq.heappop(heap)
                    self.cancelled_pops += 1
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(heap)
                self._now = event.time
                self.events_executed += 1
                event.fn(*event.args)
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False
        return self._now

    def _run_profiled(self, until: Optional[int] = None) -> int:
        """Instrumented twin of :meth:`run`.

        Identical event semantics; additionally attributes wall time per
        handler.  One ``perf_counter_ns()`` reading per iteration: each
        handler is charged the interval from the previous reading to the
        one taken right after it fires (heap pop and the *previous*
        iteration's bookkeeping included), so the per-handler totals plus
        the cancelled-pop bucket telescope to the measured loop total.
        """
        profiler = self._profiler
        self._running = True
        self._stopped = False
        perf = perf_counter_ns
        record = profiler._record
        checkpoint = profiler._checkpoint
        every = profiler.checkpoint_every
        countdown = profiler._countdown
        max_depth = profiler.max_heap_depth
        cancelled_ns = 0
        loop_start = perf()
        if profiler._wall0_ns is None:
            profiler._note_start(self, loop_start)
        t_prev = loop_start
        try:
            heap = self._heap
            while heap and not self._stopped:
                event = heap[0]
                if event.cancelled:
                    heapq.heappop(heap)
                    self.cancelled_pops += 1
                    self._cancelled_in_heap -= 1
                    profiler.cancelled_pops += 1
                    t_now = perf()
                    cancelled_ns += t_now - t_prev
                    t_prev = t_now
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(heap)
                self._now = event.time
                self.events_executed += 1
                event.fn(*event.args)
                t_now = perf()
                elapsed = t_now - t_prev
                t_prev = t_now
                entry = record.get(event.fn)
                if entry is None:
                    record[event.fn] = [1, elapsed]
                    if len(record) >= profiler.fold_threshold:
                        profiler._fold()
                else:
                    entry[0] += 1
                    entry[1] += elapsed
                depth = len(heap)
                if depth > max_depth:
                    max_depth = depth
                profiler.events += 1
                countdown -= 1
                if countdown <= 0:
                    checkpoint(self._now)
                    countdown = every
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False
            loop_wall = perf() - loop_start
            profiler.loop_wall_ns += loop_wall
            profiler.cancelled_wall_ns += cancelled_ns
            profiler.max_heap_depth = max_depth
            profiler._countdown = countdown
            profiler._note_run(self)
        return self._now

    def peek_next_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or None if the heap is empty.

        Drains (physically pops) any cancelled events sitting at the top
        of the heap on the way.
        """
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self.cancelled_pops += 1
            self._cancelled_in_heap -= 1
        return heap[0].time if heap else None

    def pending_count(self) -> int:
        """Number of non-cancelled events still queued (O(n))."""
        return sum(1 for event in self._heap if not event.cancelled)
