"""Time, data-size, and rate units used throughout the simulator.

The simulated clock is an integer number of **nanoseconds**.  Using integers
keeps event ordering exact and reproducible; floating-point time would make
tie-breaking depend on accumulated rounding error.

All public APIs accept and return plain ints (ns) or floats (rates), and the
helpers here are the single place unit arithmetic lives.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

NS: int = 1
US: int = 1_000
MS: int = 1_000_000
SEC: int = 1_000_000_000

# --- data ------------------------------------------------------------------

BYTE: int = 1
KB: int = 1_000
MB: int = 1_000_000
GB: int = 1_000_000_000

BITS_PER_BYTE: int = 8


def ns_to_us(ns: int) -> float:
    """Convert integer nanoseconds to (float) microseconds."""
    return ns / US


def ns_to_ms(ns: int) -> float:
    """Convert integer nanoseconds to (float) milliseconds."""
    return ns / MS


def ns_to_sec(ns: int) -> float:
    """Convert integer nanoseconds to (float) seconds."""
    return ns / SEC


def us(value: float) -> int:
    """Microseconds -> integer nanoseconds (rounded)."""
    return round(value * US)


def ms(value: float) -> int:
    """Milliseconds -> integer nanoseconds (rounded)."""
    return round(value * MS)


def sec(value: float) -> int:
    """Seconds -> integer nanoseconds (rounded)."""
    return round(value * SEC)


def transmission_delay_ns(size_bytes: int, bandwidth_bps: float) -> int:
    """Serialization delay of ``size_bytes`` on a ``bandwidth_bps`` link.

    Returns an integer number of nanoseconds, at least 1 ns for any
    non-empty transfer so that ordering on a link is preserved.
    """
    if size_bytes <= 0:
        return 0
    delay = size_bytes * BITS_PER_BYTE / bandwidth_bps * SEC
    return max(1, round(delay))


def cycles_to_ns(cycles: float, freq_hz: float) -> int:
    """Time to execute ``cycles`` at ``freq_hz``, as integer ns (>= 1)."""
    if cycles <= 0:
        return 0
    return max(1, round(cycles / freq_hz * SEC))


def ns_to_cycles(duration_ns: int, freq_hz: float) -> float:
    """How many cycles elapse in ``duration_ns`` at ``freq_hz``."""
    if duration_ns <= 0:
        return 0.0
    return duration_ns * freq_hz / SEC


def ghz(value: float) -> float:
    """GHz -> Hz."""
    return value * 1e9


def mhz(value: float) -> float:
    """MHz -> Hz."""
    return value * 1e6


def gbps(value: float) -> float:
    """Gigabits per second -> bits per second."""
    return value * 1e9


def mbps(value: float) -> float:
    """Megabits per second -> bits per second."""
    return value * 1e6
