"""Trace recording: named time-series channels sampled during a run.

Two channel flavours:

- :class:`EventChannel` — append ``(time, value)`` points (e.g. frequency
  changes, C-state transitions).
- :class:`CounterChannel` — accumulate a quantity (e.g. received bytes) and
  later bin it into fixed-width rate buckets for bandwidth plots.

Used by the Figure 4 / Figure 8-9 snapshot reproductions and by tests that
assert on temporal behaviour.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Tuple


class EventChannel:
    """Append-only ``(time_ns, value)`` series."""

    def __init__(self, name: str):
        self.name = name
        self.times: List[int] = []
        self.values: List[float] = []

    def record(self, time_ns: int, value: float) -> None:
        """Append a sample.  Times must be non-decreasing."""
        if self.times and time_ns < self.times[-1]:
            raise ValueError(
                f"channel {self.name!r}: time {time_ns} < last {self.times[-1]}"
            )
        self.times.append(time_ns)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def value_at(self, time_ns: int, default: float = 0.0) -> float:
        """Value of the most recent sample at or before ``time_ns``."""
        idx = bisect_right(self.times, time_ns) - 1
        if idx < 0:
            return default
        return self.values[idx]

    def step_series(
        self, start_ns: int, end_ns: int, step_ns: int, default: float = 0.0
    ) -> List[Tuple[int, float]]:
        """Sample the channel as a step function on a regular grid."""
        if step_ns <= 0:
            raise ValueError("step_ns must be positive")
        out = []
        t = start_ns
        while t <= end_ns:
            out.append((t, self.value_at(t, default)))
            t += step_ns
        return out

    def time_weighted_mean(self, start_ns: int, end_ns: int, default: float = 0.0) -> float:
        """Time-weighted average of the step function over [start, end)."""
        if end_ns <= start_ns:
            return self.value_at(start_ns, default)
        total = 0.0
        t = start_ns
        value = self.value_at(start_ns, default)
        idx = bisect_right(self.times, start_ns)
        while idx < len(self.times) and self.times[idx] < end_ns:
            total += value * (self.times[idx] - t)
            t = self.times[idx]
            value = self.values[idx]
            idx += 1
        total += value * (end_ns - t)
        return total / (end_ns - start_ns)


class CounterChannel:
    """Accumulates point increments; supports binning into rates."""

    def __init__(self, name: str):
        self.name = name
        self.times: List[int] = []
        self.amounts: List[float] = []
        self.total: float = 0.0

    def add(self, time_ns: int, amount: float) -> None:
        """Record an increment of ``amount`` at ``time_ns``."""
        if self.times and time_ns < self.times[-1]:
            raise ValueError(
                f"channel {self.name!r}: time {time_ns} < last {self.times[-1]}"
            )
        self.times.append(time_ns)
        self.amounts.append(amount)
        self.total += amount

    def __len__(self) -> int:
        return len(self.times)

    def binned(self, start_ns: int, end_ns: int, bin_ns: int) -> List[float]:
        """Sum of increments per ``bin_ns``-wide bucket over [start, end)."""
        if bin_ns <= 0:
            raise ValueError("bin_ns must be positive")
        n_bins = max(1, (end_ns - start_ns + bin_ns - 1) // bin_ns)
        bins = [0.0] * n_bins
        for time_ns, amount in zip(self.times, self.amounts):
            if time_ns < start_ns or time_ns >= end_ns:
                continue
            bins[(time_ns - start_ns) // bin_ns] += amount
        return bins

    def rate_series(
        self, start_ns: int, end_ns: int, bin_ns: int
    ) -> List[Tuple[int, float]]:
        """Per-bin rate (amount per second) series, labelled by bin start."""
        bins = self.binned(start_ns, end_ns, bin_ns)
        scale = 1e9 / bin_ns
        return [(start_ns + i * bin_ns, b * scale) for i, b in enumerate(bins)]


class TraceRecorder:
    """A registry of named channels attached to one simulation run."""

    def __init__(self) -> None:
        self._events: Dict[str, EventChannel] = {}
        self._counters: Dict[str, CounterChannel] = {}

    def event_channel(self, name: str) -> EventChannel:
        channel = self._events.get(name)
        if channel is None:
            channel = EventChannel(name)
            self._events[name] = channel
        return channel

    def counter_channel(self, name: str) -> CounterChannel:
        channel = self._counters.get(name)
        if channel is None:
            channel = CounterChannel(name)
            self._counters[name] = channel
        return channel

    def has_channel(self, name: str) -> bool:
        return name in self._events or name in self._counters

    def channel_names(self) -> List[str]:
        return sorted(list(self._events) + list(self._counters))


class NullTraceRecorder(TraceRecorder):
    """A recorder that drops everything — used for speed in large sweeps."""

    class _NullEvent(EventChannel):
        def record(self, time_ns: int, value: float) -> None:  # noqa: D102
            pass

    class _NullCounter(CounterChannel):
        def add(self, time_ns: int, amount: float) -> None:  # noqa: D102
            self.total += amount

    def event_channel(self, name: str) -> EventChannel:
        channel = self._events.get(name)
        if channel is None:
            channel = self._NullEvent(name)
            self._events[name] = channel
        return channel

    def counter_channel(self, name: str) -> CounterChannel:
        channel = self._counters.get(name)
        if channel is None:
            channel = self._NullCounter(name)
            self._counters[name] = channel
        return channel
