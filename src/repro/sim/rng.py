"""Seeded random-number streams.

Every stochastic component of an experiment (burst jitter, response sizes,
disk latency, key popularity, ...) draws from its own named child stream of
a single experiment seed.  This keeps runs reproducible *and* keeps streams
independent: adding a draw to one component never perturbs another.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``root_seed`` and ``name``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """A factory of named, independently seeded ``random.Random`` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng

    def names(self):
        """Names of the streams created so far, in creation order."""
        return list(self._streams)
