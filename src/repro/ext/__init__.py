"""Extensions beyond the paper's core system.

- :mod:`repro.ext.slack` — a Pegasus/TimeTrader-style latency-slack
  controller (the paper's Section 7 pointer to [12, 34]);
- :mod:`repro.ext.adrenaline` — an Adrenaline-style baseline (the
  Section 8 related work): software query detection plus fast per-core
  on-chip voltage regulators.
"""

from repro.ext.adrenaline import AdrenalineServerNode
from repro.ext.slack import SlackController

__all__ = ["AdrenalineServerNode", "SlackController"]
