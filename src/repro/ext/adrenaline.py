"""An Adrenaline-style baseline (Hsu et al., HPCA 2015 — the paper's [32]).

Section 8 of the NCAP paper contrasts itself with Adrenaline, which

- identifies latency-critical requests **in a network-stack software
  layer** (so detection happens after DMA + interrupt + SoftIRQ, not at
  wire arrival), and
- boosts V/F **per query** using special on-chip voltage regulators and
  clock-delivery circuits that can switch in tens of nanoseconds,
  unboosting when the query completes.

This module implements that design on our substrate so the comparison can
be measured instead of argued: per-core V/F domains with a near-instant
DVFS timing model (the on-chip VR), SoftIRQ-context query detection (with
its per-packet cycle cost, like ncap.sw), per-core boost on query start,
and unboost when a core's last outstanding latency-critical query
finishes.  No NIC changes at all — that is the point of the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.apps.apache import ApacheApp, ApacheProfile
from repro.apps.memcached import MemcachedApp, MemcachedProfile
from repro.core.req_monitor import ReqMonitor
from repro.cpu.config import ProcessorConfig
from repro.cpu.multidomain import MultiDomainProcessor
from repro.net.driver import NICDriver
from repro.net.interrupts import ModerationConfig
from repro.net.link import LinkPort
from repro.net.multiqueue import MultiQueueNIC
from repro.net.packet import Frame
from repro.oskernel.cpufreq import CpufreqDriver
from repro.oskernel.cpuidle import CpuidleDriver, MenuGovernor
from repro.oskernel.irq import IRQController
from repro.oskernel.netstack import NetStackCosts
from repro.oskernel.scheduler import Scheduler
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class AdrenalineConfig:
    """Tunables of the Adrenaline-style baseline."""

    #: On-chip VR switching time (tens of ns in the Adrenaline paper).
    vr_switch_ns: int = 100
    #: SoftIRQ cycles per packet for software query classification.
    inspect_cycles_per_packet: float = 1_500.0
    #: P-state used when a core has no outstanding boosted queries.
    idle_pstate: int = 14
    templates: tuple = (b"GET", b"get")


class AdrenalineServerNode:
    """Per-query V/F boosting with software detection (no NIC changes)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        app: str,
        rng: RngRegistry,
        trace: Optional[TraceRecorder] = None,
        processor: ProcessorConfig = ProcessorConfig(),
        netstack: NetStackCosts = NetStackCosts(),
        moderation: ModerationConfig = ModerationConfig(),
        config: AdrenalineConfig = AdrenalineConfig(),
        apache_profile: Optional[ApacheProfile] = None,
        memcached_profile: Optional[MemcachedProfile] = None,
    ):
        self.sim = sim
        self.name = name
        self.config = config
        # Fast per-core VRs: near-instant transitions, no shared V ramp.
        fast_processor = replace(
            processor,
            v_ramp_rate_mv_per_us=1e9,  # the on-chip VR swings V instantly
            pll_relock_us=config.vr_switch_ns / 1000,
            initial_pstate=config.idle_pstate,
        )
        self.processor = MultiDomainProcessor(
            sim, fast_processor, trace=trace, name=f"{name}.cpu"
        )
        self.scheduler = Scheduler(sim, self.processor)
        self.irq = IRQController(sim, self.processor)
        self.cpuidle = CpuidleDriver(MenuGovernor(self.processor.cstates))
        self.scheduler.idle_hook = self.cpuidle.on_core_idle
        self.cpufreq: List[CpufreqDriver] = [
            CpufreqDriver(sim, domain) for domain in self.processor.domains
        ]

        n_queues = processor.n_cores
        self.nic = MultiQueueNIC(
            sim, name=name, n_queues=n_queues, moderation=moderation, trace=trace
        )
        self.monitor = ReqMonitor(config.templates)

        app_rng = rng.stream(f"{name}.{app}")
        if app == "apache":
            self.app = ApacheApp(
                sim, self.scheduler, None, netstack, app_rng, name=name,
                profile=apache_profile or ApacheProfile(),
            )
        elif app == "memcached":
            self.app = MemcachedApp(
                sim, self.scheduler, None, netstack, app_rng, name=name,
                profile=memcached_profile or MemcachedProfile(),
            )
        else:
            raise ValueError(f"unknown app {app!r}")

        self._outstanding: Dict[int, int] = {i: 0 for i in range(n_queues)}
        self._req_core: Dict[int, int] = {}
        self.boosts = 0
        self.unboosts = 0
        self.drivers: List[NICDriver] = []
        for i, queue in enumerate(self.nic.queues):
            driver = NICDriver(sim, queue, self.irq, netstack, core_id=i)  # type: ignore[arg-type]
            # Software classification in SoftIRQ context, with its cost.
            driver.extra_rx_cycles_per_packet += config.inspect_cycles_per_packet
            driver.packet_sink = self._make_sink(i)
            self.drivers.append(driver)
        self.app._driver = self.drivers[0]

    # -- per-query boosting --------------------------------------------------

    def _make_sink(self, core_id: int):
        def sink(frame: Frame) -> None:
            boosted = False
            if frame.kind == "request" and self.monitor.inspect(frame):
                boosted = True
                self._query_started(core_id, frame)
            self.app.affinity_hint = core_id
            try:
                self.app.on_packet(frame)
            finally:
                self.app.affinity_hint = None
            if boosted and frame.req_id is not None:
                self._req_core[frame.req_id] = core_id

        return sink

    def _query_started(self, core_id: int, frame: Frame) -> None:
        self._outstanding[core_id] += 1
        if self._outstanding[core_id] == 1:
            self.boosts += 1
            self.cpufreq[core_id].set_pstate(0)

    def _query_finished(self, req_id: int) -> None:
        core_id = self._req_core.pop(req_id, None)
        if core_id is None:
            return
        self._outstanding[core_id] -= 1
        if self._outstanding[core_id] <= 0:
            self._outstanding[core_id] = 0
            self.unboosts += 1
            self.cpufreq[core_id].set_pstate(self.config.idle_pstate)

    # -- link endpoint ------------------------------------------------------

    def receive_frame(self, frame: Frame) -> None:
        self.nic.receive_frame(frame)

    def attach_port(self, port: LinkPort) -> None:
        self.nic.attach_port(port)

    def start(self) -> None:
        # Hook query completion: a response leaving the app ends its query.
        original = self.app._send_response

        def send_and_unboost(frame: Frame, size: int, track=None) -> None:
            original(frame, size, track)
            if frame.req_id is not None:
                self._query_finished(frame.req_id)

        self.app._send_response = send_and_unboost  # type: ignore[method-assign]

    def stop(self) -> None:
        pass

    def energy_report(self):
        return self.processor.energy_report()
