"""A latency-slack controller in the spirit of Pegasus / TimeTrader.

Section 7 of the paper: "NCAP exhibit[s] some slack between the achieved
95th-percentile latency and the SLA.  This slack can be exploited for
further reduction of energy consumption using other techniques [12, 34]."

This controller is that technique, implemented the way Pegasus operates:
a feedback loop over *server-observed* request latencies that adjusts a
performance cap (``scaling_max_freq``) on the cpufreq driver:

- p95 comfortably below ``target`` x SLA  → deepen the cap one step
  (cores may no longer run at the fastest states);
- p95 above ``guard`` x SLA               → lift the cap entirely
  (full P0 available again, the "panic" action).

NCAP continues to work underneath: its IT_HIGH boost simply saturates at
the capped state, so the two mechanisms compose exactly as the paper
suggests.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.oskernel.cpufreq import CpufreqDriver
from repro.oskernel.irq import IRQController
from repro.oskernel.timers import PeriodicKernelTask
from repro.sim.kernel import Simulator
from repro.sim.units import MS


class SlackController:
    """Feedback loop: latency slack -> performance cap."""

    def __init__(
        self,
        sim: Simulator,
        cpufreq: CpufreqDriver,
        irq: IRQController,
        sla_ns: int,
        target: float = 0.65,
        guard: float = 0.90,
        period_ns: int = 50 * MS,
        min_samples: int = 50,
        overhead_cycles: float = 20_000.0,
        core_id: int = 0,
    ):
        if not 0 < target < guard <= 1.5:
            raise ValueError("need 0 < target < guard")
        self._sim = sim
        self._cpufreq = cpufreq
        self.sla_ns = sla_ns
        self.target = target
        self.guard = guard
        self.min_samples = min_samples
        self._window: List[int] = []
        self._task = PeriodicKernelTask(
            sim, irq, period_ns, overhead_cycles, self._adjust,
            core_id=core_id, name="slack-ctl",
        )
        self.steps_down = 0
        self.panics = 0
        self.last_p95_ns: Optional[float] = None

    # -- wiring -----------------------------------------------------------

    def observe(self, latency_ns: int) -> None:
        """Feed one server-observed request latency (wire this into
        ``ServerApp.latency_listeners``)."""
        self._window.append(latency_ns)

    def start(self) -> None:
        self._task.start()

    def stop(self) -> None:
        self._task.stop()

    # -- control law ----------------------------------------------------------

    def _adjust(self) -> None:
        if len(self._window) < self.min_samples:
            self._window.clear()
            return
        p95 = float(np.percentile(np.asarray(self._window, dtype=np.float64), 95))
        self._window.clear()
        self.last_p95_ns = p95
        table = self._cpufreq.package.pstates
        if p95 > self.guard * self.sla_ns:
            # Panic: restore the full frequency range and go there now.
            self.panics += 1
            self._cpufreq.set_cap(0)
            self._cpufreq.set_pstate(0)
        elif p95 < self.target * self.sla_ns:
            cap = self._cpufreq.cap_index
            if cap < table.max_index:
                self.steps_down += 1
                self._cpufreq.set_cap(cap + 1)
