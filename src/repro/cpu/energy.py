"""Per-core energy metering.

A :class:`PowerMeter` is attached to each core.  Cores call
:meth:`PowerMeter.set_mode` on every power-relevant transition (job start /
completion, C-state entry/exit, DVFS halt, voltage/frequency change); the
meter integrates ``power x dt`` segment by segment and also accumulates
per-mode residency, which Figure 4(b) style analyses need (time in C1/C3/C6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cpu.power import PowerMode, PowerModel
from repro.sim.kernel import Simulator


@dataclass
class EnergyReport:
    """Summary of one meter (or an aggregate of several)."""

    energy_j: float = 0.0
    residency_ns: Dict[str, int] = field(default_factory=dict)
    energy_by_mode_j: Dict[str, float] = field(default_factory=dict)

    def merge(self, other: "EnergyReport") -> "EnergyReport":
        merged = EnergyReport(energy_j=self.energy_j + other.energy_j)
        for src in (self.residency_ns, other.residency_ns):
            for key, value in src.items():
                merged.residency_ns[key] = merged.residency_ns.get(key, 0) + value
        for src in (self.energy_by_mode_j, other.energy_by_mode_j):
            for key, value in src.items():
                merged.energy_by_mode_j[key] = merged.energy_by_mode_j.get(key, 0.0) + value
        return merged


class PowerMeter:
    """Integrates one core's power over time."""

    def __init__(self, sim: Simulator, model: PowerModel):
        self._sim = sim
        self._model = model
        self._mode: PowerMode = PowerMode.IDLE_POLL
        self._voltage: float = 0.0
        self._freq_hz: float = 0.0
        self._segment_start: int = sim.now
        self._power_w: float = 0.0
        self._started = False
        self.energy_j: float = 0.0
        self.residency_ns: Dict[str, int] = {}
        self.energy_by_mode_j: Dict[str, float] = {}

    def start(self, mode: PowerMode, voltage: float, freq_hz: float) -> None:
        """Begin metering (call once when the core comes up)."""
        self._mode = mode
        self._voltage = voltage
        self._freq_hz = freq_hz
        self._segment_start = self._sim.now
        self._power_w = self._model.core_power_w(mode, voltage, freq_hz)
        self._started = True

    def set_mode(
        self,
        mode: PowerMode,
        voltage: Optional[float] = None,
        freq_hz: Optional[float] = None,
    ) -> None:
        """Close the current segment and open a new one."""
        if not self._started:
            raise RuntimeError("PowerMeter.start() was never called")
        self._close_segment()
        self._mode = mode
        if voltage is not None:
            self._voltage = voltage
        if freq_hz is not None:
            self._freq_hz = freq_hz
        self._power_w = self._model.core_power_w(self._mode, self._voltage, self._freq_hz)

    def _close_segment(self) -> None:
        now = self._sim.now
        dt_ns = now - self._segment_start
        if dt_ns > 0:
            joules = self._power_w * dt_ns * 1e-9
            self.energy_j += joules
            key = self._mode.value
            self.residency_ns[key] = self.residency_ns.get(key, 0) + dt_ns
            self.energy_by_mode_j[key] = self.energy_by_mode_j.get(key, 0.0) + joules
        self._segment_start = now

    def sync(self) -> None:
        """Book the open segment up to ``sim.now`` without changing mode.

        Cumulative ``energy_j`` / ``residency_ns`` / ``energy_by_mode_j``
        are current after this call; the next ``set_mode`` then closes a
        zero-length segment, so syncing never perturbs the totals.
        """
        if self._started:
            self._close_segment()

    @property
    def mode(self) -> PowerMode:
        return self._mode

    def report(self) -> EnergyReport:
        """Finalize the open segment and return totals so far."""
        if self._started:
            self._close_segment()
        return EnergyReport(
            energy_j=self.energy_j,
            residency_ns=dict(self.residency_ns),
            energy_by_mode_j=dict(self.energy_by_mode_j),
        )
