"""Processor performance states (ACPI P-states) and DVFS transition timing.

Table 1 of the paper configures 15 P-states spanning 0.65 V / 0.8 GHz to
1.2 V / 3.1 GHz (an Intel i7-3770-like part).  P0 is the highest-performance
state; larger indices are deeper (slower, lower-voltage) states.

Figure 1 of the paper defines the transition timing model reproduced by
:class:`DVFSTimingModel`:

- To **raise** V/F, voltage ramps up first at 6.25 mV/µs while the core keeps
  running at the old frequency; then the PLL relocks (~5 µs) during which the
  core must halt; then the new frequency takes effect.
- To **lower** V/F, the PLL relocks first (~5 µs halt), then voltage drops
  (no stall attributable to the voltage change).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.sim.units import US, ghz


@dataclass(frozen=True)
class PState:
    """One performance state: an (index, frequency, voltage) operating point."""

    index: int
    freq_hz: float
    voltage: float

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.voltage <= 0:
            raise ValueError("voltage must be positive")


class PStateTable:
    """An ordered table of P-states, index 0 = highest performance."""

    def __init__(self, states: Sequence[PState]):
        if not states:
            raise ValueError("P-state table must not be empty")
        for i, state in enumerate(states):
            if state.index != i:
                raise ValueError(f"P-state at position {i} has index {state.index}")
        freqs = [s.freq_hz for s in states]
        if any(freqs[i] <= freqs[i + 1] for i in range(len(freqs) - 1)):
            raise ValueError("frequencies must strictly decrease with index")
        self._states: Tuple[PState, ...] = tuple(states)

    @classmethod
    def linear(
        cls,
        count: int = 15,
        f_max_hz: float = ghz(3.1),
        f_min_hz: float = ghz(0.8),
        v_max: float = 1.2,
        v_min: float = 0.65,
    ) -> "PStateTable":
        """Build a table with linearly spaced F and V (Table 1 defaults)."""
        if count < 2:
            raise ValueError("need at least two P-states")
        states = []
        for i in range(count):
            frac = i / (count - 1)
            states.append(
                PState(
                    index=i,
                    freq_hz=f_max_hz - frac * (f_max_hz - f_min_hz),
                    voltage=v_max - frac * (v_max - v_min),
                )
            )
        return cls(states)

    def __len__(self) -> int:
        return len(self._states)

    def __getitem__(self, index: int) -> PState:
        return self._states[index]

    def __iter__(self):
        return iter(self._states)

    @property
    def p0(self) -> PState:
        """The highest-performance state."""
        return self._states[0]

    @property
    def deepest(self) -> PState:
        """The lowest-performance (deepest) state."""
        return self._states[-1]

    @property
    def max_index(self) -> int:
        return len(self._states) - 1

    def index_for_frequency(self, freq_hz: float) -> int:
        """Index of the slowest P-state with frequency >= ``freq_hz``.

        Mirrors cpufreq's CPUFREQ_RELATION_L: pick the lowest frequency at
        or above the target (clamped to the table's range).
        """
        if freq_hz >= self._states[0].freq_hz:
            return 0
        for i in range(len(self._states) - 1, -1, -1):
            if self._states[i].freq_hz >= freq_hz:
                return i
        return 0

    def clamp_index(self, index: int) -> int:
        return max(0, min(self.max_index, index))


@dataclass(frozen=True)
class DVFSTimingModel:
    """Timing of P-state transitions (Figure 1 of the paper).

    ``plan(old, new)`` returns ``(ramp_ns, halt_ns)``:

    - ``ramp_ns`` — time spent ramping voltage *before* the frequency switch,
      during which cores continue running at the old frequency.
    - ``halt_ns`` — PLL relock window during which every core in the clock
      domain must halt.
    """

    v_ramp_rate_mv_per_us: float = 6.25
    pll_relock_ns: int = 5 * US

    def plan(self, old: PState, new: PState) -> Tuple[int, int]:
        if new.voltage > old.voltage:
            delta_mv = (new.voltage - old.voltage) * 1000.0
            ramp_ns = round(delta_mv / self.v_ramp_rate_mv_per_us * US)
        else:
            ramp_ns = 0
        return ramp_ns, self.pll_relock_ns

    def total_latency_ns(self, old: PState, new: PState) -> int:
        """End-to-end transition latency (ramp + halt)."""
        ramp_ns, halt_ns = self.plan(old, new)
        return ramp_ns + halt_ns
