"""McPAT-like analytic power model, calibrated to Table 1 of the paper.

Anchors (per core unless noted):

- package max power across P-states: 12 W (P14, 0.65 V/0.8 GHz) to 80 W
  (P0, 1.2 V/3.1 GHz) for 4 cores;
- core static power at C1: 1.92 W (@0.65 V) to 7.11 W (@1.2 V);
- core static power at C3: 1.64 W (state held at 0.6 V);
- C6: power gated, ~0 W.

The model:

- dynamic power = ``k · V² · f`` scaled by an *activity factor* (1.0 when
  retiring instructions, a small "poll" factor for the C0 idle loop);
- static power is linear in V between the two C1 anchors (a fair local
  approximation of the exponential leakage/V curve over 0.65–1.2 V);
- C-state power follows the Section 5 assumptions verbatim.

With the default calibration a 4-core package draws ~80 W at P0 fully busy
and ~11.6 W at the deepest P-state fully busy, matching Table 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sim.units import ghz


class PowerMode(enum.Enum):
    """Instantaneous power mode of one core."""

    RUN = "run"            # retiring instructions
    IDLE_POLL = "idle"     # C0 idle loop (NOP polling in cpu_idle_loop)
    STALL = "stall"        # halted for PLL relock (clock stopped)
    WAKING = "waking"      # exiting a C-state (clock ramping)
    C1 = "C1"
    C3 = "C3"
    C6 = "C6"


SLEEP_MODES = (PowerMode.C1, PowerMode.C3, PowerMode.C6)


@dataclass(frozen=True)
class PowerModelConfig:
    """Calibration anchors for :class:`PowerModel`."""

    static_w_at_v_low: float = 1.92     # core static power @ v_low
    static_w_at_v_high: float = 7.11    # core static power @ v_high
    v_low: float = 0.65
    v_high: float = 1.2
    core_max_power_w: float = 20.0      # core total at (v_high, f_max), busy
    f_max_hz: float = ghz(3.1)
    # C0 idle-loop dynamic activity factor.  The kernel's cpu_idle_loop
    # polls (NOP while-loop, Section 2.1 of the paper) with the pipeline
    # clocked, so a C0-parked core burns a large fraction of busy dynamic
    # power — which is exactly why disabling C-states (perf/ond) wastes so
    # much energy at low utilization in the paper's Figure 8.
    poll_activity: float = 0.55
    c3_static_w: float = 1.64           # state retained at 0.6 V
    c6_static_w: float = 0.0


class PowerModel:
    """Maps (mode, voltage, frequency) to core power in watts."""

    def __init__(self, config: PowerModelConfig = PowerModelConfig()):
        self.config = config
        c = config
        dyn_at_max = c.core_max_power_w - c.static_w_at_v_high
        if dyn_at_max <= 0:
            raise ValueError("core_max_power_w must exceed static power at v_high")
        # k such that k * v_high^2 * f_max = dyn_at_max (f in GHz for sane k)
        self._k = dyn_at_max / (c.v_high ** 2 * c.f_max_hz / 1e9)
        dv = c.v_high - c.v_low
        if dv <= 0:
            raise ValueError("v_high must exceed v_low")
        self._static_slope = (c.static_w_at_v_high - c.static_w_at_v_low) / dv

    def dynamic_power_w(self, voltage: float, freq_hz: float, activity: float = 1.0) -> float:
        """Switching power: ``k · V² · f · activity``."""
        if activity < 0:
            raise ValueError("activity must be non-negative")
        return self._k * voltage * voltage * (freq_hz / 1e9) * activity

    def static_power_w(self, voltage: float) -> float:
        """Leakage power at ``voltage`` (linear interpolation, clamped >= 0)."""
        c = self.config
        return max(0.0, c.static_w_at_v_low + self._static_slope * (voltage - c.v_low))

    def core_power_w(self, mode: PowerMode, voltage: float, freq_hz: float) -> float:
        """Instantaneous power of one core in ``mode`` at (V, f)."""
        c = self.config
        if mode is PowerMode.RUN:
            return self.dynamic_power_w(voltage, freq_hz) + self.static_power_w(voltage)
        if mode in (PowerMode.IDLE_POLL, PowerMode.WAKING):
            return (
                self.dynamic_power_w(voltage, freq_hz, c.poll_activity)
                + self.static_power_w(voltage)
            )
        if mode is PowerMode.STALL:
            return self.static_power_w(voltage)  # clock halted
        if mode is PowerMode.C1:
            return self.static_power_w(voltage)  # clock off, V unchanged
        if mode is PowerMode.C3:
            return c.c3_static_w
        if mode is PowerMode.C6:
            return c.c6_static_w
        raise ValueError(f"unknown power mode: {mode!r}")
