"""Preemptible core execution engine.

A :class:`Core` executes :class:`Job`\\ s — cycle budgets whose wall-clock
duration depends on the clock-domain frequency at each instant.  The engine
supports everything the paper's mechanisms need:

- **Preemption** — hardirq handlers preempt the running job (a job stack),
  so governor/driver overhead steals real cycles from application work.
- **Mid-job frequency changes** — remaining cycles are recomputed and the
  completion event rescheduled whenever the clock domain retunes.
- **PLL-relock stalls** — :meth:`Core.stall` pauses retirement for the halt
  window of a DVFS transition (Figure 1 of the paper).
- **C-states** — :meth:`Core.enter_sleep` / :meth:`Core.wake` model sleep
  entry and the exit latency of C1/C3/C6; work dispatched to a sleeping core
  implicitly wakes it and pays the exit latency.

Power bookkeeping is delegated to the attached :class:`PowerMeter`.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.cpu.cstates import CState
from repro.cpu.energy import PowerMeter
from repro.cpu.power import PowerMode
from repro.sim.kernel import Event, Simulator
from repro.sim.units import cycles_to_ns, ns_to_cycles
from repro.telemetry import Counter, CStateTransition


class CoreBusyError(RuntimeError):
    """Raised when a non-preempting dispatch hits a running core."""


class CoreState(enum.Enum):
    IDLE = "idle"        # C0, no job (polling loop)
    RUN = "run"          # executing a job
    STALL = "stall"      # halted for PLL relock
    SLEEP = "sleep"      # in a C-state
    WAKING = "waking"    # exiting a C-state


class ExecAccount:
    """Execution account a :class:`Job` can carry for attribution.

    The core charges it as the job runs: wall time spent retiring
    (``cpu_ns``), cycles retired (``cycles``), PLL-relock halts that hit
    the job while it was current (``stall_ns``), and when/where the job
    first ran.  ``cpu_ns - cycles/F_max`` is then the DVFS penalty
    (sub-nominal-frequency slowdown) and ``span - cpu_ns - stall_ns`` the
    preemption time — the decomposition
    :class:`repro.analysis.attribution.AttributionSink` performs.
    """

    __slots__ = ("first_start_ns", "first_core", "cpu_ns", "cycles", "stall_ns")

    def __init__(self) -> None:
        self.first_start_ns: Optional[int] = None
        self.first_core: Optional[int] = None
        self.cpu_ns: int = 0
        self.cycles: float = 0.0
        self.stall_ns: int = 0


class Job:
    """A unit of work measured in core cycles."""

    __slots__ = ("name", "total_cycles", "remaining", "on_complete", "kernel", "account")

    def __init__(
        self,
        cycles: float,
        on_complete: Optional[Callable[[], None]] = None,
        name: str = "",
        kernel: bool = False,
    ):
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self.name = name
        self.total_cycles = float(cycles)
        self.remaining = float(cycles)
        self.on_complete = on_complete
        self.kernel = kernel
        #: Optional :class:`ExecAccount`; None keeps the hot path at a
        #: single attribute check per charge point.
        self.account: Optional[ExecAccount] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Job({self.name!r}, remaining={self.remaining:.0f})"


class Core:
    """One processor core inside a clock/voltage domain (its package)."""

    def __init__(self, sim: Simulator, core_id: int, package: "ClockDomain", meter: PowerMeter):
        self._sim = sim
        self.core_id = core_id
        self._package = package
        self.meter = meter
        self.state: CoreState = CoreState.IDLE
        self.on_idle: Optional[Callable[["Core"], None]] = None
        #: Optional fast-path pull hook installed by the scheduler: on job
        #: completion the core asks for the next queued job directly,
        #: skipping the zero-length IDLE_POLL meter segment and the
        #: ``on_idle`` -> dispatch round trip (the top cost in
        #: ``small_cluster`` profiles).  Idle-period statistics still see a
        #: zero-length idle period, exactly as the round trip produced.
        self.take_next: Optional[Callable[[], Optional[Job]]] = None
        #: Optional observer fired when an idle period ends (just before the
        #: meter switches to RUN), with the realized idle duration in ns.
        #: Installed by the energy-attribution accounting; like ``take_next``
        #: and ``job.account``, the disabled cost is one attribute check.
        self.on_idle_end: Optional[Callable[["Core", int], None]] = None

        self._current: Optional[Job] = None
        self._stack: List[Job] = []
        self._pending: Deque[Job] = deque()
        self._completion: Optional[Event] = None
        self._stall_end: Optional[Event] = None
        self._stall_started: int = 0
        self._stall_account: Optional[ExecAccount] = None
        self._wake_end: Optional[Event] = None
        self._run_started: int = 0
        self._cumulative_busy_ns: int = 0
        self._cstate: Optional[CState] = None
        self._idle_since: int = sim.now
        self.cstate_entries: Dict[str, int] = {}
        self.wake_extra_ns: int = 0  # optional MWAIT/MONITOR overhead
        # Idle-period bookkeeping consumed by the cpuidle governors.  The
        # boot-time idle period is not counted (it would record a degenerate
        # duration and poison the governor's history).
        self.last_idle_duration_ns: int = 0
        self.idle_periods_completed: int = 0
        self._boot_idle = True
        self._cstate_probe = package.telemetry.probe("cpu.cstate")
        self._entry_counters: Dict[str, Counter] = {}

        meter.start(PowerMode.IDLE_POLL, package.voltage, package.frequency_hz)

    # -- introspection -----------------------------------------------------

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def package(self) -> "ClockDomain":
        return self._package

    @property
    def is_idle(self) -> bool:
        """True when the core can accept a job without preempting/queueing."""
        return self.state is CoreState.IDLE

    @property
    def is_sleeping(self) -> bool:
        return self.state is CoreState.SLEEP

    @property
    def current_cstate(self) -> Optional[CState]:
        """The C-state the core is in (or waking from), if any."""
        return self._cstate

    @property
    def current_job(self) -> Optional[Job]:
        return self._current

    @property
    def idle_since(self) -> int:
        """Time the core last became idle (valid while IDLE/SLEEP/WAKING)."""
        return self._idle_since

    def busy_ns_total(self) -> int:
        """Cumulative busy time (RUN state), including the open segment."""
        total = self._cumulative_busy_ns
        if self.state is CoreState.RUN:
            total += self._sim.now - self._run_started
        return total

    def queue_depth(self) -> int:
        """Jobs waiting on this core (pending handlers + preempted stack)."""
        return len(self._pending) + len(self._stack)

    # -- dispatch -----------------------------------------------------------

    def dispatch(self, job: Job, preempt: bool = False) -> None:
        """Hand ``job`` to this core.

        - IDLE: starts immediately.
        - RUN: preempts the running job when ``preempt`` else raises
          :class:`CoreBusyError` (the scheduler must only target idle cores).
        - STALL/WAKING: queued; runs when the core becomes available.
        - SLEEP: queued and the core is woken (pays the exit latency).
        """
        state = self.state
        if state is CoreState.IDLE:
            self._start(job)
        elif state is CoreState.RUN:
            if not preempt:
                raise CoreBusyError(f"core {self.core_id} is running {self._current!r}")
            self._pause_current(push=True)
            self._start(job)
        elif state in (CoreState.STALL, CoreState.WAKING):
            self._pending.append(job)
        elif state is CoreState.SLEEP:
            self._pending.append(job)
            self.wake()
        else:  # pragma: no cover - exhaustive
            raise AssertionError(state)

    def enqueue_pending(self, job: Job) -> None:
        """Queue ``job`` to run as soon as the core is next available —
        after the current job but before any preempted work resumes.

        Used for SoftIRQ chaining: softirqs raised while a kernel job runs
        drain FIFO instead of preempting each other.
        """
        if self.state is CoreState.SLEEP:
            self._pending.append(job)
            self.wake()
        elif self.state is CoreState.IDLE:
            self._start(job)
        else:
            self._pending.append(job)

    # -- execution internals -------------------------------------------------

    def _start(self, job: Job) -> None:
        if self.state in (CoreState.IDLE, CoreState.WAKING):
            # An idle period (possibly spent in a C-state) ends now.
            if self._boot_idle:
                self._boot_idle = False
            else:
                self.last_idle_duration_ns = self._sim.now - self._idle_since
                self.idle_periods_completed += 1
                if self.on_idle_end is not None:
                    self.on_idle_end(self, self.last_idle_duration_ns)
        account = job.account
        if account is not None and account.first_start_ns is None:
            account.first_start_ns = self._sim.now
            account.first_core = self.core_id
        self._current = job
        self.state = CoreState.RUN
        self._run_started = self._sim.now
        self.meter.set_mode(
            PowerMode.RUN, self._package.voltage, self._package.frequency_hz
        )
        duration = cycles_to_ns(job.remaining, self._package.frequency_hz)
        self._completion = self._sim.schedule(duration, self._complete)

    def _pause_current(self, push: bool) -> None:
        job = self._current
        assert job is not None
        elapsed = self._sim.now - self._run_started
        if elapsed > 0:
            before = job.remaining
            job.remaining = max(
                0.0, before - ns_to_cycles(elapsed, self._package.frequency_hz)
            )
            self._cumulative_busy_ns += elapsed
            account = job.account
            if account is not None:
                account.cpu_ns += elapsed
                account.cycles += before - job.remaining
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        self._current = None
        if push:
            self._stack.append(job)

    def _complete(self) -> None:
        job = self._current
        assert job is not None
        self._cumulative_busy_ns += self._sim.now - self._run_started
        account = job.account
        if account is not None:
            account.cpu_ns += self._sim.now - self._run_started
            account.cycles += job.remaining
        job.remaining = 0.0
        self._current = None
        self._completion = None
        self._maybe_run_next()
        if job.on_complete is not None:
            job.on_complete()

    def _maybe_run_next(self) -> None:
        if self._pending:
            self._start(self._pending.popleft())
        elif self._stack:
            self._start(self._stack.pop())
        else:
            if self.take_next is not None:
                job = self.take_next()
                if job is not None:
                    # Zero-length idle handoff: _start books the idle
                    # period (duration 0); the skipped IDLE_POLL meter
                    # segment would also have had zero duration.
                    self.state = CoreState.IDLE
                    self._idle_since = self._sim.now
                    self._cstate = None
                    self._start(job)
                    return
            self.state = CoreState.IDLE
            self._idle_since = self._sim.now
            self._cstate = None
            self.meter.set_mode(
                PowerMode.IDLE_POLL, self._package.voltage, self._package.frequency_hz
            )
            if self.on_idle is not None:
                self.on_idle(self)

    # -- DVFS interaction ------------------------------------------------------

    def stall(self, duration_ns: int) -> None:
        """Halt retirement for ``duration_ns`` (PLL relock window).

        Sleeping/waking cores are unaffected: their clock is already off.
        """
        if self.state in (CoreState.SLEEP, CoreState.WAKING):
            return
        if self.state is CoreState.STALL:
            # Overlapping transitions are serialized by the package; extend.
            assert self._stall_end is not None
            if self._sim.now + duration_ns > self._stall_end.time:
                self._stall_end.cancel()
                self._stall_end = self._sim.schedule(duration_ns, self._stall_done)
            return
        account = None
        if self.state is CoreState.RUN:
            assert self._current is not None
            account = self._current.account
            self._pause_current(push=True)
        self.state = CoreState.STALL
        self._stall_started = self._sim.now
        self._stall_account = account
        self.meter.set_mode(
            PowerMode.STALL, self._package.voltage, self._package.frequency_hz
        )
        self._stall_end = self._sim.schedule(duration_ns, self._stall_done)

    def _stall_done(self) -> None:
        self._stall_end = None
        if self._stall_account is not None:
            self._stall_account.stall_ns += self._sim.now - self._stall_started
            self._stall_account = None
        self._maybe_run_next()

    def on_clock_change(self, old_freq_hz: float) -> None:
        """The clock domain retuned: recompute the running job's completion.

        ``old_freq_hz`` is the frequency at which progress so far retired.
        """
        freq = self._package.frequency_hz
        voltage = self._package.voltage
        if self.state is CoreState.RUN:
            job = self._current
            assert job is not None
            elapsed = self._sim.now - self._run_started
            if elapsed > 0:
                before = job.remaining
                job.remaining = max(
                    0.0, before - ns_to_cycles(elapsed, old_freq_hz)
                )
                self._cumulative_busy_ns += elapsed
                self._run_started = self._sim.now
                account = job.account
                if account is not None:
                    account.cpu_ns += elapsed
                    account.cycles += before - job.remaining
            if self._completion is not None:
                self._completion.cancel()
            self._completion = self._sim.schedule(
                cycles_to_ns(job.remaining, freq), self._complete
            )
        if self.state is CoreState.SLEEP:
            # C3/C6 hold their own retention voltage; only C1 tracks the
            # domain voltage.
            if self._cstate is not None and self._cstate.name == "C1":
                self.meter.set_mode(self.meter.mode, voltage, freq)
            return
        self.meter.set_mode(self.meter.mode, voltage, freq)

    # -- C-states ----------------------------------------------------------------

    def _count_entry(self, cstate: CState) -> None:
        """Book a C-state entry both per-core and in the shared registry."""
        self.cstate_entries[cstate.name] = self.cstate_entries.get(cstate.name, 0) + 1
        counter = self._entry_counters.get(cstate.name)
        if counter is None:
            counter = self._package.telemetry.counter(
                f"cpuidle.{cstate.name.lower()}.entries"
            )
            self._entry_counters[cstate.name] = counter
        counter.inc()

    def _emit_cstate(self, cstate: CState, phase: str, exit_latency_ns: int = 0) -> None:
        self._cstate_probe.emit(
            CStateTransition(
                self._sim.now,
                self._package.name,
                self.core_id,
                cstate.name,
                cstate.index,
                phase,
                exit_latency_ns,
            )
        )

    @staticmethod
    def _sleep_mode(cstate: CState) -> PowerMode:
        return {"C1": PowerMode.C1, "C3": PowerMode.C3, "C6": PowerMode.C6}.get(
            cstate.name, PowerMode.C1
        )

    def _begin_sleep_power(self, cstate: CState) -> None:
        """Charge the entry transition, then settle at the state's power.

        During ``entry_latency_ns`` the core draws transition power (state
        save, cache flush) — this is what makes very short sleep visits a
        net energy loss (the churn the paper's [11] describes).
        """
        if cstate.entry_latency_ns > 0:
            self.meter.set_mode(
                PowerMode.WAKING, self._package.voltage, self._package.frequency_hz
            )
            self._sim.schedule(
                cstate.entry_latency_ns, self._sleep_entry_done, cstate
            )
        else:
            self.meter.set_mode(
                self._sleep_mode(cstate), self._package.voltage, self._package.frequency_hz
            )

    def _sleep_entry_done(self, cstate: CState) -> None:
        if self.state is CoreState.SLEEP and self._cstate is cstate:
            self.meter.set_mode(
                self._sleep_mode(cstate), self._package.voltage, self._package.frequency_hz
            )

    def enter_sleep(self, cstate: CState) -> None:
        """Transition an IDLE core into ``cstate``."""
        if self.state is not CoreState.IDLE:
            raise RuntimeError(
                f"core {self.core_id} cannot sleep from state {self.state}"
            )
        self.state = CoreState.SLEEP
        self._cstate = cstate
        self._count_entry(cstate)
        if self._cstate_probe.enabled:
            self._emit_cstate(cstate, "enter")
        self._begin_sleep_power(cstate)

    def promote_sleep(self, deeper: CState) -> None:
        """Move a sleeping core into a deeper C-state without waking it.

        Models the cheap re-entry a real idle loop performs when the tick
        (or a governor re-evaluation) finds the core has already been idle
        far longer than predicted; the deeper state's entry transition is
        charged, and its exit latency is paid on the eventual wake.
        """
        if self.state is not CoreState.SLEEP:
            raise RuntimeError(
                f"core {self.core_id} cannot promote from state {self.state}"
            )
        assert self._cstate is not None
        if deeper.index <= self._cstate.index:
            return
        self._cstate = deeper
        self._count_entry(deeper)
        if self._cstate_probe.enabled:
            self._emit_cstate(deeper, "promote")
        self._begin_sleep_power(deeper)

    def wake(self) -> None:
        """Begin exiting the current C-state (idempotent while waking)."""
        if self.state is not CoreState.SLEEP:
            return
        assert self._cstate is not None
        self.state = CoreState.WAKING
        self.meter.set_mode(
            PowerMode.WAKING, self._package.voltage, self._package.frequency_hz
        )
        delay = self._cstate.exit_latency_ns + self.wake_extra_ns
        self._wake_end = self._sim.schedule(delay, self._wake_done)

    def _wake_done(self) -> None:
        self._wake_end = None
        left = self._cstate
        self._cstate = None
        if self._cstate_probe.enabled and left is not None:
            self._emit_cstate(
                left, "wake", left.exit_latency_ns + self.wake_extra_ns
            )
        self._maybe_run_next()
