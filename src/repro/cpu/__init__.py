"""CPU substrate: P/C states, DVFS timing, power model, cores, packages."""

from repro.cpu.config import ProcessorConfig
from repro.cpu.core import Core, CoreBusyError, CoreState, Job
from repro.cpu.cstates import CState, CStateTable, default_cstates
from repro.cpu.energy import EnergyReport, PowerMeter
from repro.cpu.package import ClockDomain
from repro.cpu.power import PowerMode, PowerModel, PowerModelConfig
from repro.cpu.pstates import DVFSTimingModel, PState, PStateTable

__all__ = [
    "ProcessorConfig",
    "Core",
    "CoreBusyError",
    "CoreState",
    "Job",
    "CState",
    "CStateTable",
    "default_cstates",
    "EnergyReport",
    "PowerMeter",
    "ClockDomain",
    "PowerMode",
    "PowerModel",
    "PowerModelConfig",
    "DVFSTimingModel",
    "PState",
    "PStateTable",
]
