"""Per-core DVFS: one clock/voltage domain per core (Section 7).

The paper's evaluation platform has chip-wide DVFS (one V/F for all four
cores), but Section 7 argues that with a multi-queue NIC, NCAP can retune
*the target core* independently.  :class:`MultiDomainProcessor` provides
that substrate: N single-core :class:`ClockDomain`\\ s behind a facade with
the same surface the scheduler / IRQ / metrics layers use (``cores``,
``cstates``, ``energy_report``, ``busy_ns_per_core``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.cpu.config import ProcessorConfig
from repro.cpu.core import Core
from repro.cpu.cstates import CStateTable
from repro.cpu.energy import EnergyReport
from repro.cpu.package import ClockDomain
from repro.cpu.power import PowerModel
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder
from repro.telemetry import Telemetry, ensure_telemetry


class MultiDomainProcessor:
    """N independent single-core V/F domains presented as one processor."""

    def __init__(
        self,
        sim: Simulator,
        config: ProcessorConfig = ProcessorConfig(),
        trace: Optional[TraceRecorder] = None,
        name: str = "cpu",
        telemetry: Optional[Telemetry] = None,
    ):
        self._sim = sim
        self.name = name
        self.config = config
        self.telemetry = ensure_telemetry(telemetry, trace)
        pstates = config.pstate_table()
        self.cstates: CStateTable = config.cstate_table()
        power_model = PowerModel(config.power)
        timing = config.dvfs_timing()
        self.domains: List[ClockDomain] = [
            ClockDomain(
                sim,
                n_cores=1,
                pstates=pstates,
                cstates=self.cstates,
                power_model=power_model,
                dvfs_timing=timing,
                initial_pstate=config.initial_pstate,
                name=f"{name}.domain{i}",
                core_id_base=i,
                telemetry=self.telemetry,
            )
            for i in range(config.n_cores)
        ]
        self.cores: List[Core] = [d.cores[0] for d in self.domains]
        self.pstates = pstates

    # -- package-facade surface --------------------------------------------

    def domain_of(self, core_id: int) -> ClockDomain:
        return self.domains[core_id]

    def set_pstate(self, index: int) -> None:
        """Broadcast a P-state to every domain (chip-wide-compatible path)."""
        for domain in self.domains:
            domain.set_pstate(index)

    @property
    def at_max_performance(self) -> bool:
        return all(d.at_max_performance for d in self.domains)

    @property
    def frequency_hz(self) -> float:
        """Highest frequency across domains (facade convenience)."""
        return max(d.frequency_hz for d in self.domains)

    def energy_report(self) -> EnergyReport:
        report = EnergyReport()
        for domain in self.domains:
            report = report.merge(domain.energy_report())
        return report

    def busy_ns_per_core(self) -> List[int]:
        return [core.busy_ns_total() for core in self.cores]
