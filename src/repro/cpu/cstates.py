"""Processor sleep states (ACPI C-states).

The paper models three sleep states beyond C0 (see Table 1 and Section 5):

=====  =========  ============  =========  ==========================
state  meaning    exit latency  residency  power (Section 5 assumptions)
=====  =========  ============  =========  ==========================
C1     halt       2 µs          10 µs      static power at current V
C3     sleep      10 µs         22 µs/40µs static power at 0.6 V (1.64 W)
C6     off        22 µs         150 µs     ~zero
=====  =========  ============  =========  ==========================

The *residency* is the minimum time a core should stay in a C-state for the
transition to be worth its energy cost; the menu governor compares its idle
prediction against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.sim.units import US


@dataclass(frozen=True)
class CState:
    """One sleep state.

    ``entry_latency_ns`` is the time spent *entering* the state (clock
    gating, state save, cache flush for C6) during which the core still
    draws transition power.  It is why very short C-state visits cost more
    energy than they save — the churn effect the paper cites ([11]) and the
    reason NCAP disables the menu governor during request bursts.
    """

    name: str
    index: int
    exit_latency_ns: int
    target_residency_ns: int
    entry_latency_ns: int = 0

    def __post_init__(self) -> None:
        if self.exit_latency_ns < 0 or self.target_residency_ns < 0:
            raise ValueError("latencies must be non-negative")
        if self.entry_latency_ns < 0:
            raise ValueError("latencies must be non-negative")


def default_cstates() -> Tuple[CState, ...]:
    """The paper's C1/C3/C6 ladder (exit 2/10/22 µs, residency 10/40/150 µs)."""
    return (
        CState("C1", 1, exit_latency_ns=2 * US, target_residency_ns=10 * US,
               entry_latency_ns=1 * US),
        CState("C3", 2, exit_latency_ns=10 * US, target_residency_ns=40 * US,
               entry_latency_ns=5 * US),
        CState("C6", 3, exit_latency_ns=22 * US, target_residency_ns=150 * US,
               entry_latency_ns=15 * US),
    )


class CStateTable:
    """Ordered (shallow -> deep) table of available C-states."""

    def __init__(self, states: Sequence[CState] = ()):
        states = tuple(states) if states else default_cstates()
        for i in range(len(states) - 1):
            if states[i].exit_latency_ns > states[i + 1].exit_latency_ns:
                raise ValueError("exit latency must not decrease with depth")
            if states[i].target_residency_ns > states[i + 1].target_residency_ns:
                raise ValueError("residency must not decrease with depth")
        self._states = states

    def __len__(self) -> int:
        return len(self._states)

    def __getitem__(self, i: int) -> CState:
        return self._states[i]

    def __iter__(self):
        return iter(self._states)

    @property
    def shallowest(self) -> CState:
        return self._states[0]

    @property
    def deepest(self) -> CState:
        return self._states[-1]

    def by_name(self, name: str) -> CState:
        for state in self._states:
            if state.name == name:
                return state
        raise KeyError(name)

    def deepest_allowed(
        self, predicted_idle_ns: int, latency_limit_ns: int
    ) -> "CState | None":
        """Deepest state whose residency fits the prediction and whose exit
        latency respects the limit; None if no state qualifies."""
        chosen = None
        for state in self._states:
            if state.target_residency_ns > predicted_idle_ns:
                break
            if state.exit_latency_ns > latency_limit_ns:
                break
            chosen = state
        return chosen
