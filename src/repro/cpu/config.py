"""Processor configuration (Table 1 of the paper) and a package factory."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cpu.cstates import CStateTable, default_cstates
from repro.cpu.package import ClockDomain
from repro.cpu.power import PowerModel, PowerModelConfig
from repro.cpu.pstates import DVFSTimingModel, PStateTable
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder
from repro.sim.units import ghz
from repro.telemetry import Telemetry


@dataclass(frozen=True)
class ProcessorConfig:
    """Table 1 processor parameters (i7-3770-like)."""

    n_cores: int = 4
    n_pstates: int = 15
    f_max_hz: float = ghz(3.1)
    f_min_hz: float = ghz(0.8)
    v_max: float = 1.2
    v_min: float = 0.65
    v_ramp_rate_mv_per_us: float = 6.25
    pll_relock_us: float = 5.0
    power: PowerModelConfig = field(default_factory=PowerModelConfig)
    initial_pstate: int = 0

    def pstate_table(self) -> PStateTable:
        return PStateTable.linear(
            count=self.n_pstates,
            f_max_hz=self.f_max_hz,
            f_min_hz=self.f_min_hz,
            v_max=self.v_max,
            v_min=self.v_min,
        )

    def cstate_table(self) -> CStateTable:
        return CStateTable(default_cstates())

    def dvfs_timing(self) -> DVFSTimingModel:
        return DVFSTimingModel(
            v_ramp_rate_mv_per_us=self.v_ramp_rate_mv_per_us,
            pll_relock_ns=round(self.pll_relock_us * 1000),
        )

    def build_package(
        self,
        sim: Simulator,
        trace: Optional[TraceRecorder] = None,
        name: str = "cpu",
        telemetry: Optional[Telemetry] = None,
    ) -> ClockDomain:
        return ClockDomain(
            sim=sim,
            n_cores=self.n_cores,
            pstates=self.pstate_table(),
            cstates=self.cstate_table(),
            power_model=PowerModel(self.power),
            dvfs_timing=self.dvfs_timing(),
            initial_pstate=self.initial_pstate,
            trace=trace,
            name=name,
            telemetry=telemetry,
        )
