"""A processor package: cores sharing one clock/voltage domain.

Matching the paper's i7-3770-like setup (and its single-queue NIC), DVFS is
**chip-wide**: all cores share the P-state, while C-states are per-core.
A per-core-DVFS variant (the paper's Section 7 multi-queue discussion) is
provided by constructing one single-core domain per core — see
``repro.cluster.node``.

P-state transitions follow :class:`repro.cpu.pstates.DVFSTimingModel`:
voltage ramps first on an upward transition (cores keep running), then all
cores halt for the PLL relock window, then the new frequency takes effect.
Requests arriving mid-transition are coalesced: the latest target wins and
is applied after the in-flight transition completes.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cpu.core import Core
from repro.cpu.cstates import CStateTable
from repro.cpu.energy import EnergyReport, PowerMeter
from repro.cpu.power import PowerModel
from repro.cpu.pstates import DVFSTimingModel, PStateTable
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder
from repro.telemetry import PStateChange, Telemetry, ensure_telemetry


class ClockDomain:
    """Cores under one shared V/F domain with ACPI-style P-state control."""

    def __init__(
        self,
        sim: Simulator,
        n_cores: int,
        pstates: PStateTable,
        cstates: CStateTable,
        power_model: PowerModel,
        dvfs_timing: Optional[DVFSTimingModel] = None,
        initial_pstate: int = 0,
        trace: Optional[TraceRecorder] = None,
        name: str = "cpu",
        core_id_base: int = 0,
        telemetry: Optional[Telemetry] = None,
    ):
        if n_cores < 1:
            raise ValueError("need at least one core")
        self._sim = sim
        self.name = name
        self.pstates = pstates
        self.cstates = cstates
        self.power_model = power_model
        self.dvfs_timing = dvfs_timing or DVFSTimingModel()
        self._index = pstates.clamp_index(initial_pstate)
        self.telemetry = ensure_telemetry(telemetry, trace)
        self._pstate_probe = self.telemetry.probe("cpu.pstate")
        self._transitions = self.telemetry.counter("cpu.pstate.transitions")
        self._transition_target: Optional[int] = None
        self._queued_target: Optional[int] = None
        #: Called with the new P-state index after each completed switch
        #: (e.g. the NCAP driver mirroring CPU state into a NIC register).
        self.pstate_listeners: List[Callable[[int], None]] = []

        self.cores: List[Core] = [
            Core(sim, core_id_base + i, self, PowerMeter(sim, power_model))
            for i in range(n_cores)
        ]
        if self._pstate_probe.enabled:
            self._pstate_probe.emit(
                PStateChange(sim.now, name, self._index, self.frequency_hz)
            )

    # -- operating point -----------------------------------------------------

    @property
    def transitions(self) -> int:
        """Completed DVFS switches across the whole telemetry scope."""
        return int(self._transitions.value)

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def pstate_index(self) -> int:
        return self._index

    @property
    def frequency_hz(self) -> float:
        return self.pstates[self._index].freq_hz

    @property
    def voltage(self) -> float:
        return self.pstates[self._index].voltage

    @property
    def max_frequency_hz(self) -> float:
        return self.pstates.p0.freq_hz

    @property
    def at_max_performance(self) -> bool:
        """True when already at P0 (and not heading elsewhere)."""
        target = self.effective_target_index
        return target == 0

    @property
    def transition_in_progress(self) -> bool:
        return self._transition_target is not None

    @property
    def effective_target_index(self) -> int:
        """Where the domain will settle once in-flight work completes."""
        if self._queued_target is not None:
            return self._queued_target
        if self._transition_target is not None:
            return self._transition_target
        return self._index

    # -- P-state control -------------------------------------------------------

    def set_pstate(self, index: int) -> None:
        """Request a transition to P-state ``index`` (clamped).

        No-op if the domain is already at (or heading to) that state.
        If a transition is in flight, the request is queued (latest wins).
        """
        index = self.pstates.clamp_index(index)
        if self._transition_target is not None:
            if index != self._transition_target:
                self._queued_target = index
            else:
                self._queued_target = None
            return
        if index == self._index:
            return
        old = self.pstates[self._index]
        new = self.pstates[index]
        ramp_ns, halt_ns = self.dvfs_timing.plan(old, new)
        self._transition_target = index
        if ramp_ns > 0:
            self._sim.schedule(ramp_ns, self._begin_halt, index, halt_ns)
        else:
            self._begin_halt(index, halt_ns)

    def set_frequency(self, freq_hz: float) -> None:
        """Request the P-state whose frequency covers ``freq_hz``."""
        self.set_pstate(self.pstates.index_for_frequency(freq_hz))

    def _begin_halt(self, index: int, halt_ns: int) -> None:
        # Scheduled before the stalls end so the switch lands first.
        self._sim.schedule(halt_ns, self._finish_switch, index)
        for core in self.cores:
            core.stall(halt_ns)

    def _finish_switch(self, index: int) -> None:
        old_freq = self.frequency_hz
        self._index = index
        self._transition_target = None
        self._transitions.inc()
        for core in self.cores:
            core.on_clock_change(old_freq)
        if self._pstate_probe.enabled:
            self._pstate_probe.emit(
                PStateChange(self._sim.now, self.name, index, self.frequency_hz)
            )
        for listener in self.pstate_listeners:
            listener(index)
        if self._queued_target is not None:
            queued = self._queued_target
            self._queued_target = None
            self.set_pstate(queued)

    # -- accounting ---------------------------------------------------------------

    def energy_report(self) -> EnergyReport:
        """Aggregate energy/residency across all cores (finalizes segments)."""
        report = EnergyReport()
        for core in self.cores:
            report = report.merge(core.meter.report())
        return report

    def busy_ns_per_core(self) -> List[int]:
        return [core.busy_ns_total() for core in self.cores]
