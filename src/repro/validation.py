"""Configuration validation against Table 1 of the paper.

``validate_table1`` checks that a :class:`ProcessorConfig` (and the power
model built from it) still matches the paper's published platform — the
anchors every calibrated number in EXPERIMENTS.md rests on.  Returns a
list of human-readable violations (empty = conformant); used by the test
suite and available to downstream users who tweak configurations.
"""

from __future__ import annotations

from typing import List

from repro.cpu.config import ProcessorConfig
from repro.cpu.power import PowerMode, PowerModel
from repro.sim.units import US, ghz


def validate_table1(config: ProcessorConfig = ProcessorConfig()) -> List[str]:
    """Check ``config`` against the paper's Table 1.  Empty list = OK."""
    problems: List[str] = []

    if config.n_cores != 4:
        problems.append(f"Table 1 has 4 cores; config has {config.n_cores}")
    if config.n_pstates != 15:
        problems.append(f"Table 1 has 15 P-states; config has {config.n_pstates}")

    table = config.pstate_table()
    if abs(table.p0.freq_hz - ghz(3.1)) > 1e6:
        problems.append(f"P0 frequency {table.p0.freq_hz/1e9:.2f} GHz != 3.1 GHz")
    if abs(table.deepest.freq_hz - ghz(0.8)) > 1e6:
        problems.append(
            f"deepest frequency {table.deepest.freq_hz/1e9:.2f} GHz != 0.8 GHz"
        )
    if abs(table.p0.voltage - 1.2) > 1e-6 or abs(table.deepest.voltage - 0.65) > 1e-6:
        problems.append("voltage range is not 0.65-1.2 V")

    cstates = config.cstate_table()
    expected_exit = {"C1": 2 * US, "C3": 10 * US, "C6": 22 * US}
    for name, exit_ns in expected_exit.items():
        try:
            state = cstates.by_name(name)
        except KeyError:
            problems.append(f"missing C-state {name}")
            continue
        if state.exit_latency_ns != exit_ns:
            problems.append(
                f"{name} exit latency {state.exit_latency_ns/1000:.0f} us "
                f"!= {exit_ns/1000:.0f} us"
            )

    model = PowerModel(config.power)
    package_max = config.n_cores * model.core_power_w(
        PowerMode.RUN, table.p0.voltage, table.p0.freq_hz
    )
    if not 70.0 <= package_max <= 90.0:
        problems.append(
            f"package max power {package_max:.1f} W outside Table 1's ~80 W"
        )
    package_min = config.n_cores * model.core_power_w(
        PowerMode.RUN, table.deepest.voltage, table.deepest.freq_hz
    )
    if not 9.0 <= package_min <= 15.0:
        problems.append(
            f"package min power {package_min:.1f} W outside Table 1's ~12 W"
        )
    static_low = model.static_power_w(0.65)
    static_high = model.static_power_w(1.2)
    if abs(static_low - 1.92) > 0.05 or abs(static_high - 7.11) > 0.05:
        problems.append(
            f"C1 static anchors ({static_low:.2f}, {static_high:.2f}) W "
            "!= (1.92, 7.11) W"
        )
    c3 = model.core_power_w(PowerMode.C3, 1.0, ghz(1))
    if abs(c3 - 1.64) > 0.05:
        problems.append(f"C3 power {c3:.2f} W != 1.64 W")

    return problems
