"""Watchpoints: predicates over recorded series that trigger close-up capture.

A :class:`Watchpoint` watches one series of a
:class:`~repro.telemetry.recorder.TimeSeriesRecorder`.  After every
base-cadence sample the predicate is evaluated over the series' recent
window; on a False→True edge the watchpoint *fires*:

* the recorder opens a high-resolution capture window (every source
  sampled at ``interval_ns / hires_factor`` for ``capture_ns``);
* a typed :class:`~repro.telemetry.events.WatchpointFired` event is
  emitted on the ``telemetry.watchpoint`` probe point (which the
  :class:`~repro.telemetry.sinks.ChromeTraceSink` renders as an instant
  marker);
* the firing is recorded in the run's
  :class:`~repro.telemetry.recorder.TimeseriesBundle`.

Firing is edge-triggered with re-arm-on-clear semantics: while the
capture window is open the watchpoint stays quiet, and after it closes
the predicate must observe False once before it can fire again — a
sustained overload produces one window per excursion, not one per tick.

Predicates are small callables over a :class:`SeriesView`; the built-ins
cover the common shapes:

* :func:`threshold_above` / :func:`threshold_below` — a gauge crossing a
  level;
* :func:`quantile_above` — a windowed quantile (e.g. p99 queue depth)
  exceeding a bound;
* :func:`rate_above` — a cumulative counter's per-second rate exceeding a
  bound;
* :func:`spike` — the last step exceeding a multiple of the recent mean
  step (counter rate spikes without an absolute calibration).
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, TYPE_CHECKING

from repro.sim.units import MS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.recorder import SeriesBuffer, TimeSeriesRecorder


class SeriesView:
    """What a predicate sees: the watched series' recent retained samples."""

    __slots__ = ("name", "interval_ns", "_buffer")

    def __init__(self, name: str, interval_ns: int, buffer: "SeriesBuffer"):
        self.name = name
        self.interval_ns = interval_ns
        self._buffer = buffer

    def tail(self, n: int) -> List[float]:
        return self._buffer.tail(n)

    @property
    def last(self) -> Optional[float]:
        values = self._buffer.values
        return values[-1] if values else None

    @property
    def stride_ns(self) -> int:
        """Spacing of retained samples (grows with decimation)."""
        return self.interval_ns * self._buffer.stride


Predicate = Callable[[SeriesView], bool]


def threshold_above(threshold: float) -> Predicate:
    """True while the latest sample exceeds ``threshold``."""

    def predicate(view: SeriesView) -> bool:
        last = view.last
        return last is not None and last > threshold

    predicate.description = f"value > {threshold:g}"  # type: ignore[attr-defined]
    return predicate


def threshold_below(threshold: float) -> Predicate:
    """True while the latest sample is under ``threshold``."""

    def predicate(view: SeriesView) -> bool:
        last = view.last
        return last is not None and last < threshold

    predicate.description = f"value < {threshold:g}"  # type: ignore[attr-defined]
    return predicate


def quantile_above(q: float, threshold: float, window: int = 32) -> Predicate:
    """True while the ``q``-quantile of the last ``window`` samples exceeds
    ``threshold`` (e.g. ``quantile_above(0.99, 8)`` — p99 queue depth > 8)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if window < 2:
        raise ValueError("window must be at least 2")

    def predicate(view: SeriesView) -> bool:
        values = sorted(view.tail(window))
        if len(values) < 2:
            return False
        # Nearest-rank with linear interpolation on the sorted window.
        pos = q * (len(values) - 1)
        lo = math.floor(pos)
        hi = math.ceil(pos)
        value = values[lo] + (values[hi] - values[lo]) * (pos - lo)
        return value > threshold

    predicate.description = (  # type: ignore[attr-defined]
        f"p{q * 100:g} over {window} samples > {threshold:g}"
    )
    return predicate


def rate_above(per_second: float) -> Predicate:
    """True while a cumulative counter's latest per-second rate exceeds
    ``per_second``."""

    def predicate(view: SeriesView) -> bool:
        tail = view.tail(2)
        if len(tail) < 2:
            return False
        rate = (tail[1] - tail[0]) * 1e9 / view.stride_ns
        return rate > per_second

    predicate.description = f"rate > {per_second:g}/s"  # type: ignore[attr-defined]
    return predicate


def spike(factor: float = 4.0, window: int = 16) -> Predicate:
    """True when the latest step jumps past ``factor`` x the mean of the
    preceding steps — a counter rate spike without an absolute bound."""
    if factor <= 1.0:
        raise ValueError("factor must exceed 1")
    if window < 3:
        raise ValueError("window must be at least 3")

    def predicate(view: SeriesView) -> bool:
        tail = view.tail(window)
        if len(tail) < 3:
            return False
        steps = [b - a for a, b in zip(tail, tail[1:])]
        last = steps[-1]
        baseline = sum(steps[:-1]) / len(steps[:-1])
        if baseline <= 0:
            return last > 0
        return last > factor * baseline

    predicate.description = (  # type: ignore[attr-defined]
        f"step > {factor:g}x mean of last {window}"
    )
    return predicate


class Watchpoint:
    """One armed predicate over one recorded series."""

    def __init__(
        self,
        name: str,
        series: str,
        predicate: Predicate,
        capture_ns: int = 5 * MS,
        hires_factor: int = 8,
    ):
        if capture_ns <= 0:
            raise ValueError("capture_ns must be positive")
        if hires_factor < 2:
            raise ValueError("hires_factor must be at least 2")
        self.name = name
        self.series = series
        self.predicate = predicate
        self.capture_ns = int(capture_ns)
        self.hires_factor = int(hires_factor)
        self.fire_count = 0
        self._armed = True
        self._capturing = False

    @property
    def description(self) -> str:
        return getattr(self.predicate, "description", "custom predicate")

    def evaluate(self, recorder: "TimeSeriesRecorder", t_ns: int) -> None:
        """Called by the recorder after each base-cadence sample."""
        if self._capturing:
            return
        buffer = recorder.buffer(self.series)
        if buffer is None or not len(buffer):
            return
        view = SeriesView(self.series, recorder.interval_ns, buffer)
        tripped = bool(self.predicate(view))
        if not tripped:
            self._armed = True
            return
        if not self._armed:
            return
        self._armed = False
        self._capturing = True
        self.fire_count += 1
        recorder.open_capture(
            self, t_ns, float(view.last or 0.0), self.description
        )

    def on_window_closed(self) -> None:
        """The capture window ended; stay disarmed until the predicate
        clears once (re-arm-on-clear)."""
        self._capturing = False
