"""Unified telemetry: typed stats registry + probe points + sinks.

:class:`Telemetry` is the single object threaded through the simulation
layers.  It bundles

* a :class:`~repro.telemetry.registry.StatsRegistry` — declare-once typed
  counters/gauges/distributions under hierarchical names
  (``nic.rx.frames``, ``cpuidle.c6.entries``, ...), and
* a :class:`~repro.telemetry.probes.ProbeBus` — near-zero-overhead typed
  probe points (``cpu.cstate``, ``request.span``, ...) that sinks
  subscribe to.

Sinks (:class:`~repro.telemetry.sinks.ChannelSink` for the legacy channel
traces, :class:`~repro.telemetry.sinks.ChromeTraceSink` for Perfetto
export) attach via :meth:`Telemetry.add_sink`.  With no sinks attached
every probe point stays disabled and the hot-path cost is a single
attribute check.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.telemetry.events import (  # noqa: F401 - re-exported
    CStateTransition,
    GovernorDecision,
    GovernorMiss,
    IrqDelivered,
    NcapWake,
    NicRx,
    NicTx,
    PacketClassified,
    ProbeEvent,
    PStateChange,
    RequestAccounting,
    RequestPhase,
    RingOccupancy,
    WatchpointFired,
)
from repro.telemetry.probes import ProbeBus, ProbePoint  # noqa: F401
from repro.telemetry.recorder import (  # noqa: F401 - re-exported
    RecorderConfig,
    TimeseriesBundle,
    TimeSeriesRecorder,
    resolve_recorder_config,
)
from repro.telemetry.triggers import (  # noqa: F401 - re-exported
    Watchpoint,
    quantile_above,
    rate_above,
    spike,
    threshold_above,
    threshold_below,
)
from repro.telemetry.registry import (  # noqa: F401 - re-exported
    Counter,
    Distribution,
    Gauge,
    Scope,
    StatsRegistry,
)
from repro.telemetry.sinks import (  # noqa: F401
    ChannelSink,
    ChromeTraceSink,
    node_of_domain,
)
from repro.sim.trace import NullTraceRecorder, TraceRecorder


class Telemetry:
    """Stats registry + probe bus + attached sinks, as one handle."""

    def __init__(self) -> None:
        self.stats = StatsRegistry()
        self.probes = ProbeBus()
        self.sinks: List[Any] = []

    # -- registry delegates ----------------------------------------------

    def counter(self, name: str) -> Counter:
        return self.stats.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.stats.gauge(name)

    def distribution(self, name: str) -> Distribution:
        return self.stats.distribution(name)

    def scope(self, prefix: str) -> Scope:
        return Scope(self.stats, prefix)

    # -- probe delegates -------------------------------------------------

    def probe(self, name: str) -> ProbePoint:
        return self.probes.point(name)

    # -- sinks -----------------------------------------------------------

    def add_sink(self, sink: Any) -> Any:
        """Attach a sink (anything with ``attach(telemetry)``)."""
        sink.attach(self)
        self.sinks.append(sink)
        return sink

    def channel_trace(self) -> Optional[TraceRecorder]:
        """The TraceRecorder of the first attached ChannelSink, if any."""
        for sink in self.sinks:
            if isinstance(sink, ChannelSink):
                return sink.trace
        return None


def ensure_telemetry(
    telemetry: Optional[Telemetry], trace: Optional[TraceRecorder] = None
) -> Telemetry:
    """Back-compat shim for components still built with ``trace=``.

    When a component is constructed standalone (no shared ``telemetry``)
    it gets a private instance; if it was also handed a live trace
    recorder, a :class:`ChannelSink` keeps its old channels working.  A
    :class:`NullTraceRecorder` does not earn a sink — it exists to make
    sweeps fast, and leaving the probes disabled is strictly faster.
    """
    if telemetry is not None:
        return telemetry
    telemetry = Telemetry()
    if trace is not None and not isinstance(trace, NullTraceRecorder):
        telemetry.add_sink(ChannelSink(trace))
    return telemetry
