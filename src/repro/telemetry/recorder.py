"""Flight recorder: sim-time time-series capture of telemetry stats.

A :class:`TimeSeriesRecorder` samples a declared set of sources on a
simulated-time cadence into bounded ring buffers:

* registry stats by exact name (:meth:`~TimeSeriesRecorder.add_stat`) or
  whole subtrees (:meth:`~TimeSeriesRecorder.add_pattern`, e.g.
  ``"nic.rx.*"``) — counters are sampled *cumulatively* so consumers can
  derive exact per-bin rates by differencing;
* derived quantities via plain callables
  (:meth:`~TimeSeriesRecorder.add_source`) — per-core frequency, C-state
  index, utilization, power — anything a closure can compute at sample
  time.

Sampling is pure instrumentation: it costs zero simulated time, and a
recorder that is never started (or never built) costs nothing at all —
the simulation layers are not instrumented by the recorder; it *reads*
existing state on its own schedule.

**Bounded memory, deterministic decimation.**  Each series holds at most
``capacity`` samples.  When a series fills, every other retained sample is
dropped (even positions survive) and the series' sampling stride doubles,
so it keeps covering the whole run at progressively coarser resolution.
The decimation depends only on the sample count — never on wall time or
randomness — so the same run (same seed, same cadence) produces identical
series everywhere, including across process-pool workers.

**Watchpoints.**  Predicates over the sampled series (see
:mod:`repro.telemetry.triggers`) are evaluated after every base-cadence
tick.  A tripped watchpoint switches the recorder into a *high-resolution
capture window*: for a bounded duration every source is additionally
sampled at ``interval_ns / hires_factor`` into a dedicated window buffer,
leaving the base series cadence (and therefore its decimation schedule)
untouched.

The end product of a run is a :class:`TimeseriesBundle` — a plain,
JSON-serializable projection of every series and capture window that
rides on :class:`~repro.cluster.simulation.ExperimentResult` and
:class:`~repro.harness.record.ResultRecord` (schema v4) and feeds the
HTML dashboard (:mod:`repro.viz.dashboard`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro.sim.kernel import Event, Simulator
from repro.sim.units import MS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry
    from repro.telemetry.triggers import Watchpoint

SourceFn = Callable[[], float]
#: Called with every raw base-cadence sample ``(t_ns, value)`` *before*
#: ring storage or decimation — the hook legacy channel writers use to
#: stay bit-identical with their pre-recorder behaviour.
TapFn = Callable[[int, float], None]

#: Default ring capacity: 4096 samples per series (a 400 ms run at 1 ms
#: cadence stays un-decimated with 10x headroom).
DEFAULT_CAPACITY = 4096


class SeriesBuffer:
    """One bounded ``(time, value)`` ring with 2x-decimation on overflow.

    ``stride`` starts at 1 and doubles every time the buffer fills; a
    sample is retained only when the series-local tick counter is a
    multiple of the current stride, so retained samples always sit on a
    uniform grid of ``stride * base_interval``.
    """

    __slots__ = ("name", "kind", "capacity", "stride", "times", "values", "_tick")

    def __init__(self, name: str, kind: str, capacity: int):
        if capacity < 4:
            raise ValueError("series capacity must be at least 4")
        self.name = name
        self.kind = kind  # "gauge" | "counter"
        self.capacity = capacity
        self.stride = 1
        self.times: List[int] = []
        self.values: List[float] = []
        self._tick = 0

    def append(self, t_ns: int, value: float) -> None:
        """Offer one base-cadence sample; retained iff on the stride grid."""
        tick = self._tick
        self._tick = tick + 1
        if tick % self.stride:
            return
        self.times.append(t_ns)
        self.values.append(value)
        if len(self.times) >= self.capacity:
            self._decimate()

    def _decimate(self) -> None:
        # Keep even positions: sample 0 (the series origin) always
        # survives, and the retained grid spacing exactly doubles.
        self.times = self.times[::2]
        self.values = self.values[::2]
        self.stride *= 2

    def __len__(self) -> int:
        return len(self.times)

    def tail(self, n: int) -> List[float]:
        """The last ``n`` retained values (for watchpoint predicates)."""
        return self.values[-n:]

    def last(self) -> Optional[Tuple[int, float]]:
        if not self.times:
            return None
        return self.times[-1], self.values[-1]


@dataclass
class SeriesData:
    """The serializable projection of one recorded series."""

    name: str
    kind: str                      # "gauge" | "counter"
    stride: int                    # final decimation stride (x base interval)
    times: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def points(self) -> List[Tuple[int, float]]:
        return list(zip(self.times, self.values))

    def rate_points(self) -> List[Tuple[int, float]]:
        """Per-interval deltas of a cumulative counter, labelled by the
        *end* time of each interval, scaled to per-second."""
        out: List[Tuple[int, float]] = []
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            if dt <= 0:
                continue
            out.append((self.times[i], (self.values[i] - self.values[i - 1]) * 1e9 / dt))
        return out


@dataclass
class CaptureWindow:
    """One high-resolution capture opened by a tripped watchpoint."""

    watchpoint: str
    fired_at_ns: int
    start_ns: int
    end_ns: int
    interval_ns: int
    series: Dict[str, SeriesData] = field(default_factory=dict)


@dataclass
class WatchpointRecord:
    """One watchpoint firing, as it appears in the serialized bundle."""

    name: str
    series: str
    t_ns: int
    value: float
    detail: str = ""


@dataclass
class TimeseriesBundle:
    """Everything one recorder captured, as plain JSON-able data.

    ``interval_ns`` is the base sampling cadence; each series carries its
    own final ``stride`` so consumers know its effective resolution
    (``stride * interval_ns``).
    """

    interval_ns: int
    start_ns: int
    end_ns: int
    series: List[SeriesData] = field(default_factory=list)
    windows: List[CaptureWindow] = field(default_factory=list)
    fired: List[WatchpointRecord] = field(default_factory=list)

    def names(self) -> List[str]:
        return [s.name for s in self.series]

    def get(self, name: str) -> Optional[SeriesData]:
        for s in self.series:
            if s.name == name:
                return s
        return None

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    # -- JSON round-trip -------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "interval_ns": self.interval_ns,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "series": [
                {
                    "name": s.name,
                    "kind": s.kind,
                    "stride": s.stride,
                    "times": list(s.times),
                    "values": list(s.values),
                }
                for s in self.series
            ],
            "windows": [
                {
                    "watchpoint": w.watchpoint,
                    "fired_at_ns": w.fired_at_ns,
                    "start_ns": w.start_ns,
                    "end_ns": w.end_ns,
                    "interval_ns": w.interval_ns,
                    "series": {
                        name: {
                            "name": s.name,
                            "kind": s.kind,
                            "stride": s.stride,
                            "times": list(s.times),
                            "values": list(s.values),
                        }
                        for name, s in sorted(w.series.items())
                    },
                }
                for w in self.windows
            ],
            "fired": [
                {
                    "name": f.name,
                    "series": f.series,
                    "t_ns": f.t_ns,
                    "value": f.value,
                    "detail": f.detail,
                }
                for f in self.fired
            ],
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, object]) -> "TimeseriesBundle":
        def series(entry) -> SeriesData:
            return SeriesData(
                name=entry["name"],
                kind=entry["kind"],
                stride=int(entry["stride"]),
                times=[int(t) for t in entry["times"]],
                values=[float(v) for v in entry["values"]],
            )

        return cls(
            interval_ns=int(data["interval_ns"]),
            start_ns=int(data["start_ns"]),
            end_ns=int(data["end_ns"]),
            series=[series(s) for s in data.get("series", ())],
            windows=[
                CaptureWindow(
                    watchpoint=w["watchpoint"],
                    fired_at_ns=int(w["fired_at_ns"]),
                    start_ns=int(w["start_ns"]),
                    end_ns=int(w["end_ns"]),
                    interval_ns=int(w["interval_ns"]),
                    series={
                        name: series(s) for name, s in dict(w["series"]).items()
                    },
                )
                for w in data.get("windows", ())
            ],
            fired=[
                WatchpointRecord(
                    name=f["name"],
                    series=f["series"],
                    t_ns=int(f["t_ns"]),
                    value=float(f["value"]),
                    detail=f.get("detail", ""),
                )
                for f in data.get("fired", ())
            ],
        )


@dataclass(frozen=True)
class RecorderConfig:
    """How a run's flight recorder samples.

    Not an :class:`~repro.cluster.simulation.ExperimentConfig` field:
    like sinks and auditing, attaching a recorder is observation, so it
    must never invalidate cached sweep results.
    """

    interval_ns: int = 1 * MS
    capacity: int = DEFAULT_CAPACITY
    #: Extra registry subtrees to sample on top of the standard sources
    #: (e.g. ``("governor.*",)``).
    patterns: Tuple[str, ...] = ()

    @classmethod
    def coarse(cls) -> "RecorderConfig":
        """1 ms cadence — the paper figures' bin width."""
        return cls(interval_ns=1 * MS)

    @classmethod
    def fine(cls) -> "RecorderConfig":
        """100 µs cadence for close-up dynamics."""
        return cls(interval_ns=MS // 10)


#: ``record_timeseries=`` accepts a config, a preset name, or a bool.
RECORDER_PRESETS: Dict[str, Callable[[], RecorderConfig]] = {
    "coarse": RecorderConfig.coarse,
    "fine": RecorderConfig.fine,
}


def resolve_recorder_config(spec) -> Optional[RecorderConfig]:
    """Normalize a ``record_timeseries=`` argument to a config (or None)."""
    if spec is None or spec is False:
        return None
    if spec is True:
        return RecorderConfig.coarse()
    if isinstance(spec, RecorderConfig):
        return spec
    if isinstance(spec, str):
        try:
            return RECORDER_PRESETS[spec]()
        except KeyError:
            raise ValueError(
                f"unknown recorder preset {spec!r}; "
                f"choose from {sorted(RECORDER_PRESETS)}"
            ) from None
    raise TypeError(f"cannot interpret record_timeseries={spec!r}")


class _Source:
    __slots__ = ("name", "fn", "kind", "tap")

    def __init__(self, name: str, fn: SourceFn, kind: str, tap: Optional[TapFn]):
        self.name = name
        self.fn = fn
        self.kind = kind
        self.tap = tap


class TimeSeriesRecorder:
    """Samples declared sources on a sim-time cadence into ring buffers.

    Zero simulated cost; near-zero wall cost when not started.  Start and
    stop are idempotent — calling :meth:`start` twice, or restarting
    after :meth:`stop` while a stale callback is still queued, never
    double-schedules the sampling chain (the pending event is cancelled
    and each chain checks its own generation).
    """

    def __init__(
        self,
        sim: Simulator,
        telemetry: Optional["Telemetry"] = None,
        interval_ns: int = 1 * MS,
        capacity: int = DEFAULT_CAPACITY,
    ):
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        self._sim = sim
        self._telemetry = telemetry
        self.interval_ns = int(interval_ns)
        self.capacity = int(capacity)
        self._sources: List[_Source] = []
        self._patterns: List[Tuple[str, Optional[str]]] = []
        self._buffers: Dict[str, SeriesBuffer] = {}
        self._watchpoints: List["Watchpoint"] = []
        self._fired: List[WatchpointRecord] = []
        self._windows: List[CaptureWindow] = []
        self._open_windows: List[_OpenWindow] = []
        self._running = False
        self._generation = 0
        self._pending: Optional[Event] = None
        self._start_ns: int = 0
        self._last_sample_ns: int = 0
        self._probe = telemetry.probe("telemetry.watchpoint") if telemetry else None

    # -- declaration -----------------------------------------------------

    def add_source(
        self,
        name: str,
        fn: SourceFn,
        kind: str = "gauge",
        tap: Optional[TapFn] = None,
    ) -> None:
        """Sample ``fn()`` every tick as series ``name``.

        ``kind`` is ``"gauge"`` (point-in-time value) or ``"counter"``
        (cumulative; consumers difference it into rates).  ``tap``, if
        given, receives every raw base-cadence sample before ring
        storage — decimation never affects what a tap sees.
        """
        if kind not in ("gauge", "counter"):
            raise ValueError(f"unknown series kind {kind!r}")
        if any(s.name == name for s in self._sources):
            raise ValueError(f"series {name!r} already declared")
        self._sources.append(_Source(name, fn, kind, tap))

    def add_stat(self, name: str, tap: Optional[TapFn] = None) -> None:
        """Sample one registry stat by exact name.

        Counters record cumulatively; gauges record their current value;
        distributions record their running mean.
        """
        stat = self._require_registry().get(name)
        if stat is None:
            raise KeyError(f"stat {name!r} is not declared in the registry")
        self.add_source(name, *_stat_source(stat), tap=tap)

    def add_pattern(self, pattern: str) -> None:
        """Sample every registry stat under a subtree (``"nic.rx.*"``).

        Resolution happens at :meth:`start` (and again at every restart),
        so stats declared after the recorder was built are still found.
        """
        self._require_registry()
        stem = pattern[:-2] if pattern.endswith(".*") else pattern
        self._patterns.append((pattern, stem))

    def add_watchpoint(self, watchpoint: "Watchpoint") -> None:
        self._watchpoints.append(watchpoint)

    def _require_registry(self):
        if self._telemetry is None:
            raise ValueError(
                "registry-backed series need a Telemetry; "
                "pass telemetry= to the recorder"
            )
        return self._telemetry.stats

    def _resolve_patterns(self) -> None:
        declared = {s.name for s in self._sources}
        registry = self._telemetry.stats if self._telemetry else None
        if registry is None:
            return
        for _pattern, stem in self._patterns:
            for name in registry.names():
                if name in declared:
                    continue
                if name == stem or name.startswith(stem + "."):
                    self.add_source(name, *_stat_source(registry.get(name)))
                    declared.add(name)

    # -- lifecycle -------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Begin sampling.  Idempotent: a second call is a no-op."""
        if self._running:
            return
        self._resolve_patterns()
        self._running = True
        self._generation += 1
        self._start_ns = self._sim.now
        self._last_sample_ns = self._sim.now
        for source in self._sources:
            if source.name not in self._buffers:
                self._buffers[source.name] = SeriesBuffer(
                    source.name, source.kind, self.capacity
                )
        self._pending = self._sim.schedule(
            self.interval_ns, self._tick, self._generation
        )

    def stop(self) -> None:
        """Stop sampling.  Idempotent; cancels the queued callback so a
        later :meth:`start` can never double-schedule the chain."""
        self._running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    # -- sampling --------------------------------------------------------

    def _tick(self, generation: int) -> None:
        # A stale chain (stopped, or superseded by a restart) dies here
        # even if its queued event survived cancellation somehow.
        if not self._running or generation != self._generation:
            return
        now = self._sim.now
        self._last_sample_ns = now
        for source in self._sources:
            value = float(source.fn())
            if source.tap is not None:
                source.tap(now, value)
            self._buffers[source.name].append(now, value)
        for watchpoint in self._watchpoints:
            watchpoint.evaluate(self, now)
        self._pending = self._sim.schedule(self.interval_ns, self._tick, generation)

    # -- high-resolution capture windows ---------------------------------

    def open_capture(
        self, watchpoint: "Watchpoint", t_ns: int, value: float, detail: str
    ) -> None:
        """Record a firing and open its high-resolution window."""
        record = WatchpointRecord(
            name=watchpoint.name,
            series=watchpoint.series,
            t_ns=t_ns,
            value=value,
            detail=detail,
        )
        self._fired.append(record)
        if self._probe is not None and self._probe.enabled:
            from repro.telemetry.events import WatchpointFired

            self._probe.emit(
                WatchpointFired(
                    t_ns=t_ns,
                    name=watchpoint.name,
                    series=watchpoint.series,
                    value=value,
                    detail=detail,
                )
            )
        if self._telemetry is not None:
            self._telemetry.counter("recorder.watchpoints.fired").inc()
        hires_ns = max(1, self.interval_ns // watchpoint.hires_factor)
        window = CaptureWindow(
            watchpoint=watchpoint.name,
            fired_at_ns=t_ns,
            start_ns=t_ns,
            end_ns=t_ns + watchpoint.capture_ns,
            interval_ns=hires_ns,
        )
        self._windows.append(window)
        open_window = _OpenWindow(window, self)
        self._open_windows.append(open_window)
        open_window.schedule_next()

    def _window_closed(self, open_window: "_OpenWindow") -> None:
        self._open_windows.remove(open_window)
        for watchpoint in self._watchpoints:
            if watchpoint.name == open_window.window.watchpoint:
                watchpoint.on_window_closed()

    # -- introspection / export ------------------------------------------

    def buffer(self, name: str) -> Optional[SeriesBuffer]:
        return self._buffers.get(name)

    def series_names(self) -> List[str]:
        return sorted(self._buffers)

    def fired(self) -> List[WatchpointRecord]:
        return list(self._fired)

    def bundle(self) -> TimeseriesBundle:
        """Snapshot everything captured so far as serializable data."""
        return TimeseriesBundle(
            interval_ns=self.interval_ns,
            start_ns=self._start_ns,
            end_ns=self._last_sample_ns,
            series=[
                SeriesData(
                    name=buf.name,
                    kind=buf.kind,
                    stride=buf.stride,
                    times=list(buf.times),
                    values=list(buf.values),
                )
                for _, buf in sorted(self._buffers.items())
            ],
            windows=list(self._windows),
            fired=list(self._fired),
        )


class _OpenWindow:
    """Drives one active high-resolution capture to completion.

    Runs its own sampling chain at the window's cadence so the base
    series (and its deterministic decimation schedule) are untouched.
    """

    __slots__ = ("window", "_recorder", "_sources")

    #: Hard cap on samples per window per series, independent of duration.
    MAX_SAMPLES = 4096

    def __init__(self, window: CaptureWindow, recorder: TimeSeriesRecorder):
        self.window = window
        self._recorder = recorder
        self._sources = list(recorder._sources)
        for source in self._sources:
            window.series[source.name] = SeriesData(
                name=source.name, kind=source.kind, stride=1
            )

    def schedule_next(self) -> None:
        self._recorder._sim.schedule(self.window.interval_ns, self._tick)

    def _tick(self) -> None:
        recorder = self._recorder
        now = recorder._sim.now
        if not recorder._running or now > self.window.end_ns:
            self.window.end_ns = min(self.window.end_ns, now)
            recorder._window_closed(self)
            return
        full = False
        for source in self._sources:
            data = self.window.series[source.name]
            data.times.append(now)
            data.values.append(float(source.fn()))
            full = full or len(data.times) >= self.MAX_SAMPLES
        if full:
            self.window.end_ns = now
            recorder._window_closed(self)
            return
        self.schedule_next()


def _stat_source(stat) -> Tuple[SourceFn, str]:
    """(sampler, kind) for a registry stat object."""
    from repro.telemetry.registry import Counter, Distribution

    if isinstance(stat, Counter):
        return (lambda: float(stat.value)), "counter"
    if isinstance(stat, Distribution):
        return (lambda: float(stat.mean)), "gauge"
    return (lambda: float(stat.value)), "gauge"


def merge_timeseries_bundles(
    named: Mapping[str, TimeseriesBundle],
) -> TimeseriesBundle:
    """Merge per-node bundles into one fleet bundle, deterministically.

    ``named`` maps a node key (e.g. ``"server0"``) to that node's bundle;
    every series, capture window and watchpoint firing comes back prefixed
    with its key (``server0.cpu.util``).  The merge is a pure function of
    the *contents*: keys are processed in sorted order and the merged
    lists are re-sorted on stable fields, so any iteration order of
    ``named`` — and any shard-to-worker placement that produced the
    bundles — yields a byte-identical serialized bundle (the recorder's
    serial==pool contract, extended across processes).

    All bundles must share the same base ``interval_ns``.
    """
    if not named:
        raise ValueError("cannot merge zero bundles")
    intervals = {bundle.interval_ns for bundle in named.values()}
    if len(intervals) != 1:
        raise ValueError(
            f"cannot merge bundles with differing base intervals: "
            f"{sorted(intervals)}"
        )

    def _clone(prefix: str, s: SeriesData) -> SeriesData:
        return SeriesData(
            name=f"{prefix}.{s.name}", kind=s.kind, stride=s.stride,
            times=list(s.times), values=list(s.values),
        )

    series: List[SeriesData] = []
    windows: List[CaptureWindow] = []
    fired: List[WatchpointRecord] = []
    for key in sorted(named):
        bundle = named[key]
        series.extend(_clone(key, s) for s in bundle.series)
        for w in bundle.windows:
            windows.append(
                CaptureWindow(
                    watchpoint=f"{key}.{w.watchpoint}",
                    fired_at_ns=w.fired_at_ns,
                    start_ns=w.start_ns,
                    end_ns=w.end_ns,
                    interval_ns=w.interval_ns,
                    series={
                        f"{key}.{name}": _clone(key, sd)
                        for name, sd in w.series.items()
                    },
                )
            )
        fired.extend(
            WatchpointRecord(
                name=f"{key}.{f.name}", series=f"{key}.{f.series}",
                t_ns=f.t_ns, value=f.value, detail=f.detail,
            )
            for f in bundle.fired
        )
    series.sort(key=lambda s: s.name)
    windows.sort(key=lambda w: (w.fired_at_ns, w.watchpoint))
    fired.sort(key=lambda f: (f.t_ns, f.name, f.series))
    return TimeseriesBundle(
        interval_ns=next(iter(intervals)),
        start_ns=min(b.start_ns for b in named.values()),
        end_ns=max(b.end_ns for b in named.values()),
        series=series,
        windows=windows,
        fired=fired,
    )
