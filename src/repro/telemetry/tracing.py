"""Cross-shard request tracing for sharded datacenter runs.

NCAP's core argument is that power decisions need *packet-level* context,
not aggregate load; this module applies the same principle to the fleet
itself.  A request sprayed by the frontend tier and served inside a shard
leaves spans in three places — the coordinator-side
:class:`~repro.cluster.frontend.FrontendPlanner` (spray decision and
dispatch), the shard simulator's server datapath (the existing
``request.span`` probe: arrival/dma/delivered/service/reply), and the
shard-local :class:`~repro.cluster.frontend.FrontendPort` (reply
receipt).  The pieces are merged coordinator-side into one
:class:`FleetTraceBundle` whose Chrome-trace export telescopes a single
sprayed request across frontend dispatch latency, wire transfer, NIC DMA,
kernel delivery, run-queue wait, service, and the return trip — one pid
lane per shard, one for the frontend tier.

**Sampling is deterministic, never RNG.**  A request is sampled iff
``crc32("trace:<src>:<req_id>") % sample_every == 0``
(:func:`is_sampled`).  Both the coordinator (which knows every planned
dispatch) and every shard collector (which sees ``(src, req_id)`` on each
probe event) evaluate the same pure function, so no sampling state ever
crosses the shard boundary and a serial, sharded, or process-pooled run
collects byte-identical trace bundles.  Tracing is an observer: it never
draws from an RNG stream, never schedules an event, and never enters the
config hash.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Chrome-trace pid lanes of the merged fleet export.  pid 1 is the
#: single-node simulated-time export and pid 2 the wall-clock profiler
#: lane (:mod:`repro.profiling.export`); the fleet lanes start above them.
FRONTEND_PID = 3
WINDOW_PID = 4
SHARD_PID_BASE = 10

#: Ordered per-hop decomposition of a traced request's RTT.  Each entry is
#: ``(hop name, start marker, end marker)`` over the merged span markers.
HOPS: Tuple[Tuple[str, str, str], ...] = (
    ("dispatch", "decision", "send"),
    ("wire_in", "send", "arrival"),
    ("nic_dma", "arrival", "dma"),
    ("kernel", "dma", "delivered"),
    ("app_queue", "delivered", "service"),
    ("service", "service", "reply"),
    ("wire_out", "reply", "reply_recv"),
    ("rtt", "send", "reply_recv"),
)


@dataclass(frozen=True)
class TraceConfig:
    """Observer-side request-tracing knobs (never in the config hash)."""

    #: Sample one request in ``sample_every`` (deterministic hash rule).
    sample_every: int = 1024
    #: Retain at most this many merged traces, lowest request ids first
    #: (applied after the deterministic merge, so the cut is identical
    #: across shard counts and pool sizes).
    max_traces: int = 256

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError("sample_every must be at least 1")
        if self.max_traces < 1:
            raise ValueError("max_traces must be at least 1")


def resolve_trace_config(spec: Any) -> Optional[TraceConfig]:
    """Normalize a ``trace_requests=`` argument into a TraceConfig.

    ``None``/``False`` disable tracing; ``True`` uses the defaults; an
    ``int`` sets ``sample_every``; a :class:`TraceConfig` passes through.
    """
    if spec is None or spec is False:
        return None
    if spec is True:
        return TraceConfig()
    if isinstance(spec, int):
        return TraceConfig(sample_every=spec)
    if isinstance(spec, TraceConfig):
        return spec
    raise TypeError(
        f"trace_requests must be None, bool, int or TraceConfig, "
        f"not {type(spec).__name__}"
    )


def is_sampled(src: str, req_id: Optional[int], sample_every: int) -> bool:
    """The deterministic sampling rule, shared by planner and shards.

    Pure function of the request identity — no RNG, no process state —
    so every participant in a sharded run agrees on the sampled set
    without communicating.
    """
    if req_id is None:
        return False
    if sample_every <= 1:
        return True
    key = f"trace:{src}:{req_id}".encode("ascii")
    return zlib.crc32(key) % sample_every == 0


class RequestTraceCollector:
    """Shard-side span collector for sampled requests.

    Subscribes to each server's ``request.span`` probe point and hooks the
    shard's frontend ports' reply path.  Collection is pure observation:
    the probe events already exist for any subscriber, and the sampled
    subset is decided by :func:`is_sampled` alone.
    """

    def __init__(self, sample_every: int):
        self.sample_every = sample_every
        #: (src, req_id) -> [(phase, t_ns, core-or-None), ...]
        self._phases: Dict[Tuple[str, int], List[Tuple[str, int, Optional[int]]]] = {}
        #: (src, req_id) -> reply receive time at the frontend port
        self._replies: Dict[Tuple[str, int], int] = {}
        #: src -> server index (for traces the planner never saw)
        self._server_of: Dict[str, int] = {}

    def attach_server(self, server_index: int, server: Any) -> None:
        sample_every = self.sample_every
        phases = self._phases

        def on_span(event: Any) -> None:
            if not is_sampled(event.src, event.req_id, sample_every):
                return
            phases.setdefault((event.src, event.req_id), []).append(
                (event.phase, event.t_ns, event.core)
            )

        server.telemetry.probes.subscribe("request.span", on_span)
        self._server_of[f"frontend{server_index}"] = server_index

    def attach_port(self, server_index: int, port: Any) -> None:
        sample_every = self.sample_every
        replies = self._replies
        name = port.name

        def on_reply(req_id: int, send_ns: int, recv_ns: int) -> None:
            if is_sampled(name, req_id, sample_every):
                replies[(name, req_id)] = recv_ns

        port.trace_hook = on_reply
        self._server_of[name] = server_index

    def payload(self) -> Dict[str, Any]:
        """Picklable per-shard trace payload, deterministically ordered."""
        return {
            "phases": [
                [src, req_id, [[p, t, c] for p, t, c in spans]]
                for (src, req_id), spans in sorted(self._phases.items())
            ],
            "replies": [
                [src, req_id, recv_ns]
                for (src, req_id), recv_ns in sorted(self._replies.items())
            ],
            "servers": sorted(self._server_of.items()),
        }


@dataclass
class RequestTrace:
    """One sampled request, merged across frontend and shard spans."""

    src: str
    req_id: int
    server_index: int
    user: Optional[int] = None
    decision_ns: Optional[int] = None
    send_ns: Optional[int] = None
    reply_recv_ns: Optional[int] = None
    #: Server-side ``request.span`` markers: (phase, t_ns, core-or-None).
    phases: List[Tuple[str, int, Optional[int]]] = field(default_factory=list)

    @property
    def trace_id(self) -> str:
        return f"{self.src}/{self.req_id}"

    def markers(self) -> Dict[str, int]:
        """Named time markers for the hop decomposition (first of each)."""
        out: Dict[str, int] = {}
        if self.decision_ns is not None:
            out["decision"] = self.decision_ns
        if self.send_ns is not None:
            out["send"] = self.send_ns
        for phase, t_ns, _core in self.phases:
            out.setdefault(phase, t_ns)
        if self.reply_recv_ns is not None:
            out["reply_recv"] = self.reply_recv_ns
        return out

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "src": self.src,
            "req_id": self.req_id,
            "server_index": self.server_index,
            "user": self.user,
            "decision_ns": self.decision_ns,
            "send_ns": self.send_ns,
            "reply_recv_ns": self.reply_recv_ns,
            "phases": [[p, t, c] for p, t, c in self.phases],
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "RequestTrace":
        return cls(
            src=data["src"],
            req_id=int(data["req_id"]),
            server_index=int(data["server_index"]),
            user=data.get("user"),
            decision_ns=data.get("decision_ns"),
            send_ns=data.get("send_ns"),
            reply_recv_ns=data.get("reply_recv_ns"),
            phases=[(p, t, c) for p, t, c in data.get("phases", [])],
        )


@dataclass
class FleetTraceBundle:
    """The merged, deterministic cross-shard trace of one fleet run."""

    sample_every: int
    max_traces: int
    traces: List[RequestTrace] = field(default_factory=list)
    #: Requests the sampling rule selected before the retention cap.
    sampled_total: int = 0

    def __len__(self) -> int:
        return len(self.traces)

    # -- hop decomposition ----------------------------------------------

    def hop_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-hop latency stats over the sampled set.

        Floats are reduced in trace order, which the merge fixes, so the
        summary is byte-identical across shard counts and pool sizes.
        """
        values: Dict[str, List[int]] = {name: [] for name, _, _ in HOPS}
        for trace in self.traces:
            marks = trace.markers()
            for name, start, end in HOPS:
                if start in marks and end in marks:
                    values[name].append(marks[end] - marks[start])
        out: Dict[str, Dict[str, float]] = {}
        for name, deltas in values.items():
            if not deltas:
                continue
            out[name] = {
                "count": len(deltas),
                "mean_ns": sum(deltas) / len(deltas),
                "min_ns": min(deltas),
                "max_ns": max(deltas),
            }
        return out

    # -- JSON round-trip -------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "sampling": {
                "rule": "crc32(trace:<src>:<req_id>) % sample_every == 0",
                "sample_every": self.sample_every,
                "max_traces": self.max_traces,
                "sampled_total": self.sampled_total,
            },
            "traces": [t.to_json_dict() for t in self.traces],
            "hops": self.hop_summary(),
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "FleetTraceBundle":
        sampling = data.get("sampling", {})
        return cls(
            sample_every=int(sampling.get("sample_every", 1)),
            max_traces=int(sampling.get("max_traces", 1)),
            sampled_total=int(sampling.get("sampled_total", 0)),
            traces=[
                RequestTrace.from_json_dict(t) for t in data.get("traces", [])
            ],
        )


def merge_fleet_traces(
    config: TraceConfig,
    planner_samples: Sequence[Tuple[str, int, int, int, int, int]],
    shard_payloads: Sequence[Dict[str, Any]],
) -> FleetTraceBundle:
    """Join coordinator-side stamps with per-shard span payloads.

    ``planner_samples`` rows are ``(src, req_id, user, server_index,
    decision_ns, send_ns)`` from the
    :class:`~repro.cluster.frontend.FrontendPlanner`; ``shard_payloads``
    are :meth:`RequestTraceCollector.payload` dicts.  The merge sorts by
    ``(src, req_id)`` and truncates to ``config.max_traces`` lowest
    request ids, so the result is independent of shard placement.
    """
    traces: Dict[Tuple[str, int], RequestTrace] = {}
    server_of: Dict[str, int] = {}
    for payload in shard_payloads:
        for src, index in payload.get("servers", ()):
            server_of[src] = index

    for src, req_id, user, server_index, decision_ns, send_ns in planner_samples:
        traces[(src, req_id)] = RequestTrace(
            src=src,
            req_id=req_id,
            server_index=server_index,
            user=user,
            decision_ns=decision_ns,
            send_ns=send_ns,
        )
    for payload in shard_payloads:
        for src, req_id, spans in payload.get("phases", ()):
            key = (src, req_id)
            trace = traces.get(key)
            if trace is None:
                trace = traces[key] = RequestTrace(
                    src=src, req_id=req_id,
                    server_index=server_of.get(src, -1),
                )
            trace.phases.extend((p, t, c) for p, t, c in spans)
        for src, req_id, recv_ns in payload.get("replies", ()):
            key = (src, req_id)
            trace = traces.get(key)
            if trace is None:
                trace = traces[key] = RequestTrace(
                    src=src, req_id=req_id,
                    server_index=server_of.get(src, -1),
                )
            trace.reply_recv_ns = recv_ns

    for trace in traces.values():
        trace.phases.sort(key=lambda item: (item[1], item[0]))
    ordered = sorted(traces.values(), key=lambda t: (t.req_id, t.src))
    return FleetTraceBundle(
        sample_every=config.sample_every,
        max_traces=config.max_traces,
        traces=ordered[: config.max_traces],
        sampled_total=len(ordered),
    )


# -- Chrome-trace export -------------------------------------------------


def lane_metadata_events(
    pid: int, process_name: str, threads: Optional[Dict[int, str]] = None
) -> List[Dict[str, Any]]:
    """``process_name``/``thread_name`` metadata events for one pid lane,
    so Perfetto shows e.g. "shard 3" instead of a bare pid."""
    out: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0.0,
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for tid, label in sorted((threads or {}).items()):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0.0,
                "pid": pid,
                "tid": tid,
                "args": {"name": label},
            }
        )
    return out


def fleet_trace_events(
    bundle: FleetTraceBundle, shard_of_server: Dict[int, int]
) -> List[Dict[str, Any]]:
    """The merged bundle as Chrome Trace Event Format entries.

    Frontend dispatch and the reply return trip render on the frontend
    tier's pid lane; the server datapath hops render on the owning
    shard's lane (``pid = SHARD_PID_BASE + shard``, one tid per server),
    so one sprayed request telescopes across every tier in Perfetto.
    """
    events: List[Dict[str, Any]] = []
    frontend_tids: Dict[int, str] = {}
    shard_threads: Dict[int, Dict[int, str]] = {}

    def duration(
        name: str, cat: str, start_ns: int, end_ns: int,
        pid: int, tid: int, args: Dict[str, Any],
    ) -> None:
        events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": start_ns / 1e3,
                "dur": max(0.0, (end_ns - start_ns) / 1e3),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )

    for trace in bundle.traces:
        marks = trace.markers()
        shard = shard_of_server.get(trace.server_index, -1)
        shard_pid = SHARD_PID_BASE + max(shard, 0)
        tid = trace.server_index
        args = {"trace_id": trace.trace_id, "server": f"server{tid}"}
        if trace.user is not None:
            args["user"] = trace.user
        frontend_tids[0] = "dispatch"
        shard_threads.setdefault(shard_pid, {})[tid] = f"server{tid}"
        if "decision" in marks and "send" in marks:
            duration(
                f"dispatch {trace.trace_id}", "frontend",
                marks["decision"], marks["send"], FRONTEND_PID, 0, args,
            )
        hop_args = dict(args)
        for name, start, end in HOPS:
            if name in ("dispatch", "rtt"):
                continue
            if start not in marks or end not in marks:
                continue
            lane = (
                (FRONTEND_PID, 0) if name == "wire_out"
                else (shard_pid, tid)
            )
            duration(name, "hop", marks[start], marks[end], *lane, hop_args)
        if "send" in marks and "reply_recv" in marks:
            events.append(
                {
                    "name": f"rtt {trace.trace_id}",
                    "cat": "request",
                    "ph": "b",
                    "id": trace.trace_id,
                    "ts": marks["send"] / 1e3,
                    "pid": FRONTEND_PID,
                    "tid": 0,
                    "args": args,
                }
            )
            events.append(
                {
                    "name": f"rtt {trace.trace_id}",
                    "cat": "request",
                    "ph": "e",
                    "id": trace.trace_id,
                    "ts": marks["reply_recv"] / 1e3,
                    "pid": FRONTEND_PID,
                    "tid": 0,
                    "args": {},
                }
            )

    events.extend(
        lane_metadata_events(FRONTEND_PID, "frontend tier", frontend_tids)
    )
    for pid in sorted(shard_threads):
        events.extend(
            lane_metadata_events(
                pid, f"shard {pid - SHARD_PID_BASE}", shard_threads[pid]
            )
        )
    return events


def write_fleet_trace(
    bundle: FleetTraceBundle,
    shard_of_server: Dict[int, int],
    path: str,
    extra_events: Sequence[Dict[str, Any]] = (),
) -> int:
    """Write the merged fleet Chrome-trace JSON; returns the event count."""
    events = fleet_trace_events(bundle, shard_of_server)
    events.extend(extra_events)
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return len(events)


def format_hop_table(bundle: FleetTraceBundle) -> str:
    """Plain-text per-hop latency summary of the sampled request set."""
    from repro.metrics.report import format_table

    summary = bundle.hop_summary()
    rows = []
    for name, _, _ in HOPS:
        stats = summary.get(name)
        if stats is None:
            continue
        rows.append(
            [
                name,
                int(stats["count"]),
                round(stats["mean_ns"] / 1e6, 4),
                round(stats["min_ns"] / 1e6, 4),
                round(stats["max_ns"] / 1e6, 4),
            ]
        )
    return format_table(
        ["hop", "count", "mean (ms)", "min (ms)", "max (ms)"],
        rows,
        title=(
            f"Cross-shard request trace — {len(bundle.traces)} sampled "
            f"request{'s' if len(bundle.traces) != 1 else ''} "
            f"(1 in {bundle.sample_every})"
        ),
    )


__all__ = [
    "FRONTEND_PID",
    "HOPS",
    "SHARD_PID_BASE",
    "WINDOW_PID",
    "FleetTraceBundle",
    "RequestTrace",
    "RequestTraceCollector",
    "TraceConfig",
    "fleet_trace_events",
    "format_hop_table",
    "is_sampled",
    "lane_metadata_events",
    "merge_fleet_traces",
    "resolve_trace_config",
    "write_fleet_trace",
]
