"""Live heartbeat monitor for long sharded datacenter runs.

``repro datacenter --progress[=path]`` turns a multi-minute fleet run
from a silent wait into a stream of machine-readable JSONL status lines:
windows completed, fleet sim-time reached, per-shard events/s over the
last window, the current straggler, and a wall-clock ETA extrapolated
from progress so far.  ``path`` of ``-`` (the default) writes to stderr
so the heartbeat never mixes with report output on stdout; any other
path appends JSONL that CI or a dashboard can tail.

The monitor is a pure observer of coordinator state — it reads window
reports the coordinator already collected, writes outside the simulator,
and therefore cannot perturb simulated results (the parity suites hold
with it enabled).
"""

from __future__ import annotations

import json
import math
import sys
import time
from typing import Any, Dict, IO, Optional


class RunMonitor:
    """Emits one JSONL heartbeat per progress interval of a fleet run."""

    def __init__(
        self,
        out: str = "-",
        *,
        interval_s: float = 1.0,
        clock=time.monotonic,
    ):
        self._path = out
        self._interval_s = interval_s
        self._clock = clock
        self._fh: Optional[IO[str]] = None
        self._owns_fh = False
        self._t0 = 0.0
        self._last_emit = 0.0
        self._end_ns = 0
        self._n_windows = 0
        #: Every heartbeat payload emitted, in order (tests read these).
        self.emitted: list[Dict[str, Any]] = []

    # -- lifecycle -------------------------------------------------------

    def begin(self, *, n_windows: int, end_ns: int, n_shards: int) -> None:
        if self._path == "-":
            self._fh = sys.stderr
        else:
            self._fh = open(self._path, "w", encoding="utf-8")
            self._owns_fh = True
        self._t0 = self._clock()
        self._last_emit = self._t0 - self._interval_s  # emit on first window
        self._end_ns = end_ns
        self._n_windows = n_windows
        self._write(
            {
                "type": "begin",
                "n_windows": n_windows,
                "end_ns": end_ns,
                "n_shards": n_shards,
            }
        )

    def on_window(
        self,
        *,
        index: int,
        t_end_ns: int,
        shard_wall_s: Dict[int, float],
        shard_events: Dict[int, int],
        events_total: int,
    ) -> None:
        now = self._clock()
        # A degenerate run (n_windows <= 0) must not force every window to
        # look like "the last one" and flood heartbeats.
        last = self._n_windows > 0 and index + 1 >= self._n_windows
        if not last and now - self._last_emit < self._interval_s:
            return
        self._last_emit = now
        elapsed = now - self._t0
        frac = t_end_ns / self._end_ns if self._end_ns > 0 else 1.0
        frac = min(max(frac, 0.0), 1.0)
        # ETA only when there is a meaningful extrapolation: some progress
        # (frac > 0) AND some wall time (elapsed > 0 — a first window that
        # finishes inside one clock tick has neither), and the result must
        # be finite and non-negative.  Anything else reports null.
        eta_s = None
        if frac > 0.0 and elapsed > 0.0:
            candidate = elapsed * (1.0 - frac) / frac
            if math.isfinite(candidate) and candidate >= 0.0:
                eta_s = candidate
        straggler = (
            max(shard_wall_s, key=lambda s: (shard_wall_s[s], s))
            if shard_wall_s else None
        )
        per_shard = {
            str(s): round(shard_events.get(s, 0) / wall, 1) if wall else 0.0
            for s, wall in sorted(shard_wall_s.items())
        }
        self._write(
            {
                "type": "heartbeat",
                "windows_done": index + 1,
                "n_windows": self._n_windows,
                "sim_ns": t_end_ns,
                "end_ns": self._end_ns,
                "elapsed_s": round(elapsed, 3),
                "eta_s": round(eta_s, 3) if eta_s is not None else None,
                "events_total": events_total,
                "straggler": straggler,
                "shard_events_per_s": per_shard,
            }
        )

    def close(self, *, events_total: int) -> None:
        if self._fh is None:
            return
        self._write(
            {
                "type": "end",
                "elapsed_s": round(self._clock() - self._t0, 3),
                "events_total": events_total,
            }
        )
        if self._owns_fh:
            self._fh.close()
        self._fh = None

    # -- plumbing --------------------------------------------------------

    def _write(self, payload: Dict[str, Any]) -> None:
        self.emitted.append(payload)
        if self._fh is None:
            return
        self._fh.write(json.dumps(payload, sort_keys=True) + "\n")
        self._fh.flush()


def resolve_monitor(spec: Any) -> Optional[RunMonitor]:
    """Normalize a ``monitor=`` argument: None/False off, True/"-" stderr,
    a string path appends JSONL there, a RunMonitor passes through."""
    if spec is None or spec is False:
        return None
    if spec is True:
        return RunMonitor("-")
    if isinstance(spec, str):
        return RunMonitor(spec)
    if isinstance(spec, RunMonitor):
        return spec
    raise TypeError(
        f"monitor must be None, bool, str or RunMonitor, "
        f"not {type(spec).__name__}"
    )


__all__ = ["RunMonitor", "resolve_monitor"]
