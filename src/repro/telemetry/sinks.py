"""Probe subscribers: the channel-trace rebuild and the Chrome-trace exporter.

:class:`ChannelSink` reconstructs the pre-telemetry ``TraceRecorder``
channel layout (``<nic>.rx_bytes``, ``<domain>.freq_ghz``,
``<node>.core<N>.cstate``, ``<engine>.int_wake``) as one probe
subscriber, so every figure reproduction and trace-invariant test keeps
reading the channels it always has.

:class:`ChromeTraceSink` assembles Chrome Trace Event Format / Perfetto
JSON: C-state residency as complete (``"X"``) duration events per core
track, P-state changes as counter (``"C"``) events, governor decisions
and NCAP wakes as instants, and per-request lifecycles as async
(``"b"``/``"n"``/``"e"``) spans keyed by client and request id.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.telemetry.events import (
    CStateTransition,
    GovernorDecision,
    IrqDelivered,
    NcapWake,
    NicRx,
    NicTx,
    PacketClassified,
    PStateChange,
    RequestPhase,
    WatchpointFired,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.trace import TraceRecorder
    from repro.telemetry import Telemetry

#: ``server.cpu`` and ``server.cpu.domain3`` both belong to node ``server``.
_DOMAIN_STEM = re.compile(r"\.cpu(\.domain\d+)?$")


def node_of_domain(domain: str) -> str:
    """The node label a clock-domain name belongs to."""
    return _DOMAIN_STEM.sub("", domain)


class ChannelSink:
    """Rebuilds the legacy EventChannel/CounterChannel trace layout."""

    def __init__(self, trace: "TraceRecorder"):
        self.trace = trace

    def attach(self, telemetry: "Telemetry") -> None:
        bus = telemetry.probes
        bus.subscribe("nic.rx", self._on_rx)
        bus.subscribe("nic.tx", self._on_tx)
        bus.subscribe("cpu.pstate", self._on_pstate)
        bus.subscribe("cpu.cstate", self._on_cstate)
        bus.subscribe("ncap.wake", self._on_wake)

    # -- handlers --------------------------------------------------------

    def _on_rx(self, event: NicRx) -> None:
        self.trace.counter_channel(f"{event.nic}.rx_bytes").add(
            event.t_ns, event.wire_bytes
        )

    def _on_tx(self, event: NicTx) -> None:
        self.trace.counter_channel(f"{event.nic}.tx_bytes").add(
            event.t_ns, event.wire_bytes
        )

    def _on_pstate(self, event: PStateChange) -> None:
        self.trace.event_channel(f"{event.domain}.freq_ghz").record(
            event.t_ns, event.freq_hz / 1e9
        )

    def _on_cstate(self, event: CStateTransition) -> None:
        node = node_of_domain(event.domain)
        channel = self.trace.event_channel(f"{node}.core{event.core_id}.cstate")
        channel.record(event.t_ns, 0 if event.phase == "wake" else event.index)

    def _on_wake(self, event: NcapWake) -> None:
        self.trace.event_channel(f"{event.engine}.int_wake").record(event.t_ns, 1.0)


class ChromeTraceSink:
    """Collects probe events as Chrome Trace Event Format JSON.

    The output loads in ``chrome://tracing`` and https://ui.perfetto.dev.
    Timestamps are microseconds (the format's unit); every event carries
    the required ``ph``/``ts``/``pid``/``tid``/``name`` keys.
    """

    PID = 1

    def __init__(
        self,
        include_irq: bool = False,
        include_classify: bool = False,
        pid: Optional[int] = None,
        process_name: str = "repro-sim",
    ):
        #: Lane identity: per-shard sinks pass e.g. ``pid=10+shard,
        #: process_name="shard 3"`` so Perfetto names the process track
        #: instead of showing a bare pid.
        self.pid = self.PID if pid is None else pid
        self.process_name = process_name
        self.include_irq = include_irq
        self.include_classify = include_classify
        self._events: List[Dict[str, Any]] = []
        #: (domain, core_id) -> (enter_ns, state_name) for open C-state spans
        self._open_cstates: Dict[Tuple[str, int], Tuple[int, str]] = {}
        self._open_spans: Dict[str, int] = {}
        self._tids_seen: Dict[int, str] = {}
        self._last_ns: int = 0

    def attach(self, telemetry: "Telemetry") -> None:
        bus = telemetry.probes
        bus.subscribe("cpu.cstate", self._on_cstate)
        bus.subscribe("cpu.pstate", self._on_pstate)
        bus.subscribe("governor.decision", self._on_decision)
        bus.subscribe("ncap.wake", self._on_wake)
        bus.subscribe("request.span", self._on_request)
        bus.subscribe("telemetry.watchpoint", self._on_watchpoint)
        if self.include_irq:
            bus.subscribe("irq.delivered", self._on_irq)
        if self.include_classify:
            bus.subscribe("ncap.classify", self._on_classify)

    # -- event assembly --------------------------------------------------

    def _add(self, event: Dict[str, Any], t_ns: int, tid: int, label: str = "") -> None:
        event["pid"] = self.pid
        event["tid"] = tid
        event["ts"] = t_ns / 1e3
        self._events.append(event)
        if t_ns > self._last_ns:
            self._last_ns = t_ns
        if tid not in self._tids_seen:
            self._tids_seen[tid] = label or f"track{tid}"

    def _on_cstate(self, event: CStateTransition) -> None:
        key = (event.domain, event.core_id)
        tid = event.core_id
        open_span = self._open_cstates.pop(key, None)
        if open_span is not None:
            start_ns, state = open_span
            self._add(
                {
                    "name": state,
                    "cat": "cstate",
                    "ph": "X",
                    "dur": (event.t_ns - start_ns) / 1e3,
                    "args": {"domain": event.domain},
                },
                start_ns,
                tid,
                label=f"core{event.core_id}",
            )
        if event.phase in ("enter", "promote"):
            self._open_cstates[key] = (event.t_ns, event.state)
            self._last_ns = max(self._last_ns, event.t_ns)

    def _on_pstate(self, event: PStateChange) -> None:
        ghz = event.freq_hz / 1e9
        self._add(
            {
                "name": f"{event.domain}.freq_ghz",
                "cat": "pstate",
                "ph": "C",
                "args": {"GHz": ghz},
            },
            event.t_ns,
            0,
            label="package",
        )
        self._add(
            {
                "name": f"P{event.index}",
                "cat": "pstate",
                "ph": "i",
                "s": "g",
                "args": {"domain": event.domain, "GHz": ghz},
            },
            event.t_ns,
            0,
            label="package",
        )

    def _on_decision(self, event: GovernorDecision) -> None:
        self._add(
            {
                "name": f"governor.{event.governor}",
                "cat": "governor",
                "ph": "i",
                "s": "t",
                "args": {"choice": event.choice, "value": event.value},
            },
            event.t_ns,
            event.core_id if event.core_id is not None else 0,
        )

    def _on_wake(self, event: NcapWake) -> None:
        self._add(
            {
                "name": f"ncap.wake.{event.cause}",
                "cat": "ncap",
                "ph": "i",
                "s": "p",
                "args": {"engine": event.engine},
            },
            event.t_ns,
            0,
        )

    def _on_watchpoint(self, event: WatchpointFired) -> None:
        self._add(
            {
                "name": f"watchpoint.{event.name}",
                "cat": "recorder",
                "ph": "i",
                "s": "g",
                "args": {
                    "series": event.series,
                    "value": event.value,
                    "detail": event.detail,
                },
            },
            event.t_ns,
            0,
        )

    def _on_irq(self, event: IrqDelivered) -> None:
        self._add(
            {
                "name": event.name,
                "cat": f"irq.{event.kind}",
                "ph": "i",
                "s": "t",
                "args": {},
            },
            event.t_ns,
            event.core_id,
            label=f"core{event.core_id}",
        )

    def _on_classify(self, event: PacketClassified) -> None:
        self._add(
            {
                "name": "classified.lc" if event.latency_critical else "ignored",
                "cat": "ncap",
                "ph": "i",
                "s": "t",
                "args": {"req_cnt": event.req_cnt},
            },
            event.t_ns,
            0,
        )

    def _on_request(self, event: RequestPhase) -> None:
        span_id = event.span_id
        base = {"cat": "request", "id": span_id, "args": {"src": event.src}}
        if event.phase == "arrival":
            self._open_spans[span_id] = event.t_ns
            self._add({"name": "request", "ph": "b", **base}, event.t_ns, 0)
        elif event.phase in ("reply", "dropped"):
            self._add({"name": event.phase, "ph": "n", **base}, event.t_ns, 0)
            if self._open_spans.pop(span_id, None) is not None:
                self._add({"name": "request", "ph": "e", **base}, event.t_ns, 0)
        else:
            self._add({"name": event.phase, "ph": "n", **base}, event.t_ns, 0)

    # -- wall-clock lane -------------------------------------------------

    def add_profile(self, profile) -> None:
        """Merge a simulator self-profile as a wall-clock lane (pid 2).

        ``profile`` is a :class:`~repro.profiling.profiler.LoopProfile`;
        its throughput checkpoints and top-handler bar render on a
        separate process track so wall microseconds are never conflated
        with the simulated-time lanes.
        """
        from repro.profiling.export import wall_clock_trace_events

        self._events.extend(wall_clock_trace_events(profile))

    # -- export ----------------------------------------------------------

    def trace_events(self) -> List[Dict[str, Any]]:
        """All collected events, with still-open spans closed at the end."""
        out = list(self._events)
        for (domain, core_id), (start_ns, state) in sorted(self._open_cstates.items()):
            out.append(
                {
                    "name": state,
                    "cat": "cstate",
                    "ph": "X",
                    "ts": start_ns / 1e3,
                    "dur": max(0.0, (self._last_ns - start_ns) / 1e3),
                    "pid": self.pid,
                    "tid": core_id,
                    "args": {"domain": domain},
                }
            )
        for span_id, start_ns in sorted(self._open_spans.items()):
            out.append(
                {
                    "name": "request",
                    "cat": "request",
                    "ph": "e",
                    "ts": self._last_ns / 1e3,
                    "pid": self.pid,
                    "tid": 0,
                    "id": span_id,
                    "args": {},
                }
            )
        from repro.telemetry.tracing import lane_metadata_events

        out.extend(
            lane_metadata_events(self.pid, self.process_name, self._tids_seen)
        )
        return out

    def to_json_dict(self) -> Dict[str, Any]:
        return {"traceEvents": self.trace_events(), "displayTimeUnit": "ns"}

    def write(self, path: str) -> int:
        """Write the trace JSON; returns the number of trace events."""
        payload = self.to_json_dict()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        return len(payload["traceEvents"])
