"""Typed probe points: a near-zero-overhead structured event bus.

A component declares a :class:`ProbePoint` once and, on the hot path,
guards the emission with a single attribute truthiness check::

    self._probe = telemetry.probe("cpu.cstate")
    ...
    if self._probe.enabled:
        self._probe.emit(CStateTransition(...))

With no subscriber the guard is one plain attribute load — no event object
is constructed, no call is made.  Sinks subscribe by exact name or by
``"prefix.*"`` pattern; subscriptions apply to probe points created later,
so a sink can attach before (or after) the instrumented components exist.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

Subscriber = Callable[[Any], None]


class ProbePoint:
    """One named emission point.  ``enabled`` is True iff subscribers exist."""

    __slots__ = ("name", "enabled", "_subscribers")

    def __init__(self, name: str):
        self.name = name
        self.enabled: bool = False
        self._subscribers: Tuple[Subscriber, ...] = ()

    def __bool__(self) -> bool:
        return self.enabled

    def subscribe(self, fn: Subscriber) -> None:
        if fn not in self._subscribers:
            self._subscribers = self._subscribers + (fn,)
            self.enabled = True

    def unsubscribe(self, fn: Subscriber) -> None:
        # Equality, not identity: bound methods are re-created per access,
        # so ``point.unsubscribe(obj.method)`` must still match.
        self._subscribers = tuple(s for s in self._subscribers if s != fn)
        self.enabled = bool(self._subscribers)

    def emit(self, event: Any) -> None:
        for fn in self._subscribers:
            fn(event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProbePoint({self.name!r}, subscribers={len(self._subscribers)})"


def _matches(pattern: str, name: str) -> bool:
    if pattern.endswith(".*"):
        stem = pattern[:-2]
        return name == stem or name.startswith(stem + ".")
    if pattern == "*":
        return True
    return name == pattern


class ProbeBus:
    """Registry of probe points plus pattern subscriptions."""

    def __init__(self) -> None:
        self._points: Dict[str, ProbePoint] = {}
        self._subscriptions: List[Tuple[str, Subscriber]] = []

    def point(self, name: str) -> ProbePoint:
        """Get-or-create the probe point ``name`` (idempotent)."""
        point = self._points.get(name)
        if point is None:
            point = ProbePoint(name)
            self._points[name] = point
            for pattern, fn in self._subscriptions:
                if _matches(pattern, name):
                    point.subscribe(fn)
        return point

    def subscribe(self, pattern: str, fn: Subscriber) -> None:
        """Attach ``fn`` to every current and future point matching
        ``pattern`` (exact name, ``"prefix.*"``, or ``"*"``)."""
        self._subscriptions.append((pattern, fn))
        for name, point in self._points.items():
            if _matches(pattern, name):
                point.subscribe(fn)

    def unsubscribe(self, fn: Subscriber) -> None:
        """Detach ``fn`` everywhere (points and future subscriptions)."""
        self._subscriptions = [(p, s) for p, s in self._subscriptions if s != fn]
        for point in self._points.values():
            point.unsubscribe(fn)

    def names(self) -> List[str]:
        return sorted(self._points)
