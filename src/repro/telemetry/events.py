"""Structured probe events emitted across the simulation layers.

Every event carries its emission time (``t_ns``, integer simulated
nanoseconds) plus enough identity for a sink to name channels or trace
tracks without reaching back into the emitting component.  Events are only
constructed when a probe point has subscribers, so they favour clarity
over allocation tricks.

Standard probe point names:

==========================  ================================================
``cpu.cstate``              :class:`CStateTransition` (enter/promote/wake)
``cpu.pstate``              :class:`PStateChange` (completed DVFS switches)
``irq.delivered``           :class:`IrqDelivered` (hardirq/softirq dispatch)
``nic.rx``                  :class:`NicRx` (wire arrival, pre-DMA)
``nic.tx``                  :class:`NicTx` (transmit observation point)
``nic.ring``                :class:`RingOccupancy` (post-DMA ring depth)
``governor.decision``       :class:`GovernorDecision` (cpufreq + cpuidle)
``cpuidle.verdict``         :class:`GovernorMiss` (idle-exit oracle verdicts)
``ncap.classify``           :class:`PacketClassified` (ReqMonitor verdicts)
``ncap.wake``               :class:`NcapWake` (proactive wake interrupts)
``request.span``            :class:`RequestPhase` (per-request lifecycle)
``request.account``         :class:`RequestAccounting` (execution account)
``telemetry.watchpoint``    :class:`WatchpointFired` (flight-recorder trips)
==========================  ================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


@dataclass(frozen=True)
class CStateTransition:
    """A core entered, deepened, or left a C-state.

    ``phase`` is ``"enter"`` (IDLE -> C-state), ``"promote"`` (deepened
    without waking), or ``"wake"`` (exit latency fully paid;
    ``state``/``index`` are the state that was left).
    """

    t_ns: int
    domain: str          # owning clock domain, e.g. "server.cpu"
    core_id: int
    state: str           # "C1" / "C3" / "C6"
    index: int           # table index; 0 means awake
    phase: str           # "enter" | "promote" | "wake"
    #: On ``"wake"`` events: the exit latency just paid (including any
    #: MWAIT overhead), so sinks can reconstruct the WAKING interval
    #: ``[t_ns - exit_latency_ns, t_ns]`` without the C-state table.
    exit_latency_ns: int = 0


@dataclass(frozen=True)
class PStateChange:
    """A clock domain finished a DVFS transition (or declared its initial
    operating point at construction)."""

    t_ns: int
    domain: str
    index: int
    freq_hz: float


@dataclass(frozen=True)
class IrqDelivered:
    """A hardirq preempted (or a softirq was queued on) a core."""

    t_ns: int
    kind: str            # "hardirq" | "softirq"
    name: str            # handler label, e.g. "nic-irq", "napi"
    core_id: int


@dataclass(frozen=True)
class NicRx:
    """A frame arrived on the wire (before DMA; drops happen later)."""

    t_ns: int
    nic: str
    wire_bytes: int
    kind: str            # frame kind: "request" | "response" | "data"


@dataclass(frozen=True)
class NicTx:
    """A frame was handed to the NIC transmit path."""

    t_ns: int
    nic: str
    wire_bytes: int
    kind: str


@dataclass(frozen=True)
class RingOccupancy:
    """Rx-ring depth after a DMA completion (or a drop when full)."""

    t_ns: int
    nic: str
    depth: int
    capacity: int
    dropped: bool


@dataclass(frozen=True)
class GovernorDecision:
    """A P-state or C-state governor made a decision.

    For cpufreq governors ``value`` is the sampled utilization and
    ``choice`` the target P-state index; for cpuidle governors ``value``
    is the predicted/observed idle time and ``choice`` the chosen C-state
    index (0 = stay polling).
    """

    t_ns: int
    governor: str        # "ondemand", "menu", "ladder", ...
    choice: int
    value: float
    core_id: Optional[int] = None


@dataclass(frozen=True)
class GovernorMiss:
    """An idle period ended and the chosen C-state was graded against the
    perfect-oracle choice for the realized residency.

    ``verdict`` is ``"above"`` (chose deeper than the oracle: wake latency
    was overpaid), ``"below"`` (chose shallower: idle watts were wasted)
    or ``"hit"``.  ``cost_ns``/``cost_j`` quantify what the miss cost —
    excess exit latency for ``above``, wasted-shallow joules for
    ``below``; both are 0 on a ``hit``.  Emitted on ``cpuidle.verdict``
    alongside the ``cpu.cstate`` stream by
    :class:`repro.oskernel.cpuidle.IdleAccounting`.
    """

    t_ns: int
    governor: str
    core_id: int
    chosen: str          # "C0" / "C1" / "C3" / "C6"
    oracle: str
    verdict: str         # "above" | "below" | "hit"
    realized_ns: int     # how long the idle period actually lasted
    cost_ns: int = 0
    cost_j: float = 0.0


@dataclass(frozen=True)
class PacketClassified:
    """ReqMonitor inspected a packet (NCAP's context-aware filter)."""

    t_ns: int
    monitor: str
    latency_critical: bool
    req_cnt: int


@dataclass(frozen=True)
class NcapWake:
    """The DecisionEngine posted a proactive wake interrupt."""

    t_ns: int
    engine: str          # engine name, e.g. "server.ncap"
    cause: str           # "it_high" | "cit"


@dataclass(frozen=True)
class RequestPhase:
    """One phase of a request's lifecycle.

    Phases, in order: ``arrival`` (wire), ``dma`` (descriptor ring),
    ``dropped`` (ring full — terminal), ``delivered`` (SoftIRQ handed the
    frame to the socket), ``service`` (app began processing), ``reply``
    (response handed to the NIC — terminal).
    """

    t_ns: int
    src: str
    req_id: Optional[int]
    phase: str
    #: Core the phase is bound to, when the emitter knows it: the SoftIRQ
    #: core for ``delivered``, the scheduler affinity hint for ``service``,
    #: the core that ran the service job for ``reply``.  ``None`` when the
    #: phase has no core context (e.g. ``arrival`` happens on the wire).
    core: Optional[int] = None

    @property
    def span_id(self) -> str:
        """Stable per-request correlation id (req_ids are per-client)."""
        return f"{self.src}/{self.req_id}"


@dataclass(frozen=True)
class RequestAccounting:
    """Server-side execution account of one request, emitted at reply.

    Emitted on ``request.account`` by :class:`repro.apps.base.ServerApp`
    when the probe has subscribers.  Complements the ``request.span``
    phase markers with what happened *between* them: when each job was
    enqueued and first ran (run-queue wait), how much wall time the jobs
    spent retiring cycles (``cpu_ns``), how many cycles they retired
    (``cycles`` — re-cost at F_max to separate DVFS slowdown from ideal
    service time), and how long they sat halted for PLL relocks
    (``stall_ns``).
    """

    t_ns: int                    # reply time (response handed to the NIC)
    src: str
    req_id: Optional[int]
    core: Optional[int]          # core the service job first ran on
    resp_core: Optional[int]     # core the response job first ran on
    svc_enqueue_ns: int          # service job entered the run queue
    svc_start_ns: int            # service job first ran
    svc_done_ns: int             # service job completed
    resp_enqueue_ns: int         # response job entered the run queue
    resp_start_ns: int           # response job first ran
    cpu_ns: int                  # wall time in RUN across both jobs
    cycles: float                # cycles retired across both jobs
    stall_ns: int                # PLL-relock halts charged to both jobs

    @property
    def span_id(self) -> str:
        return f"{self.src}/{self.req_id}"


@dataclass(frozen=True)
class WatchpointFired:
    """A flight-recorder watchpoint tripped.

    Emitted on ``telemetry.watchpoint`` by
    :class:`~repro.telemetry.recorder.TimeSeriesRecorder` when a
    :class:`~repro.telemetry.triggers.Watchpoint` predicate goes
    False→True; the recorder simultaneously opens a high-resolution
    capture window around ``t_ns``.
    """

    t_ns: int
    name: str            # watchpoint name, e.g. "queue-overload"
    series: str          # the watched series, e.g. "runq.depth"
    value: float         # the sample that tripped the predicate
    detail: str = ""     # human-readable predicate description


ProbeEvent = Union[
    CStateTransition,
    PStateChange,
    IrqDelivered,
    NicRx,
    NicTx,
    RingOccupancy,
    GovernorDecision,
    GovernorMiss,
    PacketClassified,
    NcapWake,
    RequestPhase,
    RequestAccounting,
    WatchpointFired,
]
