"""Structured probe events emitted across the simulation layers.

Every event carries its emission time (``t_ns``, integer simulated
nanoseconds) plus enough identity for a sink to name channels or trace
tracks without reaching back into the emitting component.  Events are only
constructed when a probe point has subscribers, so they favour clarity
over allocation tricks.

Standard probe point names:

==========================  ================================================
``cpu.cstate``              :class:`CStateTransition` (enter/promote/wake)
``cpu.pstate``              :class:`PStateChange` (completed DVFS switches)
``irq.delivered``           :class:`IrqDelivered` (hardirq/softirq dispatch)
``nic.rx``                  :class:`NicRx` (wire arrival, pre-DMA)
``nic.tx``                  :class:`NicTx` (transmit observation point)
``nic.ring``                :class:`RingOccupancy` (post-DMA ring depth)
``governor.decision``       :class:`GovernorDecision` (cpufreq + cpuidle)
``ncap.classify``           :class:`PacketClassified` (ReqMonitor verdicts)
``ncap.wake``               :class:`NcapWake` (proactive wake interrupts)
``request.span``            :class:`RequestPhase` (per-request lifecycle)
==========================  ================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


@dataclass(frozen=True)
class CStateTransition:
    """A core entered, deepened, or left a C-state.

    ``phase`` is ``"enter"`` (IDLE -> C-state), ``"promote"`` (deepened
    without waking), or ``"wake"`` (exit latency fully paid;
    ``state``/``index`` are the state that was left).
    """

    t_ns: int
    domain: str          # owning clock domain, e.g. "server.cpu"
    core_id: int
    state: str           # "C1" / "C3" / "C6"
    index: int           # table index; 0 means awake
    phase: str           # "enter" | "promote" | "wake"


@dataclass(frozen=True)
class PStateChange:
    """A clock domain finished a DVFS transition (or declared its initial
    operating point at construction)."""

    t_ns: int
    domain: str
    index: int
    freq_hz: float


@dataclass(frozen=True)
class IrqDelivered:
    """A hardirq preempted (or a softirq was queued on) a core."""

    t_ns: int
    kind: str            # "hardirq" | "softirq"
    name: str            # handler label, e.g. "nic-irq", "napi"
    core_id: int


@dataclass(frozen=True)
class NicRx:
    """A frame arrived on the wire (before DMA; drops happen later)."""

    t_ns: int
    nic: str
    wire_bytes: int
    kind: str            # frame kind: "request" | "response" | "data"


@dataclass(frozen=True)
class NicTx:
    """A frame was handed to the NIC transmit path."""

    t_ns: int
    nic: str
    wire_bytes: int
    kind: str


@dataclass(frozen=True)
class RingOccupancy:
    """Rx-ring depth after a DMA completion (or a drop when full)."""

    t_ns: int
    nic: str
    depth: int
    capacity: int
    dropped: bool


@dataclass(frozen=True)
class GovernorDecision:
    """A P-state or C-state governor made a decision.

    For cpufreq governors ``value`` is the sampled utilization and
    ``choice`` the target P-state index; for cpuidle governors ``value``
    is the predicted/observed idle time and ``choice`` the chosen C-state
    index (0 = stay polling).
    """

    t_ns: int
    governor: str        # "ondemand", "menu", "ladder", ...
    choice: int
    value: float
    core_id: Optional[int] = None


@dataclass(frozen=True)
class PacketClassified:
    """ReqMonitor inspected a packet (NCAP's context-aware filter)."""

    t_ns: int
    monitor: str
    latency_critical: bool
    req_cnt: int


@dataclass(frozen=True)
class NcapWake:
    """The DecisionEngine posted a proactive wake interrupt."""

    t_ns: int
    engine: str          # engine name, e.g. "server.ncap"
    cause: str           # "it_high" | "cit"


@dataclass(frozen=True)
class RequestPhase:
    """One phase of a request's lifecycle.

    Phases, in order: ``arrival`` (wire), ``dma`` (descriptor ring),
    ``dropped`` (ring full — terminal), ``delivered`` (SoftIRQ handed the
    frame to the socket), ``service`` (app began processing), ``reply``
    (response handed to the NIC — terminal).
    """

    t_ns: int
    src: str
    req_id: Optional[int]
    phase: str

    @property
    def span_id(self) -> str:
        """Stable per-request correlation id (req_ids are per-client)."""
        return f"{self.src}/{self.req_id}"


ProbeEvent = Union[
    CStateTransition,
    PStateChange,
    IrqDelivered,
    NicRx,
    NicTx,
    RingOccupancy,
    GovernorDecision,
    PacketClassified,
    NcapWake,
    RequestPhase,
]
