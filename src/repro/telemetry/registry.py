"""Typed stats registry: hierarchical named counters, gauges, distributions.

Components declare their stats once (``telemetry.counter("nic.rx.frames")``)
and mutate the returned object on the hot path; the registry is the single
place results are assembled from (snapshot/diff/dict export).  Names are
hierarchical dotted paths — ``nic.rx.frames``, ``cpuidle.c6.entries``,
``governor.ondemand.invocations`` — so one flat dict export carries every
layer's counters without collisions.

Declaration is idempotent: asking for the same name returns the same
object, and asking for it with a *different* type is an error (two
components silently sharing a name is always a bug).
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Mapping, Optional, Union

StatValue = Union[int, float]

#: Dotted path of word segments: ``nic.q0.rx.frames``, ``cpuidle.c6.entries``.
_NAME_RE = re.compile(r"^\w+(\.\w+)*$")


class Counter:
    """A monotonically increasing count (events, frames, bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: StatValue = 0

    def inc(self, amount: StatValue = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value (last utilization, current ring depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: StatValue = 0

    def set(self, value: StatValue) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value})"


class Distribution:
    """Streaming summary of observed samples (count/total/min/max/mean)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count: int = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: StatValue) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Distribution({self.name!r}, n={self.count}, mean={self.mean:.3g})"


Stat = Union[Counter, Gauge, Distribution]


class StatsRegistry:
    """Declare-once/get-always registry of named stats."""

    def __init__(self) -> None:
        self._stats: Dict[str, Stat] = {}

    # -- declaration -----------------------------------------------------

    def _declare(self, name: str, kind: type) -> Stat:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid stat name {name!r}")
        stat = self._stats.get(name)
        if stat is None:
            stat = kind(name)
            self._stats[name] = stat
        elif type(stat) is not kind:
            raise TypeError(
                f"stat {name!r} already declared as {type(stat).__name__}, "
                f"not {kind.__name__}"
            )
        return stat

    def counter(self, name: str) -> Counter:
        return self._declare(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._declare(name, Gauge)  # type: ignore[return-value]

    def distribution(self, name: str) -> Distribution:
        return self._declare(name, Distribution)  # type: ignore[return-value]

    def scope(self, prefix: str) -> "Scope":
        """A view that declares every name under ``prefix.``."""
        return Scope(self, prefix)

    # -- introspection ---------------------------------------------------

    def get(self, name: str) -> Optional[Stat]:
        return self._stats.get(name)

    def value(self, name: str, default: StatValue = 0) -> StatValue:
        """Scalar value of a counter/gauge (``default`` when undeclared)."""
        stat = self._stats.get(name)
        if stat is None:
            return default
        if isinstance(stat, Distribution):
            raise TypeError(f"stat {name!r} is a Distribution; use get()")
        return stat.value

    def names(self) -> List[str]:
        return sorted(self._stats)

    def __iter__(self) -> Iterator[Stat]:
        return iter(self._stats.values())

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    # -- export ----------------------------------------------------------

    def snapshot(self) -> Dict[str, StatValue]:
        """Flat ``name -> value`` dict.  Distributions expand into
        ``<name>.count`` / ``.total`` / ``.mean`` / ``.min`` / ``.max``."""
        out: Dict[str, StatValue] = {}
        for name in sorted(self._stats):
            stat = self._stats[name]
            if isinstance(stat, Distribution):
                out[f"{name}.count"] = stat.count
                out[f"{name}.total"] = stat.total
                out[f"{name}.mean"] = stat.mean
                if stat.count:
                    out[f"{name}.min"] = stat.min  # type: ignore[assignment]
                    out[f"{name}.max"] = stat.max  # type: ignore[assignment]
            else:
                out[name] = stat.value
        return out

    def subtree(self, prefix: str) -> Dict[str, StatValue]:
        """Snapshot restricted to names under ``prefix.`` (or equal to it)."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return {
            name: value
            for name, value in self.snapshot().items()
            if name == prefix or name.startswith(dotted)
        }

    @staticmethod
    def diff(
        before: Mapping[str, StatValue], after: Mapping[str, StatValue]
    ) -> Dict[str, StatValue]:
        """Per-name ``after - before`` for every numeric name in ``after``.

        Names absent from ``before`` diff against zero, so a window diff of
        two snapshots is itself a valid snapshot-shaped dict.
        """
        return {name: value - before.get(name, 0) for name, value in after.items()}


class Scope:
    """A registry view that prefixes every declared name.

    ``Scope(registry, "nic.q0").counter("rx.frames")`` declares
    ``nic.q0.rx.frames`` — components carry a scope instead of baking their
    instance name into every call site.
    """

    __slots__ = ("_registry", "prefix")

    def __init__(self, registry: StatsRegistry, prefix: str):
        self._registry = registry
        self.prefix = prefix

    def _name(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._name(name))

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(self._name(name))

    def distribution(self, name: str) -> Distribution:
        return self._registry.distribution(self._name(name))
