"""Network frames and protocol helpers.

A :class:`Frame` is the unit carried by links: either a single packet (all
client requests fit one MTU — the paper notes latency-critical requests are
short) or a multi-segment message (most responses exceed the Ethernet MTU
and are sent as a train of TCP segments; the paper's TxBytesCounter counts
their bytes without inspecting them).

Framing constants follow the paper: the TCP payload of a received packet
starts at byte 66 (14 B Ethernet + 20 B IP + 32 B TCP with options), and
ReqMonitor inspects the first bytes of that payload against programmable
templates such as ``GET``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

#: Ethernet maximum transmission unit (bytes of L3 payload).
MTU = 1500
#: Header bytes before the TCP payload (Ethernet+IP+TCP, paper Section 4.1).
HEADER_BYTES = 66
#: Maximum TCP payload per segment.
MSS = MTU - (HEADER_BYTES - 14)  # IP+TCP headers count against the MTU

_frame_ids = itertools.count(1)


def segments_for(payload_bytes: int) -> int:
    """Number of TCP segments needed for ``payload_bytes`` of payload."""
    if payload_bytes <= 0:
        return 1
    return (payload_bytes + MSS - 1) // MSS


def wire_bytes_for(payload_bytes: int) -> int:
    """Total bytes on the wire for a message, headers included."""
    return payload_bytes + segments_for(payload_bytes) * HEADER_BYTES


@dataclass
class Frame:
    """One unit of link transfer (a packet or a segment train)."""

    src: str
    dst: str
    payload_bytes: int
    kind: str = "data"            # "request" | "response" | "data"
    payload_prefix: bytes = b""   # first bytes of the TCP payload (ReqMonitor)
    req_id: Optional[int] = None
    created_ns: int = 0
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")

    @property
    def n_segments(self) -> int:
        return segments_for(self.payload_bytes)

    @property
    def wire_bytes(self) -> int:
        return wire_bytes_for(self.payload_bytes)

    @property
    def is_single_packet(self) -> bool:
        return self.n_segments == 1


def make_http_request(
    src: str,
    dst: str,
    method: str = "GET",
    url: str = "/index.html",
    req_id: Optional[int] = None,
    created_ns: int = 0,
) -> Frame:
    """An HTTP request packet (e.g. ``GET /index.html HTTP/1.1``)."""
    line = f"{method} {url} HTTP/1.1\r\nHost: {dst}\r\n\r\n".encode("ascii")
    return Frame(
        src=src,
        dst=dst,
        payload_bytes=len(line),
        kind="request",
        payload_prefix=line[:8],
        req_id=req_id,
        created_ns=created_ns,
    )


def make_memcached_request(
    src: str,
    dst: str,
    command: str = "get",
    key: str = "key:0",
    req_id: Optional[int] = None,
    created_ns: int = 0,
) -> Frame:
    """A Memcached ASCII-protocol request packet (e.g. ``get key:0``)."""
    line = f"{command} {key}\r\n".encode("ascii")
    return Frame(
        src=src,
        dst=dst,
        payload_bytes=len(line),
        kind="request",
        payload_prefix=line[:8],
        req_id=req_id,
        created_ns=created_ns,
    )


def make_response(
    src: str,
    dst: str,
    payload_bytes: int,
    req_id: Optional[int] = None,
    created_ns: int = 0,
) -> Frame:
    """A response message of ``payload_bytes`` (possibly multi-segment)."""
    return Frame(
        src=src,
        dst=dst,
        payload_bytes=payload_bytes,
        kind="response",
        payload_prefix=b"HTTP/1.1",
        req_id=req_id,
        created_ns=created_ns,
    )
