"""Network substrate: frames, links, switch, NIC, interrupt moderation."""

from repro.net.driver import NICDriver
from repro.net.interrupts import ICR, InterruptModerator, ModerationConfig
from repro.net.link import Link, LinkPort
from repro.net.nic import NIC
from repro.net.packet import (
    HEADER_BYTES,
    MSS,
    MTU,
    Frame,
    make_http_request,
    make_memcached_request,
    make_response,
    segments_for,
    wire_bytes_for,
)
from repro.net.switch import Switch

__all__ = [
    "NICDriver",
    "ICR",
    "InterruptModerator",
    "ModerationConfig",
    "Link",
    "LinkPort",
    "NIC",
    "HEADER_BYTES",
    "MSS",
    "MTU",
    "Frame",
    "make_http_request",
    "make_memcached_request",
    "make_response",
    "segments_for",
    "wire_bytes_for",
    "Switch",
]
