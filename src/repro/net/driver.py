"""NIC device driver: top half, NAPI-style SoftIRQ bottom half, transmit.

The receive flow matches Figure 3 of the paper: the posted interrupt
preempts (or wakes) the housekeeping core, the top half reads the ICR and
schedules a SoftIRQ; the SoftIRQ processes a batch of frames through the
network stack (per-packet kernel cycles) and hands each to the registered
packet sink (the server application's socket).

Hook points used by NCAP:

- ``icr_hooks`` — called from hardirq context with the ICR bits, before the
  NAPI poll is scheduled.  The enhanced NCAP handler (Figure 5(d)) is one
  of these.
- ``rx_sw_taps`` + ``extra_rx_cycles_per_packet`` — per-packet software
  inspection in SoftIRQ context, used by the ``ncap.sw`` variant, which
  also pays its inspection cost here.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.interrupts import ICR
from repro.net.nic import NIC
from repro.net.packet import Frame
from repro.oskernel.irq import IRQController
from repro.oskernel.netstack import NetStackCosts
from repro.sim.kernel import Simulator
from repro.telemetry import RequestPhase


class NICDriver:
    """Kernel driver bound to one NIC."""

    def __init__(
        self,
        sim: Simulator,
        nic: NIC,
        irq: IRQController,
        costs: NetStackCosts = NetStackCosts(),
        core_id: int = 0,
        napi_budget: int = 64,
        stats_prefix: str = "driver",
    ):
        self._sim = sim
        self.nic = nic
        self._irq = irq
        self.costs = costs
        self.core_id = core_id
        self.napi_budget = napi_budget

        nic.on_interrupt = self._post_hardirq

        #: Destination for received frames (the application's socket).
        self.packet_sink: Optional[Callable[[Frame], None]] = None
        #: NCAP enhanced-handler hooks, run in hardirq context with ICR bits.
        self.icr_hooks: List[Callable[[int], None]] = []
        #: Per-packet software taps in SoftIRQ context (ncap.sw ReqMonitor).
        self.rx_sw_taps: List[Callable[[Frame], None]] = []
        #: Extra SoftIRQ cycles charged per received packet (ncap.sw cost).
        self.extra_rx_cycles_per_packet: float = 0.0

        self.telemetry = nic.telemetry
        stats = self.telemetry.scope(stats_prefix)
        self._hardirqs = stats.counter("hardirqs")
        self._napi_polls = stats.counter("napi_polls")
        self._frames_delivered = stats.counter("frames_delivered")
        self._tx_reclaimed = stats.counter("tx_reclaimed")
        self._span_probe = self.telemetry.probe("request.span")

    @property
    def hardirqs(self) -> int:
        return int(self._hardirqs.value)

    @property
    def napi_polls(self) -> int:
        return int(self._napi_polls.value)

    @property
    def frames_delivered(self) -> int:
        return int(self._frames_delivered.value)

    @property
    def tx_reclaimed(self) -> int:
        return int(self._tx_reclaimed.value)

    # -- receive path ------------------------------------------------------

    def _post_hardirq(self) -> None:
        self._irq.raise_irq(
            self._hardirq_body, self.costs.hardirq_cycles, self.core_id, name="nic-irq"
        )

    def _hardirq_body(self) -> None:
        self._hardirqs.inc()
        bits = self.nic.read_icr()
        for hook in self.icr_hooks:
            hook(bits)
        take_completions = getattr(self.nic, "take_tx_completions", None)
        if bits & ICR.IT_TX and take_completions is not None:
            completed = take_completions()
            if completed:
                self._tx_reclaimed.inc(completed)
                self._irq.raise_softirq(
                    lambda: None,
                    completed * self.costs.tx_reclaim_cycles,
                    self.core_id,
                    name="tx-reclaim",
                )
        if self.nic.rx_pending:
            self._schedule_napi()

    def _schedule_napi(self) -> None:
        batch = self.nic.take_rx(self.napi_budget)
        if not batch:
            return
        cycles = self.costs.rx_batch_cycles(len(batch))
        cycles += self.extra_rx_cycles_per_packet * len(batch)
        self._napi_polls.inc()
        self._irq.raise_softirq(
            lambda: self._napi_body(batch), cycles, self.core_id, name="napi"
        )

    def _napi_body(self, batch: List[Frame]) -> None:
        for frame in batch:
            for tap in self.rx_sw_taps:
                tap(frame)
            self._frames_delivered.inc()
            if self._span_probe.enabled and frame.kind == "request":
                self._span_probe.emit(
                    RequestPhase(
                        self._sim.now, frame.src, frame.req_id, "delivered",
                        self.core_id,
                    )
                )
            if self.packet_sink is not None:
                self.packet_sink(frame)
        # NAPI re-poll: drain anything that landed while we processed.
        if self.nic.rx_pending:
            self._schedule_napi()

    # -- transmit path -------------------------------------------------------

    def transmit(self, frame: Frame) -> None:
        """Hand a fully formed message to the NIC.

        The kernel-side transmit cycles (``costs.tx_message_cycles``) are
        charged in the *sender's* context: applications fold them into the
        job that produces the response, exactly as a ``sendmsg`` syscall
        burns cycles in the caller's context.
        """
        self.nic.transmit(frame)
