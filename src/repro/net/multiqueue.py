"""Multi-queue NIC (Section 7 of the paper).

A receive-side-scaling NIC: frames are steered to one of N rx queues by a
stable hash of their source (flow affinity), and each queue has its own
ring, interrupt moderator, and ICR, delivering interrupts to *its* core.
Because the target core of every packet is known, the per-queue NCAP
hardware can retune that core's V/F domain independently — the paper's
per-core versus chip-wide argument.

Each :class:`NICQueue` exposes the same driver-facing surface as the
single-queue :class:`repro.net.nic.NIC` (``read_icr``, ``take_rx``,
``rx_pending``, ``moderator``, ``transmit``, hardware taps), so the
standard :class:`NICDriver` and :class:`NCAPHardware` bind to a queue
unchanged.  Transmit is a shared path through the parent NIC.

Stats live in the shared registry: NIC-wide wire counters under
``nic.rx`` / ``nic.tx``, per-queue delivery/drop counters under
``nic.q<N>``.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Callable, Deque, List, Optional

from repro.net.interrupts import ICR, InterruptModerator, ModerationConfig
from repro.net.link import LinkPort
from repro.net.packet import Frame
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder
from repro.sim.units import US
from repro.telemetry import (
    NicRx,
    NicTx,
    RequestPhase,
    RingOccupancy,
    Telemetry,
    ensure_telemetry,
)


class NICQueue:
    """One rx queue of a multi-queue NIC (driver-compatible surface)."""

    def __init__(self, parent: "MultiQueueNIC", queue_id: int, moderation: ModerationConfig):
        self._parent = parent
        self.queue_id = queue_id
        self.name = f"{parent.name}.q{queue_id}"
        self.icr = ICR()
        self.moderator = InterruptModerator(
            parent.sim, moderation, self._post_interrupt
        )
        self._ring: Deque[Frame] = deque()
        self.rx_hw_taps: List[Callable[[Frame], None]] = []
        self.on_interrupt: Optional[Callable[[], None]] = None
        #: Shared with the parent so drivers/NCAP bound to a queue join the
        #: same registry and probe bus (driver-compatible surface).
        self.telemetry = parent.telemetry
        stats = parent.telemetry.scope(f"{parent.stats_prefix}.q{queue_id}")
        self._rx_frames = stats.counter("rx.frames")
        self._rx_delivered_frames = stats.counter("rx.delivered_frames")
        self._rx_dropped_frames = stats.counter("rx.dropped_frames")
        self._rx_dropped_bytes = stats.counter("rx.dropped_bytes")
        self._ring_probe = parent.telemetry.probe("nic.ring")
        self._span_probe = parent.telemetry.probe("request.span")

    @property
    def rx_frames(self) -> int:
        """Frames steered to this queue (including ones later dropped)."""
        return int(self._rx_frames.value)

    @property
    def rx_dropped(self) -> int:
        return int(self._rx_dropped_frames.value)

    @property
    def rx_dropped_bytes(self) -> int:
        return int(self._rx_dropped_bytes.value)

    # -- rx path (parent-driven) ------------------------------------------

    def _accept(self, frame: Frame) -> None:
        self._rx_frames.inc()
        for tap in self.rx_hw_taps:
            tap(frame)
        self._parent.sim.schedule(
            self._parent.dma_latency_ns, self._dma_complete, frame
        )

    def _dma_complete(self, frame: Frame) -> None:
        sim = self._parent.sim
        if len(self._ring) >= self._parent.ring_size_per_queue:
            self._rx_dropped_frames.inc()
            self._rx_dropped_bytes.inc(frame.wire_bytes)
            if self._ring_probe.enabled:
                self._ring_probe.emit(
                    RingOccupancy(
                        sim.now,
                        self.name,
                        len(self._ring),
                        self._parent.ring_size_per_queue,
                        dropped=True,
                    )
                )
            if self._span_probe.enabled and frame.kind == "request":
                self._span_probe.emit(
                    RequestPhase(sim.now, frame.src, frame.req_id, "dropped")
                )
            return
        self._ring.append(frame)
        self._rx_delivered_frames.inc()
        if self._ring_probe.enabled:
            self._ring_probe.emit(
                RingOccupancy(
                    sim.now,
                    self.name,
                    len(self._ring),
                    self._parent.ring_size_per_queue,
                    dropped=False,
                )
            )
        if self._span_probe.enabled and frame.kind == "request":
            self._span_probe.emit(
                RequestPhase(sim.now, frame.src, frame.req_id, "dma")
            )
        self.icr.set(ICR.IT_RX)
        self.moderator.notify_event()

    def _post_interrupt(self) -> None:
        if self.on_interrupt is not None:
            self.on_interrupt()

    # -- driver surface -------------------------------------------------------

    def read_icr(self) -> int:
        return self.icr.read_and_clear()

    def take_rx(self, budget: int) -> List[Frame]:
        batch: List[Frame] = []
        while self._ring and len(batch) < budget:
            batch.append(self._ring.popleft())
        return batch

    @property
    def rx_pending(self) -> int:
        return len(self._ring)

    def post_interrupt_now(self, bits: int) -> None:
        self.icr.set(bits)
        self.moderator.force_fire_now()

    # Tx is shared hardware: delegate to the parent.
    @property
    def tx_hw_taps(self) -> List[Callable[[Frame], None]]:
        return self._parent.tx_hw_taps

    def transmit(self, frame: Frame) -> None:
        self._parent.transmit(frame)


class MultiQueueNIC:
    """An RSS NIC with one rx queue (and interrupt vector) per core."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "eth0",
        n_queues: int = 4,
        dma_latency_ns: int = 10 * US,
        tx_dma_latency_ns: int = 5 * US,
        ring_size_per_queue: int = 1024,
        moderation: ModerationConfig = ModerationConfig(),
        trace: Optional[TraceRecorder] = None,
        telemetry: Optional[Telemetry] = None,
        stats_prefix: str = "nic",
    ):
        if n_queues < 1:
            raise ValueError("need at least one queue")
        self.sim = sim
        self.name = name
        self.dma_latency_ns = dma_latency_ns
        self.tx_dma_latency_ns = tx_dma_latency_ns
        self.ring_size_per_queue = ring_size_per_queue
        self.telemetry = ensure_telemetry(telemetry, trace)
        self.stats_prefix = stats_prefix
        stats = self.telemetry.scope(stats_prefix)
        self._rx_frames = stats.counter("rx.frames")
        self._rx_bytes = stats.counter("rx.bytes")
        self._tx_frames = stats.counter("tx.frames")
        self._tx_bytes = stats.counter("tx.bytes")
        self._rx_probe = self.telemetry.probe("nic.rx")
        self._tx_probe = self.telemetry.probe("nic.tx")
        self._span_probe = self.telemetry.probe("request.span")
        self.queues: List[NICQueue] = [
            NICQueue(self, i, moderation) for i in range(n_queues)
        ]
        self.tx_hw_taps: List[Callable[[Frame], None]] = []
        self._port: Optional[LinkPort] = None

    @property
    def rx_frames(self) -> int:
        return int(self._rx_frames.value)

    @property
    def rx_bytes(self) -> int:
        return int(self._rx_bytes.value)

    @property
    def tx_frames(self) -> int:
        return int(self._tx_frames.value)

    @property
    def tx_bytes(self) -> int:
        return int(self._tx_bytes.value)

    def attach_port(self, port: LinkPort) -> None:
        self._port = port

    def queue_for(self, frame: Frame) -> NICQueue:
        """RSS steering: stable hash of the flow's source."""
        digest = zlib.crc32(frame.src.encode("utf-8"))
        return self.queues[digest % len(self.queues)]

    def receive_frame(self, frame: Frame) -> None:
        self._rx_frames.inc()
        self._rx_bytes.inc(frame.wire_bytes)
        if self._rx_probe.enabled:
            self._rx_probe.emit(
                NicRx(self.sim.now, self.name, frame.wire_bytes, frame.kind)
            )
        if self._span_probe.enabled and frame.kind == "request":
            self._span_probe.emit(
                RequestPhase(self.sim.now, frame.src, frame.req_id, "arrival")
            )
        self.queue_for(frame)._accept(frame)

    def transmit(self, frame: Frame) -> None:
        self._tx_frames.inc()
        self._tx_bytes.inc(frame.wire_bytes)
        if self._tx_probe.enabled:
            self._tx_probe.emit(
                NicTx(self.sim.now, self.name, frame.wire_bytes, frame.kind)
            )
        for tap in self.tx_hw_taps:
            tap(frame)
        self.sim.schedule(self.tx_dma_latency_ns, self._tx_to_wire, frame)

    def _tx_to_wire(self, frame: Frame) -> None:
        assert self._port is not None, "NIC has no attached link port"
        self._port.send(frame)

    @property
    def rx_dropped(self) -> int:
        return sum(q.rx_dropped for q in self.queues)
