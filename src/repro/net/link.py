"""Full-duplex point-to-point Ethernet links.

Table 1: 10 Gb/s links with 1 µs latency.  Each direction serializes frames
FIFO at the link bandwidth, then delivers after the propagation latency.
Endpoints implement ``receive_frame(frame)`` (see :class:`NetDevice`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Protocol, Sequence

from repro.net.packet import Frame
from repro.sim.kernel import Simulator
from repro.sim.units import US, gbps, transmission_delay_ns


class NetDevice(Protocol):
    """Anything that terminates a link."""

    name: str

    def receive_frame(self, frame: Frame) -> None:  # pragma: no cover
        ...


class _Direction:
    """One direction of a link: a serializing FIFO plus propagation delay."""

    def __init__(self, sim: Simulator, bandwidth_bps: float, latency_ns: int):
        self._sim = sim
        self._bandwidth = bandwidth_bps
        self._latency = latency_ns
        self._queue: Deque[Frame] = deque()
        self._busy = False
        self._sink: Optional[NetDevice] = None
        self.frames_carried = 0
        self.bytes_carried = 0
        # Vectorized-burst state: when the serialization finish time of the
        # last analytically-sent frame, and the FIFO of frames awaiting the
        # scalar fallback delivery events scheduled by send_vector().
        self._vector_tail_ns = 0
        self._vector_fifo: Deque[Frame] = deque()

    def attach_sink(self, sink: NetDevice) -> None:
        self._sink = sink

    def send(self, frame: Frame) -> None:
        if self._vector_tail_ns > self._sim.now:
            # A vectorized burst's serialization extends past `now`; a
            # scalar frame interleaved here could not honour FIFO order.
            raise RuntimeError(
                "scalar send while a vectorized burst is still serializing "
                "on this link direction"
            )
        self._queue.append(frame)
        if not self._busy:
            self._serialize_next()

    def send_vector(self, times: Sequence[int], frames: Sequence[Frame]) -> None:
        """Send ``frames[i]`` at sim-time ``times[i]`` analytically.

        Serialization is the same FIFO math as the scalar path —
        ``start_i = max(times[i], finish_{i-1})``, ``finish_i = start_i +
        tx_delay_i`` — but computed in one pass with no intermediate
        events: the only events created are the deliveries (and none at
        all when the sink implements ``receive_burst``, which carries the
        whole vector another hop).  Delivery timestamps are bit-identical
        to the scalar path.  ``times`` must be non-decreasing and at or
        after ``sim.now``; the direction must otherwise be idle (a single
        transmitter — e.g. the frontend tier — is the intended user).
        Wire counters are bumped up front rather than at each frame's
        serialization instant; end-of-run totals are unchanged.
        """
        if len(times) != len(frames):
            raise ValueError("times and frames must have equal length")
        if not frames:
            return
        if self._busy or self._queue:
            raise RuntimeError(
                "send_vector on a link direction with scalar frames in flight"
            )
        assert self._sink is not None, "link endpoint not attached"
        tail = self._vector_tail_ns
        latency = self._latency
        deliveries: List[int] = []
        for t, frame in zip(times, frames):
            start = t if t > tail else tail
            tail = start + transmission_delay_ns(frame.wire_bytes, self._bandwidth)
            self.frames_carried += 1
            self.bytes_carried += frame.wire_bytes
            deliveries.append(tail + latency)
        self._vector_tail_ns = tail
        receive_burst = getattr(self._sink, "receive_burst", None)
        if receive_burst is not None:
            receive_burst(frames, deliveries)
        else:
            self._vector_fifo.extend(frames)
            self._sim.schedule_many(deliveries, self._deliver_next)

    def _deliver_next(self) -> None:
        self._sink.receive_frame(self._vector_fifo.popleft())

    def _serialize_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        frame = self._queue.popleft()
        delay = transmission_delay_ns(frame.wire_bytes, self._bandwidth)
        self._sim.schedule(delay, self._serialized, frame)

    def _serialized(self, frame: Frame) -> None:
        self.frames_carried += 1
        self.bytes_carried += frame.wire_bytes
        self._sim.schedule(self._latency, self._deliver, frame)
        self._serialize_next()

    def _deliver(self, frame: Frame) -> None:
        assert self._sink is not None, "link endpoint not attached"
        self._sink.receive_frame(frame)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)


class Link:
    """A full-duplex link between two devices."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = gbps(10),
        latency_ns: int = 1 * US,
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_ns < 0:
            raise ValueError("latency must be non-negative")
        self._a_to_b = _Direction(sim, bandwidth_bps, latency_ns)
        self._b_to_a = _Direction(sim, bandwidth_bps, latency_ns)
        self._a: Optional[NetDevice] = None
        self._b: Optional[NetDevice] = None

    def attach(self, a: NetDevice, b: NetDevice) -> None:
        """Connect endpoints ``a`` and ``b``."""
        self._a, self._b = a, b
        self._a_to_b.attach_sink(b)
        self._b_to_a.attach_sink(a)

    def endpoint_port(self, device: NetDevice) -> "LinkPort":
        """The transmit port ``device`` should use on this link."""
        if device is self._a:
            return LinkPort(self._a_to_b, self._b)
        if device is self._b:
            return LinkPort(self._b_to_a, self._a)
        raise ValueError(f"{device!r} is not attached to this link")


class LinkPort:
    """A device's handle for transmitting onto one link direction."""

    def __init__(self, direction: _Direction, peer: Optional[NetDevice]):
        self._direction = direction
        self.peer = peer

    def send(self, frame: Frame) -> None:
        self._direction.send(frame)

    def send_vector(self, times: Sequence[int], frames: Sequence[Frame]) -> None:
        """Vectorized multi-frame send — see :meth:`_Direction.send_vector`."""
        self._direction.send_vector(times, frames)

    @property
    def queue_depth(self) -> int:
        return self._direction.queue_depth

    @property
    def bytes_carried(self) -> int:
        return self._direction.bytes_carried

    @property
    def frames_carried(self) -> int:
        return self._direction.frames_carried
