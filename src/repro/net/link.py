"""Full-duplex point-to-point Ethernet links.

Table 1: 10 Gb/s links with 1 µs latency.  Each direction serializes frames
FIFO at the link bandwidth, then delivers after the propagation latency.
Endpoints implement ``receive_frame(frame)`` (see :class:`NetDevice`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Protocol

from repro.net.packet import Frame
from repro.sim.kernel import Simulator
from repro.sim.units import US, gbps, transmission_delay_ns


class NetDevice(Protocol):
    """Anything that terminates a link."""

    name: str

    def receive_frame(self, frame: Frame) -> None:  # pragma: no cover
        ...


class _Direction:
    """One direction of a link: a serializing FIFO plus propagation delay."""

    def __init__(self, sim: Simulator, bandwidth_bps: float, latency_ns: int):
        self._sim = sim
        self._bandwidth = bandwidth_bps
        self._latency = latency_ns
        self._queue: Deque[Frame] = deque()
        self._busy = False
        self._sink: Optional[NetDevice] = None
        self.frames_carried = 0
        self.bytes_carried = 0

    def attach_sink(self, sink: NetDevice) -> None:
        self._sink = sink

    def send(self, frame: Frame) -> None:
        self._queue.append(frame)
        if not self._busy:
            self._serialize_next()

    def _serialize_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        frame = self._queue.popleft()
        delay = transmission_delay_ns(frame.wire_bytes, self._bandwidth)
        self._sim.schedule(delay, self._serialized, frame)

    def _serialized(self, frame: Frame) -> None:
        self.frames_carried += 1
        self.bytes_carried += frame.wire_bytes
        self._sim.schedule(self._latency, self._deliver, frame)
        self._serialize_next()

    def _deliver(self, frame: Frame) -> None:
        assert self._sink is not None, "link endpoint not attached"
        self._sink.receive_frame(frame)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)


class Link:
    """A full-duplex link between two devices."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = gbps(10),
        latency_ns: int = 1 * US,
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_ns < 0:
            raise ValueError("latency must be non-negative")
        self._a_to_b = _Direction(sim, bandwidth_bps, latency_ns)
        self._b_to_a = _Direction(sim, bandwidth_bps, latency_ns)
        self._a: Optional[NetDevice] = None
        self._b: Optional[NetDevice] = None

    def attach(self, a: NetDevice, b: NetDevice) -> None:
        """Connect endpoints ``a`` and ``b``."""
        self._a, self._b = a, b
        self._a_to_b.attach_sink(b)
        self._b_to_a.attach_sink(a)

    def endpoint_port(self, device: NetDevice) -> "LinkPort":
        """The transmit port ``device`` should use on this link."""
        if device is self._a:
            return LinkPort(self._a_to_b, self._b)
        if device is self._b:
            return LinkPort(self._b_to_a, self._a)
        raise ValueError(f"{device!r} is not attached to this link")


class LinkPort:
    """A device's handle for transmitting onto one link direction."""

    def __init__(self, direction: _Direction, peer: Optional[NetDevice]):
        self._direction = direction
        self.peer = peer

    def send(self, frame: Frame) -> None:
        self._direction.send(frame)

    @property
    def queue_depth(self) -> int:
        return self._direction.queue_depth

    @property
    def bytes_carried(self) -> int:
        return self._direction.bytes_carried

    @property
    def frames_carried(self) -> int:
        return self._direction.frames_carried
