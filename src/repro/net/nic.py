"""Baseline NIC model (Intel 82574-like, single queue, no TOE).

The receive path reproduces the sequence of Section 2.2 / Figure 3:

1. a frame arrives from the link (hardware taps — where NCAP's ReqMonitor
   sits — observe it here, *before* DMA);
2. the DMA engine copies it into a main-memory ``skb`` via the descriptor
   ring (``dma_latency_ns`` per frame, covering the PCIe transactions);
3. the frame is appended to the rx ring and the interrupt moderator is
   notified; when an interrupt is posted the ICR is set and the attached
   driver's top half runs.

Receive accounting distinguishes **wire-level** counters (``rx.frames`` /
``rx.bytes``, charged at link delivery, before the ring-full check) from
**delivered** counters (``rx.delivered_frames`` / ``rx.delivered_bytes``,
charged only when the frame lands in the rx ring); drops book both the
frame and its bytes under ``rx.dropped_*``.

Transmit-complete interrupts are coalesced into the driver's per-segment
kernel cost rather than modelled individually (their handler is trivial
and would only add events); transmitted frames/bytes are still observed by
the hardware tx taps at transmit time, which is what NCAP's TxBytesCounter
needs.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.net.interrupts import ICR, InterruptModerator, ModerationConfig
from repro.net.link import LinkPort
from repro.net.packet import Frame
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder
from repro.sim.units import US
from repro.telemetry import (
    NicRx,
    NicTx,
    RequestPhase,
    RingOccupancy,
    Telemetry,
    ensure_telemetry,
)


class NIC:
    """A single-queue NIC with DMA latency and interrupt moderation."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "eth0",
        dma_latency_ns: int = 10 * US,
        tx_dma_latency_ns: int = 5 * US,
        rx_ring_size: int = 2048,
        moderation: ModerationConfig = ModerationConfig(),
        trace: Optional[TraceRecorder] = None,
        tx_complete_interrupts: bool = False,
        telemetry: Optional[Telemetry] = None,
        stats_prefix: str = "nic",
    ):
        self._sim = sim
        self.name = name
        self.dma_latency_ns = dma_latency_ns
        self.tx_dma_latency_ns = tx_dma_latency_ns
        self.rx_ring_size = rx_ring_size
        self.icr = ICR()
        self.moderator = InterruptModerator(sim, moderation, self._post_interrupt)
        self._port: Optional[LinkPort] = None
        self._rx_ring: Deque[Frame] = deque()
        self._rx_burst_fifo: Deque[Frame] = deque()

        # Hardware observation points (NCAP hooks).
        self.rx_hw_taps: List[Callable[[Frame], None]] = []
        self.tx_hw_taps: List[Callable[[Frame], None]] = []
        # Driver top half, invoked when an interrupt is posted.
        self.on_interrupt: Optional[Callable[[], None]] = None

        self.telemetry = ensure_telemetry(telemetry, trace)
        stats = self.telemetry.scope(stats_prefix)
        self._rx_frames = stats.counter("rx.frames")
        self._rx_bytes = stats.counter("rx.bytes")
        self._rx_delivered_frames = stats.counter("rx.delivered_frames")
        self._rx_delivered_bytes = stats.counter("rx.delivered_bytes")
        self._rx_dropped_frames = stats.counter("rx.dropped_frames")
        self._rx_dropped_bytes = stats.counter("rx.dropped_bytes")
        self._tx_frames = stats.counter("tx.frames")
        self._tx_bytes = stats.counter("tx.bytes")
        self._rx_probe = self.telemetry.probe("nic.rx")
        self._tx_probe = self.telemetry.probe("nic.tx")
        self._ring_probe = self.telemetry.probe("nic.ring")
        self._span_probe = self.telemetry.probe("request.span")

        #: When enabled, completed transmissions set IT_TX and go through
        #: the same moderation as rx events, so the driver can reclaim tx
        #: descriptors (off by default: the paper's rx path is the story,
        #: and reclamation cost is otherwise folded into the tx syscall).
        self.tx_complete_interrupts = tx_complete_interrupts
        self.tx_completions_pending = 0

    # -- stat views (wire-level rx semantics match the pre-split counters) --

    @property
    def rx_frames(self) -> int:
        """Frames seen on the wire (including ones later dropped)."""
        return int(self._rx_frames.value)

    @property
    def rx_bytes(self) -> int:
        """Wire bytes seen (including ones later dropped)."""
        return int(self._rx_bytes.value)

    @property
    def rx_delivered_frames(self) -> int:
        """Frames that made it into the rx ring."""
        return int(self._rx_delivered_frames.value)

    @property
    def rx_delivered_bytes(self) -> int:
        return int(self._rx_delivered_bytes.value)

    @property
    def rx_dropped(self) -> int:
        """Frames dropped because the rx ring was full."""
        return int(self._rx_dropped_frames.value)

    @property
    def rx_dropped_bytes(self) -> int:
        return int(self._rx_dropped_bytes.value)

    @property
    def tx_frames(self) -> int:
        return int(self._tx_frames.value)

    @property
    def tx_bytes(self) -> int:
        return int(self._tx_bytes.value)

    # -- wiring ----------------------------------------------------------

    def attach_port(self, port: LinkPort) -> None:
        self._port = port

    # -- receive path -------------------------------------------------------

    def receive_frame(self, frame: Frame) -> None:
        """Frame arrived on the wire (link delivery point)."""
        self._rx_frames.inc()
        self._rx_bytes.inc(frame.wire_bytes)
        if self._rx_probe.enabled:
            self._rx_probe.emit(
                NicRx(self._sim.now, self.name, frame.wire_bytes, frame.kind)
            )
        if self._span_probe.enabled and frame.kind == "request":
            self._span_probe.emit(
                RequestPhase(self._sim.now, frame.src, frame.req_id, "arrival")
            )
        for tap in self.rx_hw_taps:
            tap(frame)
        self._sim.schedule(self.dma_latency_ns, self._dma_complete, frame)

    def receive_burst(self, frames: List[Frame], times: List[int]) -> None:
        """Vectorized wire arrival: ``frames[i]`` lands at ``times[i]``.

        The terminal hop of the bulk datapath (client port → link →
        switch → link → NIC): the whole burst is scheduled with one
        ``schedule_many`` call, and each arrival event replays the exact
        scalar ``receive_frame`` body — counters, probes, hardware taps
        and DMA scheduling all happen at the same per-frame timestamps as
        the scalar path, so downstream behaviour is unchanged.  ``times``
        must be non-decreasing and strictly after ``sim.now``.
        """
        if not frames:
            return
        self._rx_burst_fifo.extend(frames)
        self._sim.schedule_many(times, self._rx_burst_arrival)

    def _rx_burst_arrival(self) -> None:
        self.receive_frame(self._rx_burst_fifo.popleft())

    def _dma_complete(self, frame: Frame) -> None:
        if len(self._rx_ring) >= self.rx_ring_size:
            self._rx_dropped_frames.inc()
            self._rx_dropped_bytes.inc(frame.wire_bytes)
            if self._ring_probe.enabled:
                self._ring_probe.emit(
                    RingOccupancy(
                        self._sim.now,
                        self.name,
                        len(self._rx_ring),
                        self.rx_ring_size,
                        dropped=True,
                    )
                )
            if self._span_probe.enabled and frame.kind == "request":
                self._span_probe.emit(
                    RequestPhase(self._sim.now, frame.src, frame.req_id, "dropped")
                )
            return
        self._rx_ring.append(frame)
        self._rx_delivered_frames.inc()
        self._rx_delivered_bytes.inc(frame.wire_bytes)
        if self._ring_probe.enabled:
            self._ring_probe.emit(
                RingOccupancy(
                    self._sim.now,
                    self.name,
                    len(self._rx_ring),
                    self.rx_ring_size,
                    dropped=False,
                )
            )
        if self._span_probe.enabled and frame.kind == "request":
            self._span_probe.emit(
                RequestPhase(self._sim.now, frame.src, frame.req_id, "dma")
            )
        self.icr.set(ICR.IT_RX)
        self.moderator.notify_event()

    # -- driver-side interface ---------------------------------------------------

    def read_icr(self) -> int:
        """PCIe read of the ICR (read-to-clear), done by the top half."""
        return self.icr.read_and_clear()

    def take_rx(self, budget: int) -> List[Frame]:
        """Pop up to ``budget`` frames from the rx ring (NAPI poll)."""
        batch: List[Frame] = []
        while self._rx_ring and len(batch) < budget:
            batch.append(self._rx_ring.popleft())
        return batch

    @property
    def rx_pending(self) -> int:
        return len(self._rx_ring)

    def post_interrupt_now(self, bits: int) -> None:
        """Set ICR ``bits`` and post an interrupt immediately (NCAP path)."""
        self.icr.set(bits)
        self.moderator.force_fire_now()

    def _post_interrupt(self) -> None:
        if self.on_interrupt is not None:
            self.on_interrupt()

    # -- transmit path --------------------------------------------------------------

    def transmit(self, frame: Frame) -> None:
        """Queue ``frame`` for transmission (descriptor fetch + DMA, then wire)."""
        self._tx_frames.inc()
        self._tx_bytes.inc(frame.wire_bytes)
        if self._tx_probe.enabled:
            self._tx_probe.emit(
                NicTx(self._sim.now, self.name, frame.wire_bytes, frame.kind)
            )
        for tap in self.tx_hw_taps:
            tap(frame)
        self._sim.schedule(self.tx_dma_latency_ns, self._tx_to_wire, frame)

    def _tx_to_wire(self, frame: Frame) -> None:
        assert self._port is not None, "NIC has no attached link port"
        self._port.send(frame)
        if self.tx_complete_interrupts:
            self.tx_completions_pending += 1
            self.icr.set(ICR.IT_TX)
            self.moderator.notify_event()

    def take_tx_completions(self) -> int:
        """Driver-side reclamation: how many tx descriptors completed."""
        count, self.tx_completions_pending = self.tx_completions_pending, 0
        return count
