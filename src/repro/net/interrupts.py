"""NIC interrupt plumbing: the ICR register and interrupt-throttling timers.

Section 4.2 of the paper: GbE controllers moderate their interrupt rate
with five timers — two Absolute ITTs, two Packet ITTs, and one Master ITT.
We model the externally visible behaviour:

- **PITT** — a short coalescing window after a packet event before an
  interrupt is posted (lets a burst share one interrupt);
- **MITT** — a minimum gap between consecutive interrupts, bounding the
  total interrupt rate (expires every 40–100 µs in the paper);
- **AITT** — an absolute bound on how long the earliest pending event may
  wait, capping the delay PITT+MITT can impose.

The **ICR** (Interrupt Cause Read) register accumulates cause bits until
the driver's top half reads (and clears) it over PCIe.  NCAP adds two new
cause bits to the unused bits of the ICR: ``IT_HIGH`` and ``IT_LOW``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.kernel import Event, Simulator
from repro.sim.units import US


class ICR:
    """Interrupt Cause Read register (read-to-clear)."""

    IT_RX = 0x01
    IT_TX = 0x02
    IT_HIGH = 0x04   # NCAP: burst of latency-critical requests detected
    IT_LOW = 0x08    # NCAP: sustained low activity detected

    def __init__(self) -> None:
        self._bits = 0

    def set(self, bits: int) -> None:
        self._bits |= bits

    def peek(self) -> int:
        return self._bits

    def read_and_clear(self) -> int:
        bits, self._bits = self._bits, 0
        return bits

    @staticmethod
    def describe(bits: int) -> str:
        names = []
        for name in ("IT_RX", "IT_TX", "IT_HIGH", "IT_LOW"):
            if bits & getattr(ICR, name):
                names.append(name)
        return "|".join(names) if names else "0"


@dataclass(frozen=True)
class ModerationConfig:
    """Interrupt-throttling timer settings."""

    pitt_ns: int = 25 * US    # packet coalescing window
    mitt_ns: int = 100 * US   # minimum inter-interrupt gap (master timer)
    aitt_ns: int = 200 * US   # absolute cap on the earliest event's wait


class InterruptModerator:
    """Schedules interrupt postings subject to PITT/MITT/AITT."""

    def __init__(self, sim: Simulator, config: ModerationConfig, fire: Callable[[], None]):
        self._sim = sim
        self.config = config
        self._fire_cb = fire
        self._scheduled: Optional[Event] = None
        self._first_pending_ns: Optional[int] = None
        self.last_fire_ns: int = -(10**18)
        self.interrupts_posted: int = 0

    @property
    def pending(self) -> bool:
        return self._scheduled is not None

    def notify_event(self) -> None:
        """A packet event occurred (frame ready in the rx ring)."""
        now = self._sim.now
        if self._first_pending_ns is None:
            self._first_pending_ns = now
        if self._scheduled is not None:
            return  # coalesced into the already-scheduled interrupt
        target = max(now + self.config.pitt_ns, self.last_fire_ns + self.config.mitt_ns)
        target = min(target, self._first_pending_ns + self.config.aitt_ns)
        target = max(target, now)
        self._scheduled = self._sim.schedule_at(target, self._fire)

    def force_fire_now(self) -> None:
        """Post an interrupt immediately, bypassing moderation (NCAP)."""
        if self._scheduled is not None:
            self._scheduled.cancel()
            self._scheduled = None
        self._fire()

    def _fire(self) -> None:
        self._scheduled = None
        self._first_pending_ns = None
        self.last_fire_ns = self._sim.now
        self.interrupts_posted += 1
        self._fire_cb()

    def ns_since_last_interrupt(self) -> int:
        return self._sim.now - self.last_fire_ns
