"""A store-and-forward Ethernet switch.

Routes frames between attached links by destination name.  Forwarding adds
a fixed per-frame latency; output contention is handled by the outgoing
link's serialization FIFO.  Frames for unknown destinations are dropped
(and counted), like a real switch with no matching CAM entry and flooding
disabled.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.net.link import Link, LinkPort
from repro.net.packet import Frame
from repro.sim.kernel import Simulator
from repro.sim.units import US


class Switch:
    """A named multi-port switch."""

    def __init__(self, sim: Simulator, name: str = "switch", forward_latency_ns: int = 1 * US):
        self._sim = sim
        self.name = name
        self.forward_latency_ns = forward_latency_ns
        self._ports: Dict[str, LinkPort] = {}
        self.frames_forwarded = 0
        self.frames_dropped = 0

    def attach_link(self, link: Link, peer_name: str) -> None:
        """Register ``link`` as the route to destination ``peer_name``.

        Call after ``link.attach(switch, peer_device)``.
        """
        self._ports[peer_name] = link.endpoint_port(self)

    def receive_frame(self, frame: Frame) -> None:
        port = self._ports.get(frame.dst)
        if port is None:
            self.frames_dropped += 1
            return
        self._sim.schedule(self.forward_latency_ns, self._forward, frame, port)

    def _forward(self, frame: Frame, port: LinkPort) -> None:
        self.frames_forwarded += 1
        port.send(frame)

    def receive_burst(self, frames: Sequence[Frame], times: Sequence[int]) -> None:
        """Vectorized arrival of ``frames[i]`` at ``times[i]`` (non-decreasing).

        The analytic counterpart of per-frame ``receive_frame`` +
        ``_forward`` events: forwarding latency is added to the arrival
        vector and each destination's sub-vector continues down its output
        link's ``send_vector`` in arrival order.  Forward/drop counters are
        bumped up front (same end-of-run totals).
        """
        groups: Dict[str, Tuple[LinkPort, List[Frame], List[int]]] = {}
        for frame, t in zip(frames, times):
            group = groups.get(frame.dst)
            if group is None:
                port = self._ports.get(frame.dst)
                if port is None:
                    self.frames_dropped += 1
                    continue
                group = groups[frame.dst] = (port, [], [])
            group[1].append(frame)
            group[2].append(t + self.forward_latency_ns)
        for port, group_frames, group_times in groups.values():
            self.frames_forwarded += len(group_frames)
            port.send_vector(group_times, group_frames)

    @property
    def known_destinations(self):
        return sorted(self._ports)
