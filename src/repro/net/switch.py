"""A store-and-forward Ethernet switch.

Routes frames between attached links by destination name.  Forwarding adds
a fixed per-frame latency; output contention is handled by the outgoing
link's serialization FIFO.  Frames for unknown destinations are dropped
(and counted), like a real switch with no matching CAM entry and flooding
disabled.
"""

from __future__ import annotations

from typing import Dict

from repro.net.link import Link, LinkPort
from repro.net.packet import Frame
from repro.sim.kernel import Simulator
from repro.sim.units import US


class Switch:
    """A named multi-port switch."""

    def __init__(self, sim: Simulator, name: str = "switch", forward_latency_ns: int = 1 * US):
        self._sim = sim
        self.name = name
        self.forward_latency_ns = forward_latency_ns
        self._ports: Dict[str, LinkPort] = {}
        self.frames_forwarded = 0
        self.frames_dropped = 0

    def attach_link(self, link: Link, peer_name: str) -> None:
        """Register ``link`` as the route to destination ``peer_name``.

        Call after ``link.attach(switch, peer_device)``.
        """
        self._ports[peer_name] = link.endpoint_port(self)

    def receive_frame(self, frame: Frame) -> None:
        port = self._ports.get(frame.dst)
        if port is None:
            self.frames_dropped += 1
            return
        self._sim.schedule(self.forward_latency_ns, self._forward, frame, port)

    def _forward(self, frame: Frame, port: LinkPort) -> None:
        self.frames_forwarded += 1
        port.send(frame)

    @property
    def known_destinations(self):
        return sorted(self._ports)
