"""Profile exporters: handler tables, collapsed stacks, wall-clock lane.

Three views of one :class:`~repro.profiling.profiler.LoopProfile`:

- :func:`format_top_handlers` — a plain-text top-N table (the bench
  reports embed it);
- :func:`collapsed_stacks` — ``subsystem;qualname <wall_us>`` lines, the
  folded-stack format flamegraph tooling (``flamegraph.pl``, speedscope,
  inferno) consumes directly;
- :func:`wall_clock_trace_events` — Chrome Trace Event Format entries on
  a dedicated wall-clock process lane, mergeable into the existing
  :class:`~repro.telemetry.ChromeTraceSink` export via
  :meth:`~repro.telemetry.ChromeTraceSink.add_profile` (every other lane
  in that export runs on *simulated* time; this one runs on wall time:
  throughput counters from the profiler's checkpoints plus a stacked bar
  of the top handlers' cumulative wall cost).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.metrics.report import format_table
from repro.profiling.profiler import LoopProfile

#: pid for the wall-clock lane; the sim-time lanes use pid 1.
WALL_PID = 2


def format_top_handlers(
    profile: LoopProfile, n: int = 15, title: str = "Top handlers by wall time"
) -> str:
    """A fixed-width top-N handler table."""
    total = max(profile.loop_wall_ns, 1)
    rows = [
        [
            h.subsystem,
            h.qualname,
            h.calls,
            round(h.wall_ns / 1e6, 3),
            round(h.wall_ns / max(h.calls, 1)),
            f"{100.0 * h.wall_ns / total:.1f}%",
        ]
        for h in profile.top(n)
    ]
    rows.append(
        [
            "(kernel)",
            "cancelled-event pops",
            profile.cancelled_pops,
            round(profile.cancelled_wall_ns / 1e6, 3),
            round(
                profile.cancelled_wall_ns / max(profile.cancelled_pops, 1)
            ),
            f"{100.0 * profile.cancelled_wall_ns / total:.1f}%",
        ]
    )
    return format_table(
        ["subsystem", "handler", "calls", "wall (ms)", "ns/call", "share"],
        rows,
        title=title,
    )


def collapsed_stacks(profile: LoopProfile) -> str:
    """Folded-stack text: one ``subsystem;qualname <weight>`` line each.

    Weights are integer microseconds of attributed wall time (the
    conventional sample unit for folded stacks); handlers whose total
    rounds to zero are kept at weight 1 so they stay visible.
    """
    lines = []
    for h in profile.handlers:
        weight = max(1, round(h.wall_ns / 1000))
        lines.append(f"{h.subsystem};{h.qualname} {weight}")
    if profile.cancelled_pops:
        weight = max(1, round(profile.cancelled_wall_ns / 1000))
        lines.append(f"sim;Simulator.run;cancelled-pops {weight}")
    return "\n".join(lines) + ("\n" if lines else "")


def wall_clock_trace_events(
    profile: LoopProfile, top_n: int = 10, pid: int = WALL_PID
) -> List[Dict[str, Any]]:
    """Chrome-trace events for the wall-clock lane.

    Timestamps are wall microseconds since the first profiled loop
    started (the sim-time lanes use simulated microseconds; keeping the
    lanes on separate pids keeps the axes from being conflated).
    """
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0.0,
            "pid": pid,
            "tid": 0,
            "args": {"name": "wall-clock (simulator profile)"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "ts": 0.0,
            "pid": pid,
            "tid": 0,
            "args": {"name": "throughput"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "ts": 0.0,
            "pid": pid,
            "tid": 1,
            "args": {"name": "handlers (cumulative wall time)"},
        },
    ]
    prev_wall, prev_events, prev_sim = 0, 0, 0
    for wall_ns, sim_ns, n_events in profile.checkpoints:
        d_wall = wall_ns - prev_wall
        if d_wall <= 0:
            continue
        events.append(
            {
                "name": "events/sec",
                "cat": "profile",
                "ph": "C",
                "ts": wall_ns / 1e3,
                "pid": pid,
                "tid": 0,
                "args": {"rate": (n_events - prev_events) * 1e9 / d_wall},
            }
        )
        events.append(
            {
                "name": "sim-ns/wall-s",
                "cat": "profile",
                "ph": "C",
                "ts": wall_ns / 1e3,
                "pid": pid,
                "tid": 0,
                "args": {"rate": (sim_ns - prev_sim) * 1e9 / d_wall},
            }
        )
        prev_wall, prev_events, prev_sim = wall_ns, n_events, sim_ns
    offset_ns = 0
    for h in profile.top(top_n):
        events.append(
            {
                "name": h.qualname,
                "cat": "profile",
                "ph": "X",
                "ts": offset_ns / 1e3,
                "dur": h.wall_ns / 1e3,
                "pid": pid,
                "tid": 1,
                "args": {
                    "subsystem": h.subsystem,
                    "calls": h.calls,
                    "ns_per_call": h.wall_ns / max(h.calls, 1),
                },
            }
        )
        offset_ns += h.wall_ns
    return events
