"""Window/imbalance profiler for the sharded datacenter coordinator.

ROADMAP item 2 calls out that "shard imbalance sets the critical path" of
a sharded run — this module is the instrument that measures it.  The
coordinator's conservative-window loop is timed per window and per phase
(injection planning, the advance barrier, boundary observe/merge), and
every shard reports its own wall time and event count for each window.
From those samples the profiler derives the quantities a work-stealing or
share-aware shard planner would need to justify itself:

- **critical path** — ``Σ_w max_shard wall(w)``: the serialized time the
  lockstep barrier actually pays, window by window;
- **load-imbalance factor** — max over shards of total wall divided by
  the mean: 1.0 is perfect balance;
- **critical-path share** — per shard, the fraction of the critical path
  contributed by the windows it straggled;
- **speedup bound** — total shard work over the critical path: the best
  parallel speedup any placement of these shards could achieve at the
  measured per-window balance (compare against the observed 7.53×);
- **pool-slot utilization** — how busy the worker slots were while the
  barrier waited for the slowest one.

All of it is wall-clock observer data: it lives on
:class:`~repro.cluster.datacenter.DatacenterResult` (like ``ShardStats``)
and never enters the ResultRecord, whose contents stay a pure function of
the config.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.telemetry.tracing import WINDOW_PID, lane_metadata_events


@dataclass
class WindowSample:
    """One conservative window as the coordinator and shards saw it."""

    index: int
    t_start_ns: int
    t_end_ns: int
    #: Coordinator phase wall times for this window (seconds).
    plan_s: float
    advance_s: float
    observe_s: float
    #: Per-shard wall seconds and handled events inside the advance.
    shard_wall_s: Dict[int, float]
    shard_events: Dict[int, int]
    #: Dispatches planned for this window.
    injections: int

    @property
    def straggler(self) -> int:
        """The shard whose advance took longest this window."""
        return max(self.shard_wall_s, key=lambda s: (self.shard_wall_s[s], s))

    @property
    def max_shard_wall_s(self) -> float:
        return max(self.shard_wall_s.values(), default=0.0)


@dataclass
class FleetProfile:
    """Accumulated per-window samples plus the derived imbalance report."""

    n_shards: int
    n_slots: int
    windows: List[WindowSample] = field(default_factory=list)

    def record(self, sample: WindowSample) -> None:
        self.windows.append(sample)

    def slot_of_shard(self, shard: int) -> int:
        return shard % self.n_slots

    # -- derived metrics -------------------------------------------------

    @property
    def shard_wall_totals(self) -> Dict[int, float]:
        totals = {s: 0.0 for s in range(self.n_shards)}
        for w in self.windows:
            for s, wall in w.shard_wall_s.items():
                totals[s] = totals.get(s, 0.0) + wall
        return totals

    @property
    def shard_event_totals(self) -> Dict[int, int]:
        totals = {s: 0 for s in range(self.n_shards)}
        for w in self.windows:
            for s, n in w.shard_events.items():
                totals[s] = totals.get(s, 0) + n
        return totals

    @property
    def total_shard_wall_s(self) -> float:
        return sum(self.shard_wall_totals.values())

    @property
    def critical_path_s(self) -> float:
        """Σ over windows of the slowest shard's wall time."""
        return sum(w.max_shard_wall_s for w in self.windows)

    @property
    def load_imbalance_factor(self) -> float:
        """Max shard total wall over the mean (1.0 = perfectly balanced)."""
        totals = list(self.shard_wall_totals.values())
        if not totals or sum(totals) == 0.0:
            return 1.0
        return max(totals) / (sum(totals) / len(totals))

    @property
    def speedup_bound(self) -> float:
        """Best parallel speedup this work could see at perfect placement."""
        critical = self.critical_path_s
        if critical == 0.0:
            return float(self.n_shards)
        return self.total_shard_wall_s / critical

    @property
    def critical_path_share(self) -> Dict[int, float]:
        """Per shard: fraction of the critical path where it straggled."""
        critical = self.critical_path_s
        shares = {s: 0.0 for s in range(self.n_shards)}
        if critical == 0.0:
            return shares
        for w in self.windows:
            shares[w.straggler] = (
                shares.get(w.straggler, 0.0) + w.max_shard_wall_s / critical
            )
        return shares

    @property
    def straggler_windows(self) -> Dict[int, int]:
        counts = {s: 0 for s in range(self.n_shards)}
        for w in self.windows:
            counts[w.straggler] = counts.get(w.straggler, 0) + 1
        return counts

    @property
    def pool_slot_utilization(self) -> float:
        """Shard busy time over slot capacity during the barrier waits.

        Slot capacity per window is ``n_slots × max_slot busy(w)`` (the
        barrier holds every slot until the slowest one finishes); shards
        mapped to the same slot run serially inside it.
        """
        capacity = 0.0
        busy = 0.0
        for w in self.windows:
            slot_busy = {slot: 0.0 for slot in range(self.n_slots)}
            for s, wall in w.shard_wall_s.items():
                slot = self.slot_of_shard(s)
                slot_busy[slot] = slot_busy.get(slot, 0.0) + wall
            window_max = max(slot_busy.values(), default=0.0)
            capacity += self.n_slots * window_max
            busy += sum(slot_busy.values())
        if capacity == 0.0:
            return 1.0
        return busy / capacity

    @property
    def coordinator_s(self) -> Dict[str, float]:
        plan = sum(w.plan_s for w in self.windows)
        advance = sum(w.advance_s for w in self.windows)
        observe = sum(w.observe_s for w in self.windows)
        #: The advance phase is the barrier: coordinator wall beyond the
        #: slowest shard's own work is wait + IPC overhead.
        barrier_wait = sum(
            max(0.0, w.advance_s - w.max_shard_wall_s) for w in self.windows
        )
        return {
            "plan_s": plan,
            "advance_s": advance,
            "observe_s": observe,
            "barrier_wait_s": barrier_wait,
        }

    # -- export ----------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        coord = self.coordinator_s
        return {
            "n_shards": self.n_shards,
            "n_slots": self.n_slots,
            "n_windows": len(self.windows),
            "critical_path_s": self.critical_path_s,
            "total_shard_wall_s": self.total_shard_wall_s,
            "load_imbalance_factor": self.load_imbalance_factor,
            "speedup_bound": self.speedup_bound,
            "pool_slot_utilization": self.pool_slot_utilization,
            "coordinator": coord,
            "shards": {
                str(s): {
                    "wall_s": self.shard_wall_totals.get(s, 0.0),
                    "events": self.shard_event_totals.get(s, 0),
                    "straggler_windows": self.straggler_windows.get(s, 0),
                    "critical_path_share": self.critical_path_share.get(s, 0.0),
                    "slot": self.slot_of_shard(s),
                }
                for s in range(self.n_shards)
            },
            "windows": [
                {
                    "index": w.index,
                    "t_start_ns": w.t_start_ns,
                    "t_end_ns": w.t_end_ns,
                    "plan_s": w.plan_s,
                    "advance_s": w.advance_s,
                    "observe_s": w.observe_s,
                    "injections": w.injections,
                    "straggler": w.straggler,
                    "shard_wall_s": {
                        str(s): wall for s, wall in sorted(w.shard_wall_s.items())
                    },
                    "shard_events": {
                        str(s): n for s, n in sorted(w.shard_events.items())
                    },
                }
                for w in self.windows
            ],
        }


def window_trace_events(profile: FleetProfile) -> List[Dict[str, Any]]:
    """The window timeline as a wall-clock Chrome-trace lane.

    Lane pid is :data:`~repro.telemetry.tracing.WINDOW_PID`; tid 0 is the
    coordinator's plan/advance/observe phases, tid ``1+s`` shows shard
    ``s``'s busy span inside each window's barrier.  Timestamps are
    cumulative coordinator wall time in µs, so the lane composes with the
    self-profiler's wall lane rather than the simulated-time lanes.
    """
    events: List[Dict[str, Any]] = []
    threads: Dict[int, str] = {0: "coordinator"}
    cursor_us = 0.0

    def span(name: str, cat: str, start_us: float, dur_us: float,
             tid: int, args: Dict[str, Any]) -> None:
        events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": start_us,
                "dur": dur_us,
                "pid": WINDOW_PID,
                "tid": tid,
                "args": args,
            }
        )

    for w in profile.windows:
        win_args = {
            "window": w.index,
            "t_start_ns": w.t_start_ns,
            "t_end_ns": w.t_end_ns,
            "straggler": w.straggler,
        }
        plan_us = w.plan_s * 1e6
        advance_us = w.advance_s * 1e6
        observe_us = w.observe_s * 1e6
        span(f"plan w{w.index}", "coordinator", cursor_us, plan_us, 0,
             {**win_args, "injections": w.injections})
        barrier_start = cursor_us + plan_us
        span(f"advance w{w.index}", "coordinator", barrier_start, advance_us,
             0, win_args)
        for s, wall in sorted(w.shard_wall_s.items()):
            threads[1 + s] = f"shard {s}"
            span(
                f"shard{s} w{w.index}", "shard", barrier_start, wall * 1e6,
                1 + s,
                {"window": w.index, "wall_s": wall,
                 "events": w.shard_events.get(s, 0)},
            )
        span(f"observe w{w.index}", "coordinator",
             barrier_start + advance_us, observe_us, 0, win_args)
        cursor_us = barrier_start + advance_us + observe_us

    events.extend(
        lane_metadata_events(WINDOW_PID, "fleet windows (wall clock)", threads)
    )
    return events


def format_fleet_profile(
    profile: FleetProfile, measured_speedup: Optional[float] = None
) -> str:
    """Plain-text imbalance report for ``repro datacenter --profile-fleet``."""
    from repro.metrics.report import format_table

    coord = profile.coordinator_s
    wall_totals = profile.shard_wall_totals
    event_totals = profile.shard_event_totals
    shares = profile.critical_path_share
    straggles = profile.straggler_windows
    rows = []
    for s in sorted(wall_totals):
        wall = wall_totals[s]
        rows.append(
            [
                s,
                profile.slot_of_shard(s),
                round(wall, 3),
                event_totals.get(s, 0),
                round(event_totals.get(s, 0) / wall / 1e6, 3) if wall else 0.0,
                straggles.get(s, 0),
                f"{100.0 * shares.get(s, 0.0):.1f}%",
            ]
        )
    table = format_table(
        ["shard", "slot", "wall (s)", "events", "Mev/s",
         "straggled", "critical-path share"],
        rows,
        title=(
            f"Fleet window profile — {len(profile.windows)} windows, "
            f"{profile.n_shards} shards on {profile.n_slots} slots"
        ),
    )
    lines = [table, ""]
    lines.append(
        f"load-imbalance factor : {profile.load_imbalance_factor:.3f} "
        f"(max shard wall / mean)"
    )
    lines.append(
        f"critical path         : {profile.critical_path_s:.3f} s of "
        f"{profile.total_shard_wall_s:.3f} s total shard work"
    )
    bound = profile.speedup_bound
    vs = f" (measured {measured_speedup:.2f}x)" if measured_speedup else ""
    lines.append(
        f"speedup bound         : {bound:.2f}x at this per-window balance{vs}"
    )
    lines.append(
        f"pool-slot utilization : {100.0 * profile.pool_slot_utilization:.1f}%"
    )
    lines.append(
        "coordinator           : "
        f"plan {coord['plan_s']:.3f} s, advance {coord['advance_s']:.3f} s "
        f"(barrier wait {coord['barrier_wait_s']:.3f} s), "
        f"observe/merge {coord['observe_s']:.3f} s"
    )
    return "\n".join(lines)


__all__ = [
    "FleetProfile",
    "WindowSample",
    "format_fleet_profile",
    "window_trace_events",
]
