"""Simulator self-profiling: where does *wall-clock* time go?

The rest of the repo observes the simulated system (telemetry, critical
paths, flight recorder); this package observes the simulator.  A
:class:`SimProfiler` attached via
:meth:`repro.sim.kernel.Simulator.set_profiler` swaps in an instrumented
dispatch loop that attributes wall time and event counts to each handler
(keyed by callable qualname and owner subsystem) and tracks event-heap
health — zero overhead when not attached.

Exporters turn a finished :class:`LoopProfile` into a top-N handler
table, collapsed-stack text for flamegraph tooling, and a wall-clock
lane for the existing Chrome-trace export.

    from repro.profiling import SimProfiler

    profiler = SimProfiler()
    sim.set_profiler(profiler)
    sim.run()
    print(format_top_handlers(profiler.profile()))
"""

from repro.profiling.export import (
    collapsed_stacks,
    format_top_handlers,
    wall_clock_trace_events,
)
from repro.profiling.profiler import (
    PROFILE_SCHEMA_VERSION,
    HandlerStats,
    LoopProfile,
    SimProfiler,
    peak_rss_bytes,
)

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "HandlerStats",
    "LoopProfile",
    "SimProfiler",
    "collapsed_stacks",
    "format_top_handlers",
    "peak_rss_bytes",
    "wall_clock_trace_events",
]
