"""The event-loop profiler: per-handler wall-time attribution.

A :class:`SimProfiler` is attached to a
:class:`~repro.sim.kernel.Simulator` with ``sim.set_profiler(...)``; the
kernel then dispatches through its instrumented loop, which charges the
full wall-clock cost of each iteration (heap pop + dispatch + callback)
to the handler that fired, so the per-handler totals telescope to the
measured loop total.  Cancelled-event lazy-deletion pops are charged to
a dedicated bucket.  Attribution state accumulates across ``run()``
calls; :meth:`SimProfiler.profile` snapshots it into an immutable,
picklable :class:`LoopProfile`.

Handlers are keyed by the callable itself during the run (one dict
lookup per event) and folded into ``(qualname, subsystem)`` aggregates
lazily — at snapshot time, or early whenever the per-callable dict
exceeds :attr:`SimProfiler.fold_threshold` (so workloads that schedule
fresh closures per call cannot grow memory without bound).
"""

from __future__ import annotations

import functools
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Bump when the serialized profile payload changes shape.
PROFILE_SCHEMA_VERSION = 1


def peak_rss_bytes() -> int:
    """Peak resident-set size of this process, in bytes (0 if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    return rss * 1024 if sys.platform != "darwin" else rss


def describe_handler(fn: Callable[..., Any]) -> Tuple[str, str]:
    """``(qualname, subsystem)`` for a dispatch-loop callable.

    Bound methods report their underlying function; ``functools.partial``
    chains unwrap to the wrapped callable.  The subsystem is the first
    package component under ``repro.`` (``net``, ``oskernel``, ``cpu``,
    ...), or the bare module name for anything else.
    """
    while isinstance(fn, functools.partial):
        fn = fn.func
    target = getattr(fn, "__func__", fn)
    qualname = getattr(target, "__qualname__", None) or repr(target)
    module = getattr(target, "__module__", None) or "?"
    if module.startswith("repro."):
        parts = module.split(".")
        subsystem = parts[1] if len(parts) > 1 else "repro"
    else:
        subsystem = module
    return qualname, subsystem


@dataclass(frozen=True)
class HandlerStats:
    """One handler's aggregate cost."""

    qualname: str
    subsystem: str
    calls: int
    wall_ns: int

    @property
    def key(self) -> str:
        return f"{self.subsystem};{self.qualname}"


@dataclass
class LoopProfile:
    """An immutable snapshot of a profiled dispatch loop.

    Plain data: picklable, JSON-round-trippable, safe to hang off an
    :class:`~repro.cluster.simulation.ExperimentResult`.
    """

    #: Per-handler attribution, sorted by descending wall time.
    handlers: List[HandlerStats] = field(default_factory=list)
    #: Total wall time spent inside the instrumented loop(s).
    loop_wall_ns: int = 0
    #: Wall time charged to lazy-deletion pops of cancelled events.
    cancelled_wall_ns: int = 0
    events: int = 0
    sim_ns: int = 0
    max_heap_depth: int = 0
    final_heap_size: int = 0
    cancelled_pops: int = 0
    #: Cancelled events eagerly unlinked by the wheel's tail fast path
    #: (never entered the lazy-tombstone machinery).
    cancelled_unlinked: int = 0
    compactions: int = 0
    compacted_events: int = 0
    peak_rss_bytes: int = 0
    #: ``(wall_ns_since_first_loop, sim_ns, events)`` throughput samples.
    checkpoints: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def attributed_wall_ns(self) -> int:
        """Handler + cancelled-pop wall time; should telescope to
        :attr:`loop_wall_ns` within the loop's own bookkeeping residual."""
        return sum(h.wall_ns for h in self.handlers) + self.cancelled_wall_ns

    @property
    def events_per_wall_s(self) -> float:
        if self.loop_wall_ns <= 0:
            return 0.0
        return self.events * 1e9 / self.loop_wall_ns

    @property
    def sim_ns_per_wall_s(self) -> float:
        """Simulated nanoseconds advanced per wall-clock second."""
        if self.loop_wall_ns <= 0:
            return 0.0
        return self.sim_ns * 1e9 / self.loop_wall_ns

    def top(self, n: int = 10) -> List[HandlerStats]:
        return self.handlers[:n]

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema": PROFILE_SCHEMA_VERSION,
            "loop_wall_ns": self.loop_wall_ns,
            "cancelled_wall_ns": self.cancelled_wall_ns,
            "events": self.events,
            "sim_ns": self.sim_ns,
            "events_per_wall_s": self.events_per_wall_s,
            "sim_ns_per_wall_s": self.sim_ns_per_wall_s,
            "max_heap_depth": self.max_heap_depth,
            "final_heap_size": self.final_heap_size,
            "cancelled_pops": self.cancelled_pops,
            "cancelled_unlinked": self.cancelled_unlinked,
            "compactions": self.compactions,
            "compacted_events": self.compacted_events,
            "peak_rss_bytes": self.peak_rss_bytes,
            "checkpoints": [list(c) for c in self.checkpoints],
            "handlers": [
                {
                    "qualname": h.qualname,
                    "subsystem": h.subsystem,
                    "calls": h.calls,
                    "wall_ns": h.wall_ns,
                }
                for h in self.handlers
            ],
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "LoopProfile":
        schema = data.get("schema")
        if schema != PROFILE_SCHEMA_VERSION:
            raise ValueError(
                f"profile schema {schema!r} != {PROFILE_SCHEMA_VERSION}"
            )
        return cls(
            handlers=[
                HandlerStats(
                    qualname=h["qualname"],
                    subsystem=h["subsystem"],
                    calls=int(h["calls"]),
                    wall_ns=int(h["wall_ns"]),
                )
                for h in data.get("handlers", [])
            ],
            loop_wall_ns=int(data["loop_wall_ns"]),
            cancelled_wall_ns=int(data.get("cancelled_wall_ns", 0)),
            events=int(data["events"]),
            sim_ns=int(data["sim_ns"]),
            max_heap_depth=int(data.get("max_heap_depth", 0)),
            final_heap_size=int(data.get("final_heap_size", 0)),
            cancelled_pops=int(data.get("cancelled_pops", 0)),
            cancelled_unlinked=int(data.get("cancelled_unlinked", 0)),
            compactions=int(data.get("compactions", 0)),
            compacted_events=int(data.get("compacted_events", 0)),
            peak_rss_bytes=int(data.get("peak_rss_bytes", 0)),
            checkpoints=[tuple(c) for c in data.get("checkpoints", [])],
        )


class SimProfiler:
    """Accumulates dispatch-loop attribution for one or more ``run()`` calls.

    The hot-loop-facing fields (``_record``, ``_countdown``, the public
    counters) are deliberately plain attributes the kernel mutates
    directly — the instrumented loop must stay tight.
    """

    def __init__(self, checkpoint_every: int = 50_000, fold_threshold: int = 4096):
        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        #: Events between throughput checkpoints.
        self.checkpoint_every = checkpoint_every
        #: Fold the per-callable dict into string aggregates past this
        #: size, bounding memory under per-call closure churn.
        self.fold_threshold = fold_threshold
        #: callable -> [calls, wall_ns]; folded lazily into ``_agg``.
        self._record: Dict[Callable[..., Any], List[int]] = {}
        self._agg: Dict[Tuple[str, str], List[int]] = {}
        self._countdown = checkpoint_every
        self._wall0_ns: Optional[int] = None
        self._sim_ns0: Optional[int] = None
        self._counters0: Dict[str, int] = {}
        self.loop_wall_ns = 0
        self.cancelled_wall_ns = 0
        self.events = 0
        self.cancelled_pops = 0
        self.max_heap_depth = 0
        self.checkpoints: List[Tuple[int, int, int]] = []
        self._sim_ns = 0
        self._final_heap_size = 0
        self._compactions = 0
        self._compacted_events = 0
        self._cancelled_unlinked = 0

    # -- kernel-facing hooks --------------------------------------------

    def _checkpoint(self, sim_now: int) -> None:
        from time import perf_counter_ns

        wall = perf_counter_ns() - (self._wall0_ns or 0)
        self.checkpoints.append((wall, sim_now, self.events))

    def _note_start(self, sim, wall_ns: int) -> None:
        """Called by the kernel at the start of the first profiled run:
        baseline the simulator's lifetime counters so the profile reports
        deltas, not totals that predate the profiler."""
        self._wall0_ns = wall_ns
        self._sim_ns0 = sim.now
        self._counters0 = {
            "compactions": sim.compactions,
            "compacted_events": sim.compacted_events,
            "cancelled_unlinked": getattr(sim, "cancelled_unlinked", 0),
        }

    def _note_run(self, sim) -> None:
        """Called by the kernel at the end of each profiled ``run()``."""
        self._sim_ns = sim.now - (self._sim_ns0 or 0)
        self._final_heap_size = sim.heap_size()
        self._compactions = sim.compactions - self._counters0.get("compactions", 0)
        self._compacted_events = (
            sim.compacted_events - self._counters0.get("compacted_events", 0)
        )
        self._cancelled_unlinked = getattr(
            sim, "cancelled_unlinked", 0
        ) - self._counters0.get("cancelled_unlinked", 0)

    def _fold(self) -> None:
        """Collapse the per-callable dict into the string-keyed aggregate."""
        agg = self._agg
        for fn, (calls, wall_ns) in self._record.items():
            key = describe_handler(fn)
            entry = agg.get(key)
            if entry is None:
                agg[key] = [calls, wall_ns]
            else:
                entry[0] += calls
                entry[1] += wall_ns
        self._record.clear()

    # -- snapshot --------------------------------------------------------

    def profile(self) -> LoopProfile:
        """Snapshot everything accumulated so far."""
        self._fold()
        handlers = sorted(
            (
                HandlerStats(
                    qualname=qualname,
                    subsystem=subsystem,
                    calls=calls,
                    wall_ns=wall_ns,
                )
                for (qualname, subsystem), (calls, wall_ns) in self._agg.items()
            ),
            key=lambda h: (-h.wall_ns, h.key),
        )
        return LoopProfile(
            handlers=handlers,
            loop_wall_ns=self.loop_wall_ns,
            cancelled_wall_ns=self.cancelled_wall_ns,
            events=self.events,
            sim_ns=self._sim_ns,
            max_heap_depth=self.max_heap_depth,
            final_heap_size=self._final_heap_size,
            cancelled_pops=self.cancelled_pops,
            cancelled_unlinked=self._cancelled_unlinked,
            compactions=self._compactions,
            compacted_events=self._compacted_events,
            peak_rss_bytes=peak_rss_bytes(),
            checkpoints=list(self.checkpoints),
        )
