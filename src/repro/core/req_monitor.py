"""ReqMonitor — hardware detection of latency-critical requests.

Section 4.1 of the paper: the payload of a received TCP packet starts at
byte 66; ReqMonitor compares the first bytes of the payload against a set
of templates held in programmable NIC registers (written through sysfs by
the driver's initialization subroutine).  Matching packets increment
``ReqCnt``; non-matching traffic — PUT/set requests, bulk analytics
transfers, VM-migration streams — is deliberately ignored, which is the
"context-aware" part of NCAP.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.net.packet import Frame
from repro.sim.kernel import Simulator
from repro.telemetry import PacketClassified, Telemetry, ensure_telemetry


class ReqMonitor:
    """Payload-template matcher with a request counter."""

    #: Hardware register width: templates longer than this are truncated.
    TEMPLATE_REGISTER_BYTES = 8

    def __init__(
        self,
        templates: Sequence[bytes] = (b"GET", b"get"),
        sim: Optional[Simulator] = None,
        telemetry: Optional[Telemetry] = None,
        stats_prefix: str = "ncap",
        name: str = "ncap",
    ):
        self._templates: Tuple[bytes, ...] = ()
        self.program_templates(templates)
        self._sim = sim
        self.name = name
        self.telemetry = ensure_telemetry(telemetry)
        stats = self.telemetry.scope(stats_prefix)
        self._req_cnt = stats.counter("classified.lc")
        self._inspected = stats.counter("inspected")
        self._classify_probe = self.telemetry.probe("ncap.classify")
        #: Called after every ReqCnt increment (DecisionEngine's CIT check).
        self.count_listeners: List[Callable[[], None]] = []

    @property
    def req_cnt(self) -> int:
        """Latency-critical requests seen (the paper's ReqCnt register)."""
        return int(self._req_cnt.value)

    @property
    def packets_inspected(self) -> int:
        return int(self._inspected.value)

    # -- programming ---------------------------------------------------

    def program_templates(self, templates: Sequence[bytes]) -> None:
        """Load the template registers (sysfs-facing operation)."""
        cleaned = tuple(
            bytes(t)[: self.TEMPLATE_REGISTER_BYTES] for t in templates if t
        )
        if not cleaned:
            raise ValueError("at least one non-empty template is required")
        self._templates = cleaned

    @property
    def templates(self) -> Tuple[bytes, ...]:
        return self._templates

    # -- inspection ------------------------------------------------------

    def matches(self, payload_prefix: bytes) -> bool:
        """Would a packet with this payload prefix count as a request?"""
        return any(payload_prefix.startswith(t) for t in self._templates)

    def inspect(self, frame: Frame) -> bool:
        """Inspect one received frame (hardware tap, wire-rate).

        Returns True (and bumps ReqCnt) for latency-critical requests.
        """
        self._inspected.inc()
        critical = self.matches(frame.payload_prefix)
        if critical:
            self._req_cnt.inc()
        if self._classify_probe.enabled and self._sim is not None:
            self._classify_probe.emit(
                PacketClassified(
                    self._sim.now, self.name, critical, int(self._req_cnt.value)
                )
            )
        if not critical:
            return False
        for listener in self.count_listeners:
            listener()
        return True
