"""NCAP configuration (thresholds from Section 6 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.sim.units import MS, US


#: Request templates the paper programs into ReqMonitor's registers for
#: OLDI workloads: HTTP ``GET`` and Memcached ASCII ``get``/``gets``.
DEFAULT_TEMPLATES: Tuple[bytes, ...] = (b"GET", b"get")


@dataclass(frozen=True)
class NCAPConfig:
    """Tunables of ReqMonitor / TxBytesCounter / DecisionEngine.

    Defaults are the values the paper selects after characterizing Apache
    and Memcached (Section 6): RHT = 35 K RPS, RLT = 5 K RPS, TLT = 5 Mb/s,
    CIT = 500 µs; the MITT expires every 40–100 µs (we default to 100 µs);
    a low-activity window of 1 ms arms IT_LOW; FCONS selects conservative
    (5 steps) versus aggressive (1 step) frequency reduction.
    """

    rht_rps: float = 35_000.0          # request-rate high threshold
    rlt_rps: float = 5_000.0           # request-rate low threshold
    tlt_bps: float = 5_000_000.0       # transmit-rate low threshold (bits/s)
    cit_ns: int = 500 * US             # core idle-time threshold
    mitt_period_ns: int = 100 * US     # DecisionEngine evaluation tick
    low_window_ns: int = 1 * MS        # sustained-low window before IT_LOW
    fcons: int = 5                     # IT_LOW steps to reach minimum F
    templates: Tuple[bytes, ...] = DEFAULT_TEMPLATES
    #: ncap.sw only — SoftIRQ cycles per packet for the software ReqMonitor.
    sw_inspect_cycles_per_packet: float = 1_500.0
    #: ncap.sw only — kernel cycles per 1 ms DecisionEngine timer callback.
    sw_decision_cycles: float = 12_000.0
    #: ncap.sw only — DecisionEngine timer period (high-resolution timer).
    sw_timer_period_ns: int = 1 * MS

    def __post_init__(self) -> None:
        if self.rlt_rps > self.rht_rps:
            raise ValueError("RLT must not exceed RHT")
        if self.fcons < 1:
            raise ValueError("FCONS must be at least 1")
        if not self.templates:
            raise ValueError("at least one request template is required")
        if self.mitt_period_ns <= 0 or self.low_window_ns <= 0:
            raise ValueError("periods must be positive")


def conservative() -> NCAPConfig:
    """The paper's ``ncap.cons`` (FCONS = 5)."""
    return NCAPConfig(fcons=5)


def aggressive() -> NCAPConfig:
    """The paper's ``ncap.aggr`` (FCONS = 1)."""
    return NCAPConfig(fcons=1)
