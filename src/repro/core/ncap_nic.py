"""The enhanced NIC: wiring ReqMonitor, TxBytesCounter and DecisionEngine
into a baseline NIC (Figure 5(a)–(c) of the paper).

Everything in this module is *hardware*: packet inspection happens at wire
arrival (before DMA), the MITT evaluation tick costs no CPU cycles, and
decisions are delivered to the processor as NIC interrupts with the new
``IT_HIGH``/``IT_LOW`` ICR bits — which is exactly how NCAP hides the
P/C-state transition penalty behind the NIC→memory delivery latency.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.config import NCAPConfig
from repro.core.decision_engine import DecisionEngine
from repro.core.req_monitor import ReqMonitor
from repro.core.tx_counter import TxBytesCounter
from repro.net.nic import NIC
from repro.oskernel.sysfs import SysFS
from repro.sim.kernel import Event, Simulator
from repro.sim.trace import TraceRecorder
from repro.telemetry import ensure_telemetry


class NCAPHardware:
    """ReqMonitor + TxBytesCounter + DecisionEngine bolted onto a NIC."""

    def __init__(
        self,
        sim: Simulator,
        nic: NIC,
        config: NCAPConfig,
        cpu_at_max: Callable[[], bool],
        trace: Optional[TraceRecorder] = None,
        stats_prefix: str = "ncap",
    ):
        self._sim = sim
        self.nic = nic
        self.config = config
        # The NIC's telemetry is the natural home: the monitor/counter/
        # engine are hardware blocks on that NIC.  A ChannelSink attached
        # there keeps the legacy `<name>.ncap.int_wake` channel alive.
        telemetry = nic.telemetry
        if trace is not None and telemetry.channel_trace() is None:
            telemetry = ensure_telemetry(None, trace)
        self.telemetry = telemetry
        self.req_monitor = ReqMonitor(
            config.templates,
            sim=sim,
            telemetry=telemetry,
            stats_prefix=stats_prefix,
            name=f"{nic.name}.ncap",
        )
        self.tx_counter = TxBytesCounter(
            telemetry=telemetry, stats_prefix=stats_prefix
        )
        self.engine = DecisionEngine(
            sim,
            config,
            req_count=lambda: self.req_monitor.req_cnt,
            tx_bytes=lambda: self.tx_counter.tx_bytes,
            post=nic.post_interrupt_now,
            last_interrupt_ns=lambda: nic.moderator.last_fire_ns,
            cpu_at_max=cpu_at_max,
            enable_cit=True,
            name=f"{nic.name}.ncap",
            telemetry=telemetry,
            stats_prefix=stats_prefix,
        )
        nic.rx_hw_taps.append(self.req_monitor.inspect)
        nic.tx_hw_taps.append(self.tx_counter.observe)
        self.req_monitor.count_listeners.append(self.engine.on_req_count_change)
        self._tick_event: Optional[Event] = None
        self._running = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Arm the MITT evaluation tick."""
        if self._running:
            return
        self._running = True
        self.engine.start()
        self._tick_event = self._sim.schedule(
            self.config.mitt_period_ns, self._mitt_tick
        )

    def stop(self) -> None:
        self._running = False
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def _mitt_tick(self) -> None:
        if not self._running:
            return
        self.engine.tick()
        self._tick_event = self._sim.schedule(
            self.config.mitt_period_ns, self._mitt_tick
        )

    # -- administration -------------------------------------------------------

    def register_sysfs(self, sysfs: SysFS, prefix: str = "/sys/class/net/eth0/ncap") -> None:
        """Expose the paper's programmable registers through sysfs."""
        sysfs.register(
            f"{prefix}/templates",
            read=lambda: ",".join(t.decode("latin-1") for t in self.req_monitor.templates),
            write=lambda v: self.req_monitor.program_templates(
                [t.encode("latin-1") for t in v.split(",") if t]
            ),
        )
        sysfs.register(f"{prefix}/rht_rps", initial=str(self.config.rht_rps))
        sysfs.register(f"{prefix}/rlt_rps", initial=str(self.config.rlt_rps))
        sysfs.register(f"{prefix}/tlt_bps", initial=str(self.config.tlt_bps))
        sysfs.register(f"{prefix}/cit_us", initial=str(self.config.cit_ns // 1000))
        sysfs.register(f"{prefix}/fcons", initial=str(self.config.fcons))
        sysfs.register(
            f"{prefix}/reqcnt", read=lambda: str(self.req_monitor.req_cnt)
        )
        sysfs.register(
            f"{prefix}/txcnt", read=lambda: str(self.tx_counter.tx_bytes)
        )
