"""TxBytesCounter — context-free counting of transmitted bytes.

Section 4.1: responses are usually larger than the Ethernet MTU, so one
response becomes a chain of TCP segments; detecting latency-critical
*responses* by content would need complex hardware, and operating at P0
finishes any transmission sooner anyway.  NCAP therefore just counts bytes
(``TxCnt``) and lets DecisionEngine derive ``TxRate``.
"""

from __future__ import annotations

from repro.net.packet import Frame


class TxBytesCounter:
    """Accumulates transmitted wire bytes."""

    def __init__(self) -> None:
        self.tx_bytes: int = 0
        self.frames_observed: int = 0

    def observe(self, frame: Frame) -> None:
        """Hardware tap on the NIC transmit path."""
        self.frames_observed += 1
        self.tx_bytes += frame.wire_bytes
