"""TxBytesCounter — context-free counting of transmitted bytes.

Section 4.1: responses are usually larger than the Ethernet MTU, so one
response becomes a chain of TCP segments; detecting latency-critical
*responses* by content would need complex hardware, and operating at P0
finishes any transmission sooner anyway.  NCAP therefore just counts bytes
(``TxCnt``) and lets DecisionEngine derive ``TxRate``.
"""

from __future__ import annotations

from typing import Optional

from repro.net.packet import Frame
from repro.telemetry import Telemetry, ensure_telemetry


class TxBytesCounter:
    """Accumulates transmitted wire bytes."""

    def __init__(
        self,
        telemetry: Optional[Telemetry] = None,
        stats_prefix: str = "ncap",
    ) -> None:
        self.telemetry = ensure_telemetry(telemetry)
        stats = self.telemetry.scope(stats_prefix)
        self._tx_bytes = stats.counter("tx.bytes")
        self._frames = stats.counter("tx.frames")

    @property
    def tx_bytes(self) -> int:
        """The paper's TxCnt register."""
        return int(self._tx_bytes.value)

    @property
    def frames_observed(self) -> int:
        return int(self._frames.value)

    def observe(self, frame: Frame) -> None:
        """Hardware tap on the NIC transmit path."""
        self._frames.inc()
        self._tx_bytes.inc(frame.wire_bytes)
