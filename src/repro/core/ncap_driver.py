"""Enhanced NIC-driver interrupt handler (Figure 5(d) of the paper).

Registered as an ``icr_hooks`` entry on the baseline :class:`NICDriver`,
so it runs in hardirq context with the freshly read ICR bits:

- ``IT_HIGH``: call the cpufreq fast path to raise F to the maximum,
  disable the menu governor (no short C-state dips during the burst), hold
  the ondemand governor for one invocation period, and wake sleeping cores
  so the wake-up overlaps the in-flight packet delivery;
- ``IT_LOW``: re-enable the menu governor on the first IT_LOW after a
  boost, then step F toward the minimum according to FCONS (1 = jump to
  minimum, 5 = five graded steps).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import NCAPConfig
from repro.net.interrupts import ICR
from repro.oskernel.cpufreq import CpufreqDriver, OndemandGovernor
from repro.oskernel.cpuidle import CpuidleDriver
from repro.oskernel.scheduler import Scheduler


class NCAPDriverExtension:
    """The kernel half of NCAP."""

    def __init__(
        self,
        config: NCAPConfig,
        cpufreq: CpufreqDriver,
        scheduler: Scheduler,
        cpuidle: Optional[CpuidleDriver] = None,
        ondemand: Optional[OndemandGovernor] = None,
        wake_all_on_high: bool = True,
        wake_core=None,
    ):
        self.config = config
        self._cpufreq = cpufreq
        self._scheduler = scheduler
        self._cpuidle = cpuidle
        self._ondemand = ondemand
        self.wake_all_on_high = wake_all_on_high
        #: Per-core NCAP (Section 7, multi-queue NIC): wake only the queue's
        #: target core instead of the whole package.
        self.wake_core = wake_core

        self._steps_remaining = config.fcons
        self._menu_reenabled = True
        self.high_handled = 0
        self.low_handled = 0

    def on_icr(self, bits: int) -> None:
        """Hardirq-context hook (wired into ``NICDriver.icr_hooks``)."""
        if bits & ICR.IT_HIGH:
            self._handle_high()
        elif bits & ICR.IT_LOW:
            self._handle_low()

    def _handle_high(self) -> None:
        self.high_handled += 1
        self._cpufreq.boost_to_max()
        if self._cpuidle is not None:
            self._cpuidle.disable()
            self._menu_reenabled = False
        if self._ondemand is not None:
            self._ondemand.hold()  # one invocation period (Section 4.3)
        if self.wake_core is not None:
            self.wake_core.wake()
        elif self.wake_all_on_high:
            self._scheduler.wake_all()
        self._steps_remaining = self.config.fcons

    def _handle_low(self) -> None:
        self.low_handled += 1
        if not self._menu_reenabled and self._cpuidle is not None:
            self._cpuidle.enable()
            self._menu_reenabled = True
        self._cpufreq.step_down(self._steps_remaining)
        self._steps_remaining = max(1, self._steps_remaining - 1)
