"""DecisionEngine — when to post IT_HIGH / IT_LOW / immediate IT_RX.

Section 4.3 of the paper.  Two triggers:

1. **MITT expiry** (every 40–100 µs): compute ``ReqRate`` from ReqCnt and
   ``TxRate`` from TxCnt over the elapsed window.

   - ``ReqRate > RHT`` and F not already maximal → post ``IT_HIGH|IT_RX``
     (boost to P0, disable menu, hold ondemand for one period);
   - ``ReqRate < RLT`` and ``TxRate < TLT`` sustained for 1 ms → post
     ``IT_LOW`` (step F down; the first IT_LOW re-enables the menu
     governor).  One IT_LOW is sent per sustained-low window until FCONS
     steps have been issued.

2. **ReqCnt change** (a request just arrived): if the time since the last
   interrupt posted to the processor exceeds CIT, the processor is very
   likely sleeping — post an immediate ``IT_RX`` so the wake-up overlaps
   the DMA/delivery latency instead of following it.

The engine is hardware: its evaluation consumes no CPU cycles.  The
``ncap.sw`` variant drives the same engine from a kernel timer, paying
kernel cycles per evaluation (see :mod:`repro.core.ncap_sw`).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.config import NCAPConfig
from repro.net.interrupts import ICR
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder
from repro.telemetry import NcapWake, Telemetry, ensure_telemetry


class DecisionEngine:
    """Threshold logic shared by the hardware and software NCAP variants."""

    def __init__(
        self,
        sim: Simulator,
        config: NCAPConfig,
        req_count: Callable[[], int],
        tx_bytes: Callable[[], int],
        post: Callable[[int], None],
        last_interrupt_ns: Callable[[], int],
        cpu_at_max: Callable[[], bool],
        enable_cit: bool = True,
        trace: Optional[TraceRecorder] = None,
        name: str = "ncap",
        telemetry: Optional[Telemetry] = None,
        stats_prefix: str = "ncap",
    ):
        self._sim = sim
        self.config = config
        self.name = name
        self._req_count = req_count
        self._tx_bytes = tx_bytes
        self._post = post
        self._last_interrupt_ns = last_interrupt_ns
        self._cpu_at_max = cpu_at_max
        self.enable_cit = enable_cit

        self._last_req = 0
        self._last_tx = 0
        self._last_tick_ns = sim.now
        self._low_since: Optional[int] = None
        self._lows_sent = 0
        self._boost_active = False
        self._started = False

        self.telemetry = ensure_telemetry(telemetry, trace)
        stats = self.telemetry.scope(stats_prefix)
        self._ticks = stats.counter("ticks")
        self._it_high = stats.counter("it_high.posts")
        self._it_low = stats.counter("it_low.posts")
        self._immediate_rx = stats.counter("immediate_rx.posts")
        self._wake_probe = self.telemetry.probe("ncap.wake")
        self.last_req_rate_rps: float = 0.0
        self.last_tx_rate_bps: float = 0.0
        self._wake_times: List[int] = []

    @property
    def ticks(self) -> int:
        return int(self._ticks.value)

    @property
    def it_high_posts(self) -> int:
        return int(self._it_high.value)

    @property
    def it_low_posts(self) -> int:
        return int(self._it_low.value)

    @property
    def immediate_rx_posts(self) -> int:
        return int(self._immediate_rx.value)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Snapshot counters so the first tick sees a clean window."""
        self._last_req = self._req_count()
        self._last_tx = self._tx_bytes()
        self._last_tick_ns = self._sim.now
        self._started = True

    # -- rate evaluation (MITT expiry / sw timer) ------------------------------

    def tick(self) -> None:
        """Evaluate rates over the window since the previous tick."""
        if not self._started:
            self.start()
            return
        now = self._sim.now
        period = now - self._last_tick_ns
        if period <= 0:
            return
        self._ticks.inc()
        req = self._req_count()
        tx = self._tx_bytes()
        req_rate = (req - self._last_req) * 1e9 / period
        tx_rate = (tx - self._last_tx) * 8e9 / period
        self._last_req = req
        self._last_tx = tx
        self._last_tick_ns = now
        self.last_req_rate_rps = req_rate
        self.last_tx_rate_bps = tx_rate

        cfg = self.config
        if req_rate > cfg.rht_rps:
            self._low_since = None
            self._lows_sent = 0
            self._boost_active = True
            if not self._cpu_at_max():
                self._it_high.inc()
                self._record_wake("it_high")
                self._post(ICR.IT_HIGH | ICR.IT_RX)
        elif req_rate < cfg.rlt_rps and tx_rate < cfg.tlt_bps:
            if self._low_since is None:
                self._low_since = now
            elif (
                now - self._low_since >= cfg.low_window_ns
                and self._boost_active
            ):
                self._it_low.inc()
                self._post(ICR.IT_LOW)
                self._low_since = now  # pace back-to-back IT_LOWs
                self._lows_sent += 1
                if self._lows_sent >= cfg.fcons:
                    self._boost_active = False
        else:
            self._low_since = None

    # -- CIT path (ReqCnt change) --------------------------------------------

    def on_req_count_change(self) -> None:
        """A latency-critical request just arrived at the NIC."""
        if not self.enable_cit:
            return
        if self._sim.now - self._last_interrupt_ns() > self.config.cit_ns:
            self._immediate_rx.inc()
            self._record_wake("cit")
            self._post(ICR.IT_RX)

    # -- introspection ----------------------------------------------------------

    @property
    def boost_active(self) -> bool:
        return self._boost_active

    def _record_wake(self, cause: str) -> None:
        self._wake_times.append(self._sim.now)
        if self._wake_probe.enabled:
            self._wake_probe.emit(NcapWake(self._sim.now, self.name, cause))

    def wake_interrupt_times(self) -> List[int]:
        """Times of proactive wake interrupts (the paper's "INT (wake)")."""
        return list(self._wake_times)
