"""NCAP — the paper's contribution: packet context-aware power management."""

from repro.core.config import DEFAULT_TEMPLATES, NCAPConfig, aggressive, conservative
from repro.core.decision_engine import DecisionEngine
from repro.core.ncap_driver import NCAPDriverExtension
from repro.core.ncap_nic import NCAPHardware
from repro.core.ncap_sw import NCAPSoftware
from repro.core.req_monitor import ReqMonitor
from repro.core.tx_counter import TxBytesCounter

__all__ = [
    "DEFAULT_TEMPLATES",
    "NCAPConfig",
    "aggressive",
    "conservative",
    "DecisionEngine",
    "NCAPDriverExtension",
    "NCAPHardware",
    "NCAPSoftware",
    "ReqMonitor",
    "TxBytesCounter",
]
