"""``ncap.sw`` — the software implementation of NCAP (Section 5).

ReqMonitor runs as a function in the receive SoftIRQ for *every* packet
(cycles charged per packet), TxCnt is read from NIC statistics, and a 1 ms
high-resolution kernel timer evaluates the DecisionEngine logic (cycles
charged per expiry).  Detection happens only after a packet has traversed
DMA + interrupt + SoftIRQ, so — unlike the hardware variant — nothing
overlaps the delivery latency, and the per-packet inspection overhead
steals CPU from packet/request processing at high load.  Both effects are
what the paper measures: ncap.sw trails the hardware NCAP in latency and
collapses at high load.

The CIT immediate-wake path does not exist here: by the time software sees
the request, the core handling it is already awake.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import NCAPConfig
from repro.core.decision_engine import DecisionEngine
from repro.core.ncap_driver import NCAPDriverExtension
from repro.core.req_monitor import ReqMonitor
from repro.core.tx_counter import TxBytesCounter
from repro.net.driver import NICDriver
from repro.net.packet import Frame
from repro.oskernel.irq import IRQController
from repro.oskernel.timers import PeriodicKernelTask
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder
from repro.telemetry import ensure_telemetry


class NCAPSoftware:
    """Kernel-only NCAP: SoftIRQ inspection + hrtimer decisions."""

    def __init__(
        self,
        sim: Simulator,
        driver: NICDriver,
        irq: IRQController,
        config: NCAPConfig,
        extension: NCAPDriverExtension,
        trace: Optional[TraceRecorder] = None,
    ):
        self._sim = sim
        self._driver = driver
        self.config = config
        self.extension = extension
        telemetry = driver.telemetry
        if trace is not None and telemetry.channel_trace() is None:
            telemetry = ensure_telemetry(None, trace)
        self.telemetry = telemetry
        self.req_monitor = ReqMonitor(
            config.templates,
            sim=sim,
            telemetry=telemetry,
            name=f"{driver.nic.name}.ncap_sw",
        )
        self.tx_counter = TxBytesCounter(telemetry=telemetry)

        driver.rx_sw_taps.append(self._inspect_packet)
        driver.extra_rx_cycles_per_packet += config.sw_inspect_cycles_per_packet
        driver.nic.tx_hw_taps.append(self.tx_counter.observe)

        self.engine = DecisionEngine(
            sim,
            config,
            req_count=lambda: self.req_monitor.req_cnt,
            tx_bytes=lambda: self.tx_counter.tx_bytes,
            post=extension.on_icr,  # already in kernel context: call directly
            last_interrupt_ns=lambda: driver.nic.moderator.last_fire_ns,
            cpu_at_max=lambda: False,  # resolved by the extension's own checks
            enable_cit=False,
            name=f"{driver.nic.name}.ncap_sw",
            telemetry=telemetry,
        )
        self._timer = PeriodicKernelTask(
            sim,
            irq,
            config.sw_timer_period_ns,
            config.sw_decision_cycles,
            self.engine.tick,
            core_id=driver.core_id,
            name="ncap-sw-timer",
        )

    def _inspect_packet(self, frame: Frame) -> None:
        # SoftIRQ-context inspection (cycles charged via the driver's
        # extra_rx_cycles_per_packet).
        self.req_monitor.inspect(frame)

    def start(self) -> None:
        self.engine.start()
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    @property
    def timer_expirations(self) -> int:
        return self._timer.expirations
