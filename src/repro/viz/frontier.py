"""Frontier and trend pages: cross-run figures as self-contained HTML.

Two renderers in the dashboard family (inline SVG/CSS/JS, no external
assets, CVD-safe palette, light/dark via the shared surface tokens):

* :func:`render_frontier` — the energy-vs-p99 Pareto scatter for a
  :class:`~repro.experiments.pareto.FrontierDataset`: one marker per
  (policy, load) run (filled = frontier member, hollow = dominated), the
  non-dominated polyline, native SVG tooltips, a per-policy legend, and
  a point table with optional drill-down links into each run's timeline
  dashboard and energy-blame report.  The canonical dataset JSON is
  embedded in the page (``id="frontier-data"``) so CI can introspect the
  rendered figure without re-running the sweep.

* :func:`render_trend_page` — the bench-history trajectory from
  :mod:`repro.harness.history`: one sparkline panel per (suite,
  scenario) metric series, with tolerance-breaking steps marked in the
  alert accent.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence

from repro.viz.dashboard import _CSS, _fmt, _nice_step, write_dashboard

__all__ = [
    "render_frontier",
    "render_trend_page",
    "write_dashboard",
]

# Scatter geometry (CSS pixels; the page scales the viewBox).
_W, _H = 960, 520
_X0, _X1 = 70, 930
_Y0, _Y1 = 24, 446

_EXTRA_CSS = """
.scatter-svg { width: 100%; height: auto; display: block; }
.pt { stroke-width: 2; }
.pt.dominated { fill: var(--surface); opacity: 0.75; }
.pt.s0 { stroke: var(--s0); } .pt.s1 { stroke: var(--s1); }
.pt.s2 { stroke: var(--s2); } .pt.s3 { stroke: var(--s3); }
.pt.fill-s0 { fill: var(--s0); } .pt.fill-s1 { fill: var(--s1); }
.pt.fill-s2 { fill: var(--s2); } .pt.fill-s3 { fill: var(--s3); }
.front-line { fill: none; stroke: var(--ink-muted); stroke-width: 1.5;
  stroke-dasharray: 6 4; }
.sla-violated { stroke: var(--alert); stroke-width: 1.2;
  stroke-dasharray: 2 2; fill: none; }
.point-table { border-collapse: collapse; font-size: 12px; margin: 10px 0; }
.point-table th, .point-table td { border: 1px solid var(--panel-border);
  padding: 3px 9px; text-align: right; }
.point-table td.l, .point-table th.l { text-align: left; }
.point-table a { color: var(--s0); }
.frontier-row { font-weight: 600; }
.spark { margin: 4px 0 14px; }
.spark-svg { width: 100%; max-width: 720px; height: auto; display: block; }
.spark .name { font-size: 13px; }
.spark .flagged { fill: var(--alert); }
.step-list { font-size: 13px; }
.step-list .alert { color: var(--alert); font-weight: 600; }
"""

_THEME_JS = """
(function () {
  var toggle = document.getElementById("theme-toggle");
  toggle.addEventListener("click", function () {
    var root = document.documentElement;
    var dark = root.getAttribute("data-theme") === "dark" ||
      (root.getAttribute("data-theme") !== "light" &&
       matchMedia("(prefers-color-scheme: dark)").matches);
    root.setAttribute("data-theme", dark ? "light" : "dark");
  });
})();
"""


def _page(title: str, subtitle: str, body: str) -> str:
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>{_CSS}{_EXTRA_CSS}</style>\n"
        "</head><body>\n"
        "<header>"
        f"<h1>{html.escape(title)}</h1>"
        f'<span class="meta">{html.escape(subtitle)}</span>'
        '<button id="theme-toggle" type="button">theme</button>'
        "</header>\n"
        f"{body}\n"
        f"<script>{_THEME_JS}</script>\n"
        "</body></html>\n"
    )


class _Scale:
    """Linear data→pixel map with a small padding margin."""

    def __init__(self, lo: float, hi: float, p0: float, p1: float):
        if hi <= lo:
            hi = lo + 1.0
        span = hi - lo
        self.lo, self.hi = lo - 0.06 * span, hi + 0.06 * span
        self.p0, self.p1 = p0, p1

    def __call__(self, value: float) -> float:
        frac = (value - self.lo) / (self.hi - self.lo)
        return self.p0 + frac * (self.p1 - self.p0)


def _axis_ticks(lo: float, hi: float) -> List[float]:
    step = _nice_step(hi - lo)
    tick = (lo // step) * step
    ticks = []
    while tick <= hi:
        if tick >= lo:
            ticks.append(tick)
        tick += step
    return ticks


def policy_slots(policies: Sequence[str]) -> Dict[str, int]:
    """Stable palette slot per policy (sorted order, 4 slots)."""
    return {name: i % 4 for i, name in enumerate(sorted(policies))}


def _scatter_svg(dataset, slots: Dict[str, int]) -> str:
    xs = [1e3 * p.joules_per_request for p in dataset.points]
    ys = [p.p99_ns / 1e6 for p in dataset.points]
    sx = _Scale(min(xs), max(xs), _X0, _X1)
    sy = _Scale(min(ys), max(ys), _Y1, _Y0)  # y grows downward
    parts: List[str] = [
        f'<svg class="scatter-svg" viewBox="0 0 {_W} {_H}" '
        'role="img" aria-label="Energy vs p99 Pareto frontier">'
    ]
    for tick in _axis_ticks(sx.lo, sx.hi):
        px = sx(tick)
        parts.append(
            f'<line class="grid" x1="{px:.1f}" y1="{_Y0}" '
            f'x2="{px:.1f}" y2="{_Y1}"/>'
            f'<text class="tick" x="{px:.1f}" y="{_Y1 + 16}" '
            f'text-anchor="middle">{_fmt(tick)}</text>'
        )
    for tick in _axis_ticks(sy.hi, sy.lo):
        py = sy(tick)
        parts.append(
            f'<line class="grid" x1="{_X0}" y1="{py:.1f}" '
            f'x2="{_X1}" y2="{py:.1f}"/>'
            f'<text class="tick" x="{_X0 - 6}" y="{py + 3:.1f}" '
            f'text-anchor="end">{_fmt(tick)}</text>'
        )
    parts.append(
        f'<text class="tick axis-name" x="{(_X0 + _X1) / 2:.0f}" '
        f'y="{_Y1 + 34}" text-anchor="middle">energy (mJ/request)</text>'
        f'<text class="tick axis-name" x="14" y="{(_Y0 + _Y1) / 2:.0f}" '
        f'text-anchor="middle" transform="rotate(-90 14 '
        f'{(_Y0 + _Y1) / 2:.0f})">p99 latency (ms)</text>'
    )
    frontier = dataset.frontier()
    if len(frontier) >= 2:
        path = " ".join(
            f"{sx(1e3 * p.joules_per_request):.1f},{sy(p.p99_ns / 1e6):.1f}"
            for p in frontier
        )
        parts.append(f'<polyline class="front-line" points="{path}"/>')
    for point in dataset.points:
        px = sx(1e3 * point.joules_per_request)
        py = sy(point.p99_ns / 1e6)
        slot = slots[point.policy]
        tip = (
            f"{point.label} — {1e3 * point.joules_per_request:.4f} mJ/req, "
            f"p99 {point.p99_ns / 1e6:.3f} ms"
            + ("" if point.meets_sla else " — SLA VIOLATED")
            + ("" if not point.dominated
               else f" — dominated by {point.dominated_by}")
        )
        if point.dominated:
            cls = f"pt dominated s{slot}"
            radius = 4.5
        else:
            cls = f"pt s{slot} fill-s{slot}"
            radius = 6.0
        parts.append(
            f'<circle class="{cls}" cx="{px:.1f}" cy="{py:.1f}" '
            f'r="{radius}"><title>{html.escape(tip)}</title></circle>'
        )
        if not point.meets_sla:
            parts.append(
                f'<circle class="sla-violated" cx="{px:.1f}" '
                f'cy="{py:.1f}" r="{radius + 3.5}"/>'
            )
    parts.append("</svg>")
    return "".join(parts)


def _legend(slots: Dict[str, int]) -> str:
    keys = "".join(
        f'<span class="key"><span class="chip s{slot}"></span>'
        f"{html.escape(policy)}</span>"
        for policy, slot in sorted(slots.items())
    )
    return (
        f'<div class="legend">{keys}'
        '<span class="key">filled = frontier, hollow = dominated, '
        "red ring = SLA violated</span></div>"
    )


def _point_table(
    dataset, links: Optional[Dict[str, Dict[str, str]]]
) -> str:
    header = (
        '<tr><th class="l">point</th><th class="l">app</th>'
        "<th>mJ/req</th><th>p99 (ms)</th><th>p50 (ms)</th>"
        "<th>power (W)</th><th>SLA</th>"
        '<th class="l">class</th><th class="l">drill-down</th></tr>'
    )
    rows = []
    ordered = sorted(
        dataset.points,
        key=lambda p: (p.dominated, p.joules_per_request, p.p99_ns),
    )
    for p in ordered:
        drill = ""
        for kind, href in sorted((links or {}).get(p.config_hash, {}).items()):
            drill += (
                f'<a href="{html.escape(href, quote=True)}">'
                f"{html.escape(kind)}</a> "
            )
        cls = "" if p.dominated else ' class="frontier-row"'
        rows.append(
            f"<tr{cls}>"
            f'<td class="l">{html.escape(p.label)}</td>'
            f'<td class="l">{html.escape(p.app)}</td>'
            f"<td>{1e3 * p.joules_per_request:.4f}</td>"
            f"<td>{p.p99_ns / 1e6:.3f}</td>"
            f"<td>{p.p50_ns / 1e6:.3f}</td>"
            f"<td>{p.avg_power_w:.2f}</td>"
            f"<td>{'met' if p.meets_sla else 'VIOLATED'}</td>"
            f'<td class="l">'
            f"{'frontier' if not p.dominated else html.escape('dom. by ' + p.dominated_by)}"
            f'</td><td class="l">{drill.strip() or "-"}</td></tr>'
        )
    return f'<table class="point-table">{header}{"".join(rows)}</table>'


def render_frontier(
    dataset,
    title: Optional[str] = None,
    subtitle: str = "",
    links: Optional[Dict[str, Dict[str, str]]] = None,
) -> str:
    """The Pareto scatter page for a
    :class:`~repro.experiments.pareto.FrontierDataset`.

    ``links`` maps ``config_hash`` → ``{kind: relative_href}`` drill-down
    targets (e.g. ``{"timeline": "runs/ab12.html", "energy":
    "runs/ab12_energy.txt"}``), rendered in the point table.
    """
    if not dataset.points:
        return _page(
            title or "Pareto frontier", subtitle,
            '<p class="muted">no points</p>',
        )
    slots = policy_slots(dataset.policies())
    frontier = dataset.frontier()
    default_subtitle = (
        f"{len(dataset.points)} runs, {len(frontier)} on the frontier — "
        f"{len(slots)} policies x {len(dataset.loads())} load points"
    )
    body = (
        _legend(slots)
        + _scatter_svg(dataset, slots)
        + _point_table(dataset, links)
        + '<script id="frontier-data" type="application/json">'
        + dataset.to_json()
        + "</script>"
    )
    return _page(
        title or f"Pareto frontier: {dataset.name}",
        subtitle or default_subtitle,
        body,
    )


# -- bench-history trend panels ---------------------------------------------

_SPARK_W, _SPARK_H = 720, 72
_SPARK_X0, _SPARK_X1 = 8, 600
_SPARK_Y0, _SPARK_Y1 = 8, 60


def _spark_svg(series, flagged: set) -> str:
    values = [p.value for p in series.points]
    lo, hi = min(values), max(values)
    sy = _Scale(lo, hi, _SPARK_Y1, _SPARK_Y0)
    n = len(values)
    step = (_SPARK_X1 - _SPARK_X0) / max(1, n - 1)
    coords = [
        (_SPARK_X0 + i * step, sy(v)) for i, v in enumerate(values)
    ]
    parts = [
        f'<svg class="spark-svg" viewBox="0 0 {_SPARK_W} {_SPARK_H}" '
        f'role="img" aria-label="{html.escape(series.scenario)} trend">'
    ]
    if n >= 2:
        path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
        parts.append(
            f'<polyline class="line s0" points="{path}" '
            'style="stroke-width:1.5"/>'
        )
    for i, ((x, y), point) in enumerate(zip(coords, series.points)):
        cls = "flagged" if i in flagged else "s0"
        fill = "var(--alert)" if i in flagged else "var(--s0)"
        tip = (
            f"{series.metric} = {point.value:.4g} "
            f"[{point.source.rsplit('/', 1)[-1]}]"
        )
        parts.append(
            f'<circle class="pt {cls}" cx="{x:.1f}" cy="{y:.1f}" r="3.5" '
            f'style="fill:{fill};stroke:none">'
            f"<title>{html.escape(tip)}</title></circle>"
        )
    parts.append(
        f'<text class="tick" x="{_SPARK_X1 + 10}" y="{_SPARK_Y0 + 8}" '
        f'text-anchor="start">{_fmt(hi)}</text>'
        f'<text class="tick" x="{_SPARK_X1 + 10}" y="{_SPARK_Y1}" '
        f'text-anchor="start">{_fmt(lo)}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def render_trend_page(
    history,
    flags=None,
    metric: str = "wall_s.min",
    title: str = "Bench history",
) -> str:
    """The trajectory page for a
    :class:`~repro.harness.history.BenchHistory`.

    One sparkline per (suite, scenario) for the chosen ``metric``;
    points that end a tolerance-breaking step are marked in the alert
    accent, and every flag (all metrics) is listed below the panels.
    """
    from repro.harness.history import flag_steps

    if flags is None:
        flags = flag_steps(history)
    flagged_after = {
        (f.suite, f.scenario, f.metric, f.after.source) for f in flags
    }
    panels = []
    for series in history.series:
        if series.metric != metric:
            continue
        flagged = {
            i for i, p in enumerate(series.points)
            if (series.suite, series.scenario, metric, p.source)
            in flagged_after
        }
        panels.append(
            '<figure class="spark">'
            f'<figcaption><span class="name">'
            f"{html.escape(series.suite)}/{html.escape(series.scenario)}"
            f'</span> <span class="unit">{html.escape(metric)}, '
            f"{len(series.points)} runs</span></figcaption>"
            + _spark_svg(series, flagged)
            + "</figure>"
        )
    if flags:
        items = "".join(
            f'<li class="alert">{html.escape(f.describe())}</li>'
            if f.direction == "regressed"
            else f"<li>{html.escape(f.describe())}</li>"
            for f in flags
        )
        steps = (
            f'<div class="step-list"><p>step changes ({len(flags)}):</p>'
            f"<ul>{items}</ul></div>"
        )
    else:
        steps = '<p class="muted">no step changes beyond tolerance</p>'
    subtitle = (
        f"{len(history.sources)} payloads, "
        f"{sum(1 for s in history.series if s.metric == metric)} scenarios"
    )
    return _page(title, subtitle, "".join(panels) + steps)
