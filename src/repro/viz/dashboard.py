"""Single-file HTML timeline dashboard for flight-recorder captures.

:func:`render_dashboard` turns a
:class:`~repro.telemetry.recorder.TimeseriesBundle` into one
self-contained HTML page — inline SVG, inline CSS, inline vanilla JS, no
external dependencies — with vertically aligned timeline panels over
simulated time:

* package frequency (GHz),
* per-core C-state index,
* mean core utilization,
* package power (W),
* run-queue / rx-ring depth,
* network bandwidth (Mb/s, differenced from the cumulative byte
  counters),

plus run-phase shading (warmup / measure / drain), watchpoint-firing
markers with their high-resolution capture windows washed across every
panel, a hover crosshair with a value tooltip, a light/dark theme that
follows the OS preference, and a per-panel data table (the accessible
fallback view).

The categorical palette (4 slots per panel, assigned in fixed order) and
the light/dark surface tokens were validated for CVD separation and
contrast against both surfaces; series identity is never color-alone —
every panel with two or more series carries an ink-text legend and the
table view repeats the numbers.
"""

from __future__ import annotations

import html
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.recorder import SeriesData, TimeseriesBundle

#: Categorical slots, assigned per panel in this fixed order (never
#: cycled): (light, dark) pairs validated against both surfaces.
PALETTE: Tuple[Tuple[str, str], ...] = (
    ("#2a78d6", "#3987e5"),  # blue
    ("#eb6834", "#d95926"),  # orange
    ("#1baf7a", "#199e70"),  # aqua
    ("#eda100", "#c98500"),  # yellow
)

#: Watchpoint / alert accents (status red; reserved, never a series slot).
ALERT = ("#e34948", "#f2555f")

# SVG geometry (CSS pixels; the page scales the viewBox responsively).
WIDTH = 960
PLOT_X0, PLOT_X1 = 64, 948
PLOT_Y0, PLOT_Y1 = 10, 118
PANEL_H = 132
AXIS_PANEL_H = 156  # bottom panel keeps the x-axis labels

MAX_TABLE_ROWS = 256


@dataclass
class PanelSeries:
    """One plotted line: points in (t_ns, value) form."""

    label: str
    points: List[Tuple[int, float]]
    step: bool = False  # render as a step (hold-last) line


@dataclass
class Panel:
    """One timeline panel; series share the panel's single y-axis."""

    title: str
    unit: str
    series: List[PanelSeries] = field(default_factory=list)
    #: Lines don't need a zero baseline; magnitudes (power, depth) do.
    zero_base: bool = True

    def has_data(self) -> bool:
        return any(s.points for s in self.series)


def _series_points(series: SeriesData) -> List[Tuple[int, float]]:
    return list(zip(series.times, series.values))


def _rate_points_mbps(series: SeriesData) -> List[Tuple[int, float]]:
    return [(t, rate * 8 / 1e6) for t, rate in series.rate_points()]


def standard_panels(bundle: TimeseriesBundle) -> List[Panel]:
    """The canonical panel layout for a server flight-recorder bundle.

    Unrecognized series (extra ``RecorderConfig.patterns`` subtrees) each
    get their own trailing panel — counters as per-second rates.
    """
    panels: List[Panel] = []
    used: set = set()

    def take(name: str) -> Optional[SeriesData]:
        series = bundle.get(name)
        if series is not None:
            used.add(name)
        return series

    freq = take("cpu.freq_ghz")
    if freq is not None:
        panel = Panel("Frequency", "GHz", zero_base=False)
        panel.series.append(PanelSeries("package", _series_points(freq), step=True))
        for name in bundle.names():
            if name.startswith("cpu.domain") and name.endswith(".freq_ghz"):
                domain = take(name)
                label = name[len("cpu."):-len(".freq_ghz")]
                panel.series.append(
                    PanelSeries(label, _series_points(domain), step=True)
                )
        panels.append(panel)

    cstates = [n for n in bundle.names() if n.startswith("core") and n.endswith(".cstate")]
    if cstates:
        panel = Panel("C-state", "index")
        for name in cstates:
            panel.series.append(
                PanelSeries(name[:-len(".cstate")], _series_points(take(name)), step=True)
            )
        panels.append(panel)

    util = take("cpu.util")
    if util is not None:
        panels.append(Panel("Utilization", "U", [PanelSeries("mean util", _series_points(util))]))

    power = take("power.watts")
    if power is not None:
        panels.append(Panel("Power", "W", [PanelSeries("package", _series_points(power))]))

    runq = take("runq.depth")
    ring = take("nic.rx_ring")
    if runq is not None or ring is not None:
        panel = Panel("Queues", "depth")
        if runq is not None:
            panel.series.append(PanelSeries("run queue", _series_points(runq)))
        if ring is not None:
            panel.series.append(PanelSeries("rx ring", _series_points(ring)))
        panels.append(panel)

    rx = take("nic.rx.bytes")
    tx = take("nic.tx.bytes")
    if rx is not None or tx is not None:
        panel = Panel("Network", "Mb/s")
        if rx is not None:
            panel.series.append(PanelSeries("BW(Rx)", _rate_points_mbps(rx)))
        if tx is not None:
            panel.series.append(PanelSeries("BW(Tx)", _rate_points_mbps(tx)))
        panels.append(panel)

    reqs = take("app.requests")
    resps = take("app.responses")
    if reqs is not None or resps is not None:
        panel = Panel("Requests", "req/s")
        if reqs is not None:
            panel.series.append(
                PanelSeries("accepted", [(t, r) for t, r in reqs.rate_points()])
            )
        if resps is not None:
            panel.series.append(
                PanelSeries("responded", [(t, r) for t, r in resps.rate_points()])
            )
        panels.append(panel)

    for name in bundle.names():
        if name in used:
            continue
        series = bundle.get(name)
        if series.kind == "counter":
            points = [(t, r) for t, r in series.rate_points()]
            panels.append(Panel(name, "/s", [PanelSeries(name, points)]))
        else:
            panels.append(Panel(name, "", [PanelSeries(name, _series_points(series))]))

    return [p for p in panels if p.has_data()]


#: Key metrics plotted per server in :func:`datacenter_panels`:
#: (series suffix, panel title, unit, step rendering, rate-of-counter).
_DATACENTER_METRICS: Tuple[Tuple[str, str, str, bool, bool], ...] = (
    ("cpu.freq_ghz", "Frequency", "GHz", True, False),
    ("cpu.util", "Utilization", "U", False, False),
    ("power.watts", "Power", "W", False, False),
    ("runq.depth", "Run queue", "depth", False, False),
    ("nic.rx.bytes", "Network Rx", "Mb/s", False, True),
    ("app.responses", "Responses", "req/s", False, True),
)


def datacenter_panels(bundle: TimeseriesBundle) -> List[Panel]:
    """Panel layout for a merged multi-server bundle.

    :func:`~repro.telemetry.recorder.merge_timeseries_bundles` prefixes
    every series with its node name (``server3.power.watts``); this
    layout inverts that — one panel per key metric, one line per server —
    so the recorded servers can be compared side by side.
    """
    panels: List[Panel] = []
    for suffix, title, unit, step, as_rate in _DATACENTER_METRICS:
        marker = "." + suffix
        named = sorted(
            (name[: -len(marker)], bundle.get(name))
            for name in bundle.names()
            if name.endswith(marker)
        )
        if not named:
            continue
        panel = Panel(title, unit, zero_base=not step)
        for node, series in named:
            if as_rate:
                points = [(t, r) for t, r in series.rate_points()]
                if suffix.endswith(".bytes"):
                    points = [(t, r * 8 / 1e6) for t, r in points]
            else:
                points = _series_points(series)
            panel.series.append(PanelSeries(node, points, step=step))
        panels.append(panel)
    return [p for p in panels if p.has_data()]


# -- scales and shapes -----------------------------------------------------


def _nice_step(span: float, target: int = 5) -> float:
    if span <= 0:
        return 1.0
    raw = span / target
    magnitude = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 5, 10):
        if mult * magnitude >= raw:
            return mult * magnitude
    return 10 * magnitude


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        text = f"{value:.1f}"
    elif abs(value) >= 0.01:
        text = f"{value:.3f}"
    else:
        return f"{value:.2e}"
    return text.rstrip("0").rstrip(".")


class _Scale:
    def __init__(self, lo: float, hi: float, px0: float, px1: float):
        self.lo, self.hi = lo, hi
        self.px0, self.px1 = px0, px1
        span = hi - lo
        self._k = (px1 - px0) / span if span else 0.0

    def __call__(self, v: float) -> float:
        return self.px0 + (v - self.lo) * self._k


def _panel_bounds(panel: Panel) -> Tuple[float, float]:
    values = [v for s in panel.series for _, v in s.points]
    lo, hi = min(values), max(values)
    if panel.zero_base:
        lo = min(0.0, lo)
    if hi == lo:
        hi = lo + 1.0
    pad = (hi - lo) * 0.08
    return (lo if panel.zero_base and lo == 0.0 else lo - pad), hi + pad


def _path(points: Sequence[Tuple[int, float]], sx: _Scale, sy: _Scale, step: bool) -> str:
    parts: List[str] = []
    last_y = None
    for t, v in points:
        x, y = sx(t), sy(v)
        if not parts:
            parts.append(f"M{x:.1f} {y:.1f}")
        elif step and last_y is not None:
            parts.append(f"L{x:.1f} {last_y:.1f}")
            parts.append(f"L{x:.1f} {y:.1f}")
        else:
            parts.append(f"L{x:.1f} {y:.1f}")
        last_y = y
    return " ".join(parts)


# -- SVG assembly ----------------------------------------------------------


def _render_panel_svg(
    panel: Panel,
    index: int,
    sx: _Scale,
    phases: Sequence[Tuple[str, int, int]],
    windows: Sequence[Tuple[int, int]],
    fired_ns: Sequence[int],
    with_x_axis: bool,
) -> str:
    height = AXIS_PANEL_H if with_x_axis else PANEL_H
    lo, hi = _panel_bounds(panel)
    sy = _Scale(lo, hi, PLOT_Y1, PLOT_Y0)
    out: List[str] = [
        f'<svg class="panel-svg" data-panel="{index}" role="img" '
        f'aria-label="{html.escape(panel.title)} timeline" '
        f'viewBox="0 0 {WIDTH} {height}" preserveAspectRatio="none">'
    ]
    # Run-phase washes (identity by label, not color alone).
    for name, start, end in phases:
        if name == "measure":
            continue
        x0, x1 = sx(start), sx(end)
        out.append(
            f'<rect class="phase-wash" x="{x0:.1f}" y="{PLOT_Y0}" '
            f'width="{max(0.0, x1 - x0):.1f}" height="{PLOT_Y1 - PLOT_Y0}"/>'
        )
    # Watchpoint capture-window washes.
    for start, end in windows:
        x0, x1 = sx(start), sx(end)
        out.append(
            f'<rect class="window-wash" x="{x0:.1f}" y="{PLOT_Y0}" '
            f'width="{max(1.0, x1 - x0):.1f}" height="{PLOT_Y1 - PLOT_Y0}"/>'
        )
    # Horizontal gridlines + y tick labels.
    step = _nice_step(hi - lo, target=3)
    tick = math.ceil(lo / step) * step
    while tick <= hi:
        y = sy(tick)
        out.append(
            f'<line class="grid" x1="{PLOT_X0}" y1="{y:.1f}" '
            f'x2="{PLOT_X1}" y2="{y:.1f}"/>'
        )
        out.append(
            f'<text class="tick" x="{PLOT_X0 - 6}" y="{y + 3:.1f}" '
            f'text-anchor="end">{_fmt(tick)}</text>'
        )
        tick += step
    # X gridlines (labels only on the bottom panel).
    x_step = _nice_step((sx.hi - sx.lo) / 1e6, target=6) * 1e6
    t = math.ceil(sx.lo / x_step) * x_step
    while t <= sx.hi:
        x = sx(t)
        out.append(
            f'<line class="grid" x1="{x:.1f}" y1="{PLOT_Y0}" '
            f'x2="{x:.1f}" y2="{PLOT_Y1}"/>'
        )
        if with_x_axis:
            out.append(
                f'<text class="tick" x="{x:.1f}" y="{PLOT_Y1 + 16}" '
                f'text-anchor="middle">{_fmt(t / 1e6)}</text>'
            )
        t += x_step
    if with_x_axis:
        out.append(
            f'<text class="tick axis-name" x="{(PLOT_X0 + PLOT_X1) / 2:.0f}" '
            f'y="{PLOT_Y1 + 32}" text-anchor="middle">simulated time (ms)</text>'
        )
    # Series: a ~10% area wash under a lone gauge line, then 2px lines.
    if len(panel.series) == 1 and panel.zero_base:
        series = panel.series[0]
        if series.points:
            d = _path(series.points, sx, sy, series.step)
            x_last, x_first = sx(series.points[-1][0]), sx(series.points[0][0])
            out.append(
                f'<path class="area s0" d="{d} L{x_last:.1f} {PLOT_Y1} '
                f'L{x_first:.1f} {PLOT_Y1} Z"/>'
            )
    for slot, series in enumerate(panel.series[: len(PALETTE)]):
        if series.points:
            out.append(
                f'<path class="line s{slot}" '
                f'd="{_path(series.points, sx, sy, series.step)}"/>'
            )
    # Watchpoint firing markers.
    for t_ns in fired_ns:
        x = sx(t_ns)
        out.append(
            f'<line class="fired" x1="{x:.1f}" y1="{PLOT_Y0}" '
            f'x2="{x:.1f}" y2="{PLOT_Y1}"/>'
        )
    out.append(
        f'<line class="xhair" x1="0" y1="{PLOT_Y0}" x2="0" y2="{PLOT_Y1}" '
        f'visibility="hidden"/>'
    )
    out.append("</svg>")
    return "".join(out)


def _render_legend(panel: Panel) -> str:
    if len(panel.series) < 2:
        return ""
    chips = "".join(
        f'<span class="key"><span class="chip s{slot}"></span>'
        f"{html.escape(series.label)}</span>"
        for slot, series in enumerate(panel.series[: len(PALETTE)])
    )
    return f'<span class="legend">{chips}</span>'


def _render_table(panel: Panel) -> str:
    grid: Dict[int, Dict[str, float]] = {}
    for series in panel.series:
        for t, v in series.points:
            grid.setdefault(t, {})[series.label] = v
    times = sorted(grid)
    stride = max(1, math.ceil(len(times) / MAX_TABLE_ROWS))
    head = "".join(
        f"<th>{html.escape(s.label)}" + (f" ({panel.unit})" if panel.unit else "") + "</th>"
        for s in panel.series
    )
    rows = []
    for t in times[::stride]:
        cells = "".join(
            f"<td>{_fmt(grid[t][s.label])}</td>" if s.label in grid[t] else "<td></td>"
            for s in panel.series
        )
        rows.append(f"<tr><td>{_fmt(t / 1e6)}</td>{cells}</tr>")
    note = (
        f"<p class='muted'>showing every {stride}th sample</p>" if stride > 1 else ""
    )
    return (
        "<details class='table-view'><summary>Data table</summary>"
        f"{note}<table><thead><tr><th>t (ms)</th>{head}</tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table></details>"
    )


_CSS = """
:root {
  --surface: #fcfcfb; --ink: #1a1a19; --ink-muted: #898781;
  --grid: #e1e0d9; --panel-border: #e1e0d9;
  --s0: #2a78d6; --s1: #eb6834; --s2: #1baf7a; --s3: #eda100;
  --alert: #e34948; --wash: #898781;
}
@media (prefers-color-scheme: dark) { :root:not([data-theme="light"]) {
  --surface: #1a1a19; --ink: #f1f0ec; --ink-muted: #8f8d86;
  --grid: #2c2c2a; --panel-border: #2c2c2a;
  --s0: #3987e5; --s1: #d95926; --s2: #199e70; --s3: #c98500;
  --alert: #f2555f; --wash: #8f8d86;
} }
:root[data-theme="dark"] {
  --surface: #1a1a19; --ink: #f1f0ec; --ink-muted: #8f8d86;
  --grid: #2c2c2a; --panel-border: #2c2c2a;
  --s0: #3987e5; --s1: #d95926; --s2: #199e70; --s3: #c98500;
  --alert: #f2555f; --wash: #8f8d86;
}
* { box-sizing: border-box; }
body { margin: 0 auto; padding: 16px 20px 48px; max-width: 1040px;
  background: var(--surface); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
header { display: flex; align-items: baseline; gap: 12px; flex-wrap: wrap; }
h1 { font-size: 18px; margin: 8px 0 2px; }
.meta { color: var(--ink-muted); }
#theme-toggle { margin-left: auto; background: none; color: var(--ink-muted);
  border: 1px solid var(--panel-border); border-radius: 6px;
  padding: 2px 10px; cursor: pointer; font: inherit; }
.phase-strip { display: flex; gap: 16px; color: var(--ink-muted);
  font-size: 12px; margin: 4px 0 10px; }
.panel { margin: 0 0 6px; }
.panel figcaption { display: flex; align-items: baseline; gap: 10px;
  font-size: 13px; margin-bottom: 2px; }
.panel .unit { color: var(--ink-muted); }
.legend { display: inline-flex; gap: 12px; flex-wrap: wrap; }
.key { display: inline-flex; align-items: center; gap: 5px;
  color: var(--ink); font-size: 12px; }
.chip { width: 10px; height: 10px; border-radius: 3px; display: inline-block; }
.chip.s0 { background: var(--s0); } .chip.s1 { background: var(--s1); }
.chip.s2 { background: var(--s2); } .chip.s3 { background: var(--s3); }
.panel-svg { width: 100%; height: auto; display: block; }
.grid { stroke: var(--grid); stroke-width: 1; }
.tick { fill: var(--ink-muted); font-size: 10px; }
.axis-name { font-size: 11px; }
.line { fill: none; stroke-width: 2; stroke-linejoin: round; }
.line.s0 { stroke: var(--s0); } .line.s1 { stroke: var(--s1); }
.line.s2 { stroke: var(--s2); } .line.s3 { stroke: var(--s3); }
.area.s0 { fill: var(--s0); opacity: 0.1; stroke: none; }
.phase-wash { fill: var(--wash); opacity: 0.08; }
.window-wash { fill: var(--alert); opacity: 0.08; }
.fired { stroke: var(--alert); stroke-width: 1.5; stroke-dasharray: 4 3; }
.xhair { stroke: var(--ink-muted); stroke-width: 1; }
.watchpoints { border: 1px solid var(--panel-border); border-radius: 8px;
  padding: 8px 12px; margin: 12px 0; font-size: 13px; }
.watchpoints .alert { color: var(--alert); font-weight: 600; }
#tooltip { position: fixed; pointer-events: none; display: none;
  background: var(--surface); color: var(--ink);
  border: 1px solid var(--panel-border); border-radius: 6px;
  box-shadow: 0 2px 10px rgba(0,0,0,.15);
  padding: 6px 10px; font-size: 12px; z-index: 10; }
#tooltip .t { color: var(--ink-muted); }
#tooltip .row { display: flex; gap: 6px; align-items: center; }
.table-view { margin: 2px 0 14px; font-size: 12px; }
.table-view summary { cursor: pointer; color: var(--ink-muted); }
.table-view table { border-collapse: collapse; margin-top: 6px; }
.table-view th, .table-view td { border: 1px solid var(--panel-border);
  padding: 2px 8px; text-align: right; }
.muted { color: var(--ink-muted); margin: 4px 0; }
"""

_JS = """
(function () {
  var data = JSON.parse(document.getElementById("dash-data").textContent);
  var tooltip = document.getElementById("tooltip");
  var svgs = Array.prototype.slice.call(
    document.querySelectorAll(".panel-svg"));
  var toggle = document.getElementById("theme-toggle");
  toggle.addEventListener("click", function () {
    var root = document.documentElement;
    var dark = root.getAttribute("data-theme") === "dark" ||
      (root.getAttribute("data-theme") !== "light" &&
       matchMedia("(prefers-color-scheme: dark)").matches);
    root.setAttribute("data-theme", dark ? "light" : "dark");
  });
  function nearest(times, t) {
    var lo = 0, hi = times.length - 1;
    if (hi < 0) return -1;
    while (lo < hi) {
      var mid = (lo + hi) >> 1;
      if (times[mid] < t) lo = mid + 1; else hi = mid;
    }
    if (lo > 0 && Math.abs(times[lo - 1] - t) < Math.abs(times[lo] - t)) lo--;
    return lo;
  }
  function fmt(v) {
    if (v === 0) return "0";
    if (Math.abs(v) >= 1000) return v.toLocaleString(undefined,
      {maximumFractionDigits: 0});
    if (Math.abs(v) >= 10) return v.toFixed(1).replace(/\\.?0+$/, "");
    if (Math.abs(v) >= 0.01) return v.toFixed(3).replace(/\\.?0+$/, "");
    return v.toExponential(2);
  }
  svgs.forEach(function (svg) {
    svg.addEventListener("mousemove", function (ev) {
      var rect = svg.getBoundingClientRect();
      var sx = rect.width / data.width;
      var px = (ev.clientX - rect.left) / sx;
      if (px < data.x0 || px > data.x1) { hide(); return; }
      var t = data.t0 + (px - data.x0) / (data.x1 - data.x0) *
        (data.t1 - data.t0);
      svgs.forEach(function (s) {
        var line = s.querySelector(".xhair");
        line.setAttribute("x1", px); line.setAttribute("x2", px);
        line.setAttribute("visibility", "visible");
      });
      var panel = data.panels[+svg.getAttribute("data-panel")];
      var rows = panel.series.map(function (s, i) {
        var idx = nearest(s.times, t / 1e6);
        var v = idx >= 0 ? fmt(s.values[idx]) : "-";
        return '<div class="row"><span class="chip s' + (i % 4) +
          '"></span><span>' + s.label + "</span><b>" + v + "</b></div>";
      }).join("");
      tooltip.innerHTML = '<div class="t">' + fmt(t / 1e6) + " ms — " +
        panel.title + "</div>" + rows;
      tooltip.style.display = "block";
      var tx = ev.clientX + 14, ty = ev.clientY + 14;
      if (tx + tooltip.offsetWidth > innerWidth - 8)
        tx = ev.clientX - tooltip.offsetWidth - 14;
      tooltip.style.left = tx + "px"; tooltip.style.top = ty + "px";
    });
    svg.addEventListener("mouseleave", hide);
  });
  function hide() {
    tooltip.style.display = "none";
    svgs.forEach(function (s) {
      s.querySelector(".xhair").setAttribute("visibility", "hidden");
    });
  }
})();
"""


def render_dashboard(
    bundle: TimeseriesBundle,
    title: str = "Flight recorder",
    subtitle: str = "",
    phases: Optional[Sequence[Tuple[str, int, int]]] = None,
    panels: Optional[List[Panel]] = None,
    extra_html: str = "",
) -> str:
    """Render a bundle as one self-contained HTML page (returned as str).

    ``phases`` are ``(name, start_ns, end_ns)`` run windows; every phase
    except ``"measure"`` is shaded across all panels.  ``panels``
    overrides the :func:`standard_panels` layout.  ``extra_html`` is
    appended below the panels (already-escaped markup).
    """
    panels = panels if panels is not None else standard_panels(bundle)
    if not panels:
        raise ValueError("bundle holds no plottable series")
    phases = list(phases or ())
    t0 = min((s.points[0][0] for p in panels for s in p.series if s.points))
    t1 = max((s.points[-1][0] for p in panels for s in p.series if s.points))
    for _, start, end in phases:
        t0, t1 = min(t0, start), max(t1, end)
    if t1 <= t0:
        t1 = t0 + 1
    sx = _Scale(t0, t1, PLOT_X0, PLOT_X1)
    windows = [(w.start_ns, w.end_ns) for w in bundle.windows]
    fired_ns = [f.t_ns for f in bundle.fired]

    body: List[str] = []
    for index, panel in enumerate(panels):
        unit = f'<span class="unit">{html.escape(panel.unit)}</span>' if panel.unit else ""
        body.append(
            '<figure class="panel">'
            f"<figcaption><b>{html.escape(panel.title)}</b>{unit}"
            f"{_render_legend(panel)}</figcaption>"
            + _render_panel_svg(
                panel, index, sx, phases, windows, fired_ns,
                with_x_axis=(index == len(panels) - 1),
            )
            + "</figure>"
            + _render_table(panel)
        )

    phase_strip = ""
    if phases:
        parts = "".join(
            f"<span>{html.escape(name)}: {_fmt(start / 1e6)}-{_fmt(end / 1e6)} ms</span>"
            for name, start, end in phases
        )
        phase_strip = f'<div class="phase-strip">{parts}</div>'

    watchpoint_block = ""
    if bundle.fired:
        items = "".join(
            f"<li><span class='alert'>{html.escape(f.name)}</span> on "
            f"{html.escape(f.series)} at {_fmt(f.t_ns / 1e6)} ms "
            f"(value {_fmt(f.value)}; {html.escape(f.detail)})</li>"
            for f in bundle.fired
        )
        watchpoint_block = (
            f"<div class='watchpoints'><b>{len(bundle.fired)} watchpoint "
            f"firing{'s' if len(bundle.fired) != 1 else ''}</b> — shaded "
            f"regions are high-resolution capture windows<ul>{items}</ul></div>"
        )

    payload = {
        "width": WIDTH,
        "x0": PLOT_X0,
        "x1": PLOT_X1,
        "t0": t0,
        "t1": t1,
        "panels": [
            {
                "title": p.title,
                "series": [
                    {
                        "label": s.label,
                        "times": [round(t / 1e6, 4) for t, _ in s.points],
                        "values": [round(v, 6) for _, v in s.points],
                    }
                    for s in p.series
                ],
            }
            for p in panels
        ],
    }

    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{html.escape(title)}</title>
<style>{_CSS}</style>
</head>
<body>
<header>
<div><h1>{html.escape(title)}</h1>
<div class="meta">{html.escape(subtitle)}</div></div>
<button id="theme-toggle" type="button">light/dark</button>
</header>
{phase_strip}
{watchpoint_block}
{''.join(body)}
{extra_html}
<div id="tooltip"></div>
<script id="dash-data" type="application/json">{json.dumps(payload, separators=(',', ':'))}</script>
<script>{_JS}</script>
</body>
</html>
"""


def _energy_block(attribution) -> str:
    """Stacked energy-decomposition bar + governor-miss table.

    ``attribution`` is an
    :class:`~repro.analysis.energy.EnergyAttribution` (single-node or a
    fleet merge).  Identity is never color-alone: every segment repeats
    its label, joules and share in the legend and a hover title.
    """
    total = attribution.total_j
    if total <= 0:
        return ""
    segments = [
        ("active", attribution.active_j, "var(--s0)"),
        ("ramp", attribution.ramp_j, "var(--s1)"),
        ("wake", attribution.wake_j, "var(--s2)"),
        ("idle floor", attribution.floor_j, "var(--s3)"),
        ("wasted shallow", attribution.wasted_shallow_j, "var(--alert)"),
    ]
    bar: List[str] = []
    legend: List[str] = []
    for label, joules, color in segments:
        pct = 100.0 * joules / total
        if pct > 0.05:
            bar.append(
                f'<span title="{html.escape(label)}: {joules:.4f} J '
                f'({pct:.1f}%)" style="display:inline-block;height:18px;'
                f'width:{pct:.2f}%;background:{color};"></span>'
            )
        legend.append(
            f'<span class="key"><span class="chip" '
            f'style="background:{color};"></span>'
            f"{html.escape(label)} {joules:.4f} J ({pct:.1f}%)</span>"
        )
    gov_block = ""
    if attribution.decisions:
        rows = []
        for gov in sorted(attribution.decisions):
            totals = attribution.decision_totals(gov)
            n = sum(totals.values())
            rows.append(
                f"<tr><td>{html.escape(gov)}</td>"
                f"<td>{totals['above']}</td><td>{totals['below']}</td>"
                f"<td>{totals['hit']}</td>"
                f"<td>{100.0 * totals['hit'] / n:.1f}%</td></tr>"
                if n else ""
            )
        gov_block = (
            "<details class='table-view'><summary>Governor decisions vs "
            "perfect oracle</summary><table><thead><tr><th>governor</th>"
            "<th>above</th><th>below</th><th>hit</th><th>hit rate</th>"
            f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
            f"<p class='muted'>miss cost: {attribution.above_ns / 1e6:.3f} "
            f"ms extra exit latency (above), {attribution.below_j:.4f} J "
            "wasted shallow (below)</p></details>"
        )
    nodes = (
        f" across {attribution.n_nodes} nodes"
        if attribution.n_nodes > 1 else ""
    )
    return (
        "<div class='watchpoints'><b>Energy decomposition</b> — "
        f"{total:.4f} J{nodes}, conservation error "
        f"{attribution.conservation_error_j:+.2e} J"
        f'<div style="display:flex;margin:8px 0 6px;border-radius:4px;'
        f'overflow:hidden;">{"".join(bar)}</div>'
        f'<span class="legend">{"".join(legend)}</span>'
        f"{gov_block}</div>"
    )


def dashboard_from_result(
    result,
    config=None,
    title: Optional[str] = None,
) -> str:
    """Render any :class:`~repro.cluster.simulation.ExperimentResult` that
    carries a ``timeseries`` bundle (pass its config for phase shading).

    A run with ``energy_attribution=True`` adds the stacked
    energy-decomposition bar and governor-miss table below the panels.
    """
    bundle = getattr(result, "timeseries", None)
    if bundle is None:
        raise ValueError(
            "result has no timeseries; run with record_timeseries="
            "'coarse' (or a RecorderConfig)"
        )
    if isinstance(bundle, dict):
        bundle = TimeseriesBundle.from_json_dict(bundle)
    phases = None
    subtitle = ""
    if config is not None:
        warmup = config.warmup_ns
        measured = warmup + config.measure_ns
        phases = [
            ("warmup", 0, warmup),
            ("measure", warmup, measured),
            ("drain", measured, config.end_ns),
        ]
        subtitle = (
            f"{config.app} / {result.policy_name} @ "
            f"{config.target_rps / 1000:g}K rps - seed {config.seed}"
        )
    extra_html = ""
    attribution = getattr(result, "energy_attribution", None)
    if attribution is not None:
        extra_html = _energy_block(attribution)
    return render_dashboard(
        bundle,
        title=title or "Flight recorder",
        subtitle=subtitle,
        phases=phases,
        extra_html=extra_html,
    )


def _fleet_imbalance_panel(fleet_profile) -> Optional[Panel]:
    """Per-window shard wall time as a timeline panel over sim time.

    One step line per shard (the top :data:`PALETTE` shards by total wall
    time when the fleet is wider than the palette), x = the window's
    sim-time end, y = the shard's wall seconds for that window — the
    imbalance picture, aligned under the simulated-metric panels.
    """
    windows = getattr(fleet_profile, "windows", None)
    if not windows:
        return None
    totals = fleet_profile.shard_wall_totals
    shown = sorted(totals, key=lambda s: (-totals[s], s))[: len(PALETTE)]
    panel = Panel("Shard wall time (imbalance)", "s/window")
    for s in sorted(shown):
        points = [
            (w.t_end_ns, w.shard_wall_s.get(s, 0.0)) for w in windows
        ]
        panel.series.append(PanelSeries(f"shard {s}", points, step=True))
    return panel if panel.has_data() else None


def _fleet_trace_block(trace, shard_of_server, trace_path: Optional[str]) -> str:
    """Deep-link section for the sampled cross-shard request traces."""
    traces = getattr(trace, "traces", None)
    if not traces:
        return ""
    link = ""
    if trace_path:
        link = (
            f' — merged Chrome-trace: <a href="{html.escape(trace_path)}">'
            f"{html.escape(trace_path)}</a> (open in Perfetto)"
        )
    rows = []
    for t in traces[:MAX_TABLE_ROWS]:
        marks = t.markers()
        send = marks.get("send")
        recv = marks.get("reply_recv")
        rtt = f"{(recv - send) / 1e6:.3f}" if send is not None and recv is not None else "-"
        shard = shard_of_server.get(t.server_index, "-")
        rows.append(
            f"<tr><td>{html.escape(t.trace_id)}</td>"
            f"<td>server{t.server_index}</td><td>{shard}</td>"
            f"<td>{_fmt(send / 1e6) if send is not None else '-'}</td>"
            f"<td>{rtt}</td></tr>"
        )
    return (
        "<div class='watchpoints'><b>"
        f"{len(traces)} traced request"
        f"{'s' if len(traces) != 1 else ''}</b> "
        f"(1 in {trace.sample_every} deterministic sample){link}"
        "<details class='table-view'><summary>Trace samples</summary>"
        "<table><thead><tr><th>trace id</th><th>server</th><th>shard</th>"
        "<th>sent (ms)</th><th>RTT (ms)</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table></details></div>"
    )


def dashboard_from_datacenter(
    result, title: Optional[str] = None, trace_path: Optional[str] = None
) -> str:
    """Render a recorded :class:`~repro.cluster.datacenter.DatacenterResult`
    with the per-metric, line-per-server :func:`datacenter_panels` layout.

    A run with ``profile_fleet=`` adds a per-window shard wall-time panel
    (the imbalance picture); one with ``trace_requests=`` adds a trace
    sample table, deep-linking ``trace_path`` when the merged Chrome-trace
    was written next to the dashboard.
    """
    record = getattr(result, "record", None)
    timeseries = getattr(record, "timeseries", None) or {}
    if not timeseries:
        raise ValueError(
            "result carries no merged timeseries; run with "
            "record_timeseries='coarse' (or a RecorderConfig)"
        )
    bundle = TimeseriesBundle.from_json_dict(timeseries)
    config = result.config
    warmup = config.warmup_ns
    measured = warmup + config.measure_ns
    panels = datacenter_panels(bundle)
    fleet_profile = getattr(result, "fleet_profile", None)
    if fleet_profile is not None:
        imbalance = _fleet_imbalance_panel(fleet_profile)
        if imbalance is not None:
            panels.append(imbalance)
    extra_html = ""
    trace = getattr(result, "trace", None)
    if trace is not None:
        shard_of_server = {
            i: s.shard_index
            for s in getattr(result, "shards", ())
            for i in s.server_indices
        }
        extra_html = _fleet_trace_block(trace, shard_of_server, trace_path)
    if record is not None and getattr(record, "energy_attribution", None):
        extra_html += _energy_block(record.energy_attribution_report())
    return render_dashboard(
        bundle,
        title=title or "Datacenter flight recorder",
        subtitle=(
            f"{config.app} / {record.policy} - {config.n_servers} servers, "
            f"{config.n_shards} shard{'s' if config.n_shards != 1 else ''} - "
            f"seed {config.seed}"
        ),
        phases=[
            ("warmup", 0, warmup),
            ("measure", warmup, measured),
            ("drain", measured, config.end_ns),
        ],
        panels=panels,
        extra_html=extra_html,
    )


def write_dashboard(html_text: str, path: str) -> str:
    """Write rendered dashboard HTML to ``path`` (creating parents)."""
    import os

    out_dir = os.path.dirname(path)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(html_text)
    return path
