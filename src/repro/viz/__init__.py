"""Self-contained HTML visualizations of simulation captures."""

from repro.viz.dashboard import (  # noqa: F401 - re-exported
    Panel,
    PanelSeries,
    dashboard_from_datacenter,
    dashboard_from_result,
    datacenter_panels,
    render_dashboard,
    standard_panels,
    write_dashboard,
)
from repro.viz.frontier import (  # noqa: F401 - re-exported
    render_frontier,
    render_trend_page,
)
