"""Self-contained HTML visualizations of simulation captures."""

from repro.viz.dashboard import (  # noqa: F401 - re-exported
    Panel,
    PanelSeries,
    dashboard_from_result,
    render_dashboard,
    standard_panels,
    write_dashboard,
)
