"""NCAP reproduction: network-driven, packet context-aware power management.

Reimplementation of *NCAP: Network-Driven, Packet Context-Aware Power
Management for Client-Server Architecture* (Alian et al., HPCA 2017) on a
pure-Python discrete-event full-system model.

Quick start::

    from repro import ExperimentConfig, run_experiment

    result = run_experiment(ExperimentConfig(
        app="apache", policy="ncap.cons", target_rps=45_000,
    ))
    print(result.latency.p95_ns / 1e6, "ms p95;",
          result.energy.energy_j, "J")

Subpackages:

- ``repro.core``     — NCAP itself (ReqMonitor, DecisionEngine, drivers);
- ``repro.sim``      — discrete-event kernel, units, tracing, RNG;
- ``repro.cpu``      — cores, P/C states, DVFS timing, power/energy;
- ``repro.oskernel`` — scheduler, IRQs, cpufreq/cpuidle governors;
- ``repro.net``      — links, switch, NIC, interrupt moderation;
- ``repro.apps``     — Apache/Memcached models, open-loop clients;
- ``repro.cluster``  — node/cluster wiring and the experiment runner;
- ``repro.harness``  — sweep specs, parallel runner, result records/cache;
- ``repro.metrics``  — latency percentiles, energy windows, reports;
- ``repro.experiments`` — one runner per paper table/figure.
"""

from repro.cluster import (
    POLICIES,
    POLICY_ORDER,
    Cluster,
    ExperimentConfig,
    ExperimentResult,
    PolicyConfig,
    get_policy,
    run_experiment,
)
from repro.core import NCAPConfig
from repro.harness import (
    ResultCache,
    ResultRecord,
    Runner,
    RunSpec,
    SweepSpec,
    run_sweep,
)
from repro.validation import validate_table1

__version__ = "1.0.0"

__all__ = [
    "POLICIES",
    "POLICY_ORDER",
    "Cluster",
    "ExperimentConfig",
    "ExperimentResult",
    "PolicyConfig",
    "get_policy",
    "run_experiment",
    "NCAPConfig",
    "ResultCache",
    "ResultRecord",
    "Runner",
    "RunSpec",
    "SweepSpec",
    "run_sweep",
    "validate_table1",
    "__version__",
]
