"""Energy provenance: decompose a node's joules into causal components.

The energy twin of :mod:`repro.analysis.attribution`.  Where the latency
sink telescopes each RTT into wire/wake/ramp/... components, this module
telescopes each node's measurement-window energy into

==================  =====================================================
``active``          cycles retired in RUN (the work itself)
``ramp``            DVFS PLL-relock halts (frequency-ramp overshoot)
``wake``            C-state entry/exit transitions (WAKING residency)
``floor``           the per-C-state idle floor: what a perfect-oracle
                    C-state choice would have spent for the realized
                    idle residency, broken down by oracle state
``wasted_shallow``  actual idle energy minus the floor — joules burned
                    because the governor chose too shallow (or NCAP /
                    the latency limit pinned the core awake)
==================  =====================================================

with a conservation invariant: the components sum to the
:class:`~repro.cpu.energy.EnergyReport` integral within ±1 µJ (enforced
by :class:`~repro.analysis.audit.InvariantAuditor`).  The floor/wasted
split and the per-governor ``above``/``below``/``hit`` decision grades
come from :class:`repro.oskernel.cpuidle.IdleAccounting`; the other
components read straight off the meter's per-mode energy dict.

Everything here is plain data — picklable, JSON-serializable, and merged
across fleet shards in server-index order so serial, sharded, and pooled
runs produce byte-identical records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cpu.energy import EnergyReport
from repro.metrics.report import format_table

#: Telescoping component names, in blame-table order.
ENERGY_COMPONENTS = ("active", "ramp", "wake", "floor", "wasted_shallow")

#: Conservation tolerance: components must sum to the EnergyReport
#: integral within this many joules (±1 µJ).
CONSERVATION_TOL_J = 1e-6

_DECISION_KEYS = ("above", "below", "hit")


@dataclass
class EnergyAttribution:
    """One node's (or a fleet's merged) energy decomposition.

    ``decisions`` is keyed per governor, then per core position
    (``"0"``, ``"1"``, ...); merging fleet nodes adds counters of the
    same governor and core position together.
    """

    governor: str
    total_j: float
    active_j: float = 0.0
    ramp_j: float = 0.0
    wake_j: float = 0.0
    wasted_shallow_j: float = 0.0
    floor_j_by_state: Dict[str, float] = field(default_factory=dict)
    floor_ns_by_state: Dict[str, int] = field(default_factory=dict)
    decisions: Dict[str, Dict[str, Dict[str, int]]] = field(default_factory=dict)
    above_ns: int = 0
    below_j: float = 0.0
    n_nodes: int = 1

    # -- derived ------------------------------------------------------------

    @property
    def floor_j(self) -> float:
        return sum(self.floor_j_by_state.values())

    @property
    def components_sum_j(self) -> float:
        return (
            self.active_j
            + self.ramp_j
            + self.wake_j
            + self.floor_j
            + self.wasted_shallow_j
        )

    @property
    def conservation_error_j(self) -> float:
        """Signed telescoping error: components sum minus the integral."""
        return self.components_sum_j - self.total_j

    def component_j(self, name: str) -> float:
        if name == "floor":
            return self.floor_j
        return getattr(self, f"{name}_j")

    def decision_totals(self, governor: Optional[str] = None) -> Dict[str, int]:
        """above/below/hit summed over cores (and governors unless given)."""
        totals = {key: 0 for key in _DECISION_KEYS}
        for gov, per_core in self.decisions.items():
            if governor is not None and gov != governor:
                continue
            for counts in per_core.values():
                for key in _DECISION_KEYS:
                    totals[key] += counts.get(key, 0)
        return totals

    # -- fleet merge ---------------------------------------------------------

    def merge(self, other: "EnergyAttribution") -> "EnergyAttribution":
        """Combine two nodes' attributions (fleet reduction).

        Deterministic given the call order — callers reduce in server
        index order, which is what makes sharded merges byte-identical.
        """
        governors = list(self.governor.split("+"))
        for part in other.governor.split("+"):
            if part not in governors:
                governors.append(part)
        merged = EnergyAttribution(
            governor="+".join(governors),
            total_j=self.total_j + other.total_j,
            active_j=self.active_j + other.active_j,
            ramp_j=self.ramp_j + other.ramp_j,
            wake_j=self.wake_j + other.wake_j,
            wasted_shallow_j=self.wasted_shallow_j + other.wasted_shallow_j,
            above_ns=self.above_ns + other.above_ns,
            below_j=self.below_j + other.below_j,
            n_nodes=self.n_nodes + other.n_nodes,
        )
        for src in (self.floor_j_by_state, other.floor_j_by_state):
            for key, value in src.items():
                merged.floor_j_by_state[key] = (
                    merged.floor_j_by_state.get(key, 0.0) + value
                )
        for src in (self.floor_ns_by_state, other.floor_ns_by_state):
            for key, value in src.items():
                merged.floor_ns_by_state[key] = (
                    merged.floor_ns_by_state.get(key, 0) + value
                )
        for src in (self.decisions, other.decisions):
            for gov, per_core in src.items():
                gov_dst = merged.decisions.setdefault(gov, {})
                for core, counts in per_core.items():
                    dst = gov_dst.setdefault(
                        core, {key: 0 for key in _DECISION_KEYS}
                    )
                    for key in _DECISION_KEYS:
                        dst[key] += counts.get(key, 0)
        return merged

    # -- serialization -------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "governor": self.governor,
            "total_j": self.total_j,
            "active_j": self.active_j,
            "ramp_j": self.ramp_j,
            "wake_j": self.wake_j,
            "wasted_shallow_j": self.wasted_shallow_j,
            "floor_j_by_state": dict(self.floor_j_by_state),
            "floor_ns_by_state": dict(self.floor_ns_by_state),
            "decisions": {
                gov: {core: dict(counts) for core, counts in per_core.items()}
                for gov, per_core in self.decisions.items()
            },
            "above_ns": self.above_ns,
            "below_j": self.below_j,
            "n_nodes": self.n_nodes,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "EnergyAttribution":
        return cls(
            governor=data["governor"],
            total_j=data["total_j"],
            active_j=data["active_j"],
            ramp_j=data["ramp_j"],
            wake_j=data["wake_j"],
            wasted_shallow_j=data["wasted_shallow_j"],
            floor_j_by_state=dict(data["floor_j_by_state"]),
            floor_ns_by_state={
                key: int(value)
                for key, value in data["floor_ns_by_state"].items()
            },
            decisions={
                gov: {core: dict(counts) for core, counts in per_core.items()}
                for gov, per_core in data["decisions"].items()
            },
            above_ns=int(data["above_ns"]),
            below_j=data["below_j"],
            n_nodes=int(data.get("n_nodes", 1)),
        )


def _sub_float(end: Dict[str, float], start: Dict[str, float]) -> Dict[str, float]:
    return {
        key: value - start.get(key, 0.0)
        for key, value in end.items()
        if abs(value - start.get(key, 0.0)) > 1e-15
    }


def _sub_int(end: Dict[str, int], start: Dict[str, int]) -> Dict[str, int]:
    out = {}
    for key, value in end.items():
        diff = value - start.get(key, 0)
        if diff:
            out[key] = diff
    return out


def attribution_between(
    start: Dict[str, object],
    end: Dict[str, object],
    window_energy: EnergyReport,
) -> EnergyAttribution:
    """Build one node's window attribution from two accounting snapshots.

    ``start``/``end`` are :meth:`IdleAccounting.snapshot` totals taken at
    the window boundaries (both snapshots force a partial booking, so
    their cumulative totals diff exactly); ``window_energy`` is the
    matching :func:`~repro.metrics.energy.energy_delta` report.
    """
    by_mode = window_energy.energy_by_mode_j
    governor = end["governor"]
    decisions: Dict[str, Dict[str, Dict[str, int]]] = {}
    start_decisions = start["decisions"]
    for core, counts in end["decisions"].items():
        base = start_decisions.get(core, {})
        diff = {
            key: counts.get(key, 0) - base.get(key, 0) for key in _DECISION_KEYS
        }
        if any(diff.values()):
            decisions.setdefault(governor, {})[core] = diff
    return EnergyAttribution(
        governor=governor,
        total_j=window_energy.energy_j,
        active_j=by_mode.get("run", 0.0),
        ramp_j=by_mode.get("stall", 0.0),
        wake_j=by_mode.get("waking", 0.0),
        wasted_shallow_j=end["wasted_shallow_j"] - start["wasted_shallow_j"],
        floor_j_by_state=_sub_float(
            end["floor_j_by_state"], start["floor_j_by_state"]
        ),
        floor_ns_by_state=_sub_int(
            end["floor_ns_by_state"], start["floor_ns_by_state"]
        ),
        decisions=decisions,
        above_ns=end["above_ns"] - start["above_ns"],
        below_j=end["below_j"] - start["below_j"],
    )


# -- reports ----------------------------------------------------------------


def _fmt_j(value: float) -> str:
    return f"{value:.4f}"


def _floor_states(attrs: List[EnergyAttribution]) -> List[str]:
    states: List[str] = []
    for attr in attrs:
        # Union of both breakdowns: a state whose floor is exactly 0 J
        # (C6 at zero static power) still appears via its residency.
        for name in list(attr.floor_j_by_state) + list(attr.floor_ns_by_state):
            if name not in states:
                states.append(name)
    order = {"C0": 0, "C1": 1, "C3": 2, "C6": 3}
    return sorted(states, key=lambda s: (order.get(s, 99), s))


def format_energy_blame(
    rows: List[tuple], title: str = "Energy decomposition (J)"
) -> str:
    """Per-policy blame table: ``rows`` is [(label, EnergyAttribution)]."""
    attrs = [attr for _, attr in rows]
    states = _floor_states(attrs)
    headers = (
        ["policy", "total", "active", "ramp", "wake"]
        + [f"floor {s}" for s in states]
        + ["wasted", "wasted %"]
    )
    body = []
    for label, attr in rows:
        wasted_pct = (
            100.0 * attr.wasted_shallow_j / attr.total_j if attr.total_j else 0.0
        )
        body.append(
            [label, _fmt_j(attr.total_j), _fmt_j(attr.active_j),
             _fmt_j(attr.ramp_j), _fmt_j(attr.wake_j)]
            + [_fmt_j(attr.floor_j_by_state.get(s, 0.0)) for s in states]
            + [_fmt_j(attr.wasted_shallow_j), f"{wasted_pct:.1f}"]
        )
    return format_table(headers, body, title=title)


def format_governor_misses(rows: List[tuple]) -> str:
    """Per-policy governor decision grades: [(label, EnergyAttribution)]."""
    headers = ["policy", "governor", "above", "below", "hit",
               "above cost (ms)", "below cost (J)"]
    body = []
    for label, attr in rows:
        totals = attr.decision_totals()
        n = sum(totals.values())
        body.append([
            label,
            attr.governor,
            f"{totals['above']} ({100 * totals['above'] / n:.1f}%)" if n else "0",
            f"{totals['below']} ({100 * totals['below'] / n:.1f}%)" if n else "0",
            f"{totals['hit']} ({100 * totals['hit'] / n:.1f}%)" if n else "0",
            f"{attr.above_ns / 1e6:.3f}",
            _fmt_j(attr.below_j),
        ])
    return format_table(
        headers, body,
        title="Governor decisions vs perfect oracle (idle exits)",
    )


def format_energy_diff(
    label_a: str,
    attr_a: EnergyAttribution,
    label_b: str,
    attr_b: EnergyAttribution,
) -> str:
    """Side-by-side two-policy component diff (B minus A)."""
    states = _floor_states([attr_a, attr_b])
    rows = []
    components = [
        ("total", attr_a.total_j, attr_b.total_j),
        ("active", attr_a.active_j, attr_b.active_j),
        ("ramp", attr_a.ramp_j, attr_b.ramp_j),
        ("wake", attr_a.wake_j, attr_b.wake_j),
    ]
    for state in states:
        components.append((
            f"floor {state}",
            attr_a.floor_j_by_state.get(state, 0.0),
            attr_b.floor_j_by_state.get(state, 0.0),
        ))
    components.append(
        ("wasted_shallow", attr_a.wasted_shallow_j, attr_b.wasted_shallow_j)
    )
    for name, a, b in components:
        delta = b - a
        pct = f"{100 * delta / a:+.1f}%" if a else "-"
        rows.append([name, _fmt_j(a), _fmt_j(b), f"{delta:+.4f}", pct])
    return format_table(
        ["component", label_a, label_b, "delta (J)", "delta"],
        rows,
        title=f"Energy diff — {label_b} vs {label_a}",
    )
