"""Analysis layer: turn the probe stream into explanations.

- :mod:`repro.analysis.sketch` — O(1)-memory streaming percentile
  estimators (P², t-digest-style);
- :mod:`repro.analysis.attribution` — per-request critical-path
  attribution (wire/dma/coalesce/wake/kernel/queue/service/ramp/
  preempt/io/tx) with tail blame tables;
- :mod:`repro.analysis.energy` — the energy twin: per-node joules
  telescoped into active/ramp/wake/idle-floor/wasted-shallow with
  governor-miss grading against a perfect oracle;
- :mod:`repro.analysis.audit` — opt-in invariant auditing that fails
  loudly when the telemetry stream or the accounting is inconsistent;
- :mod:`repro.analysis.compare` — cross-run comparison: RunSets over
  many ResultRecords, paired diffs with order-statistic confidence
  intervals, energy-component deltas, counter drift;
- :mod:`repro.analysis.report` — table rendering for the above.
"""

from repro.analysis.attribution import (  # noqa: F401
    COMPONENTS,
    PM_COMPONENTS,
    AttributionReport,
    AttributionSink,
    RequestAttribution,
    TailAttribution,
)
from repro.analysis.audit import AuditError, InvariantAuditor  # noqa: F401
from repro.analysis.compare import (  # noqa: F401
    AXES,
    MetricDelta,
    PairedDiff,
    RunSet,
    compare,
    diff_records,
    format_compare_report,
    format_runset_summary,
    joules_per_request,
    percentile_ci,
    sketch_rank_halfwidth,
)
from repro.analysis.energy import (  # noqa: F401
    ENERGY_COMPONENTS,
    EnergyAttribution,
    attribution_between,
    format_energy_blame,
    format_energy_diff,
    format_governor_misses,
)
from repro.analysis.report import (  # noqa: F401
    format_attribution_report,
    format_mean_table,
    format_tail_table,
)
from repro.analysis.sketch import P2Quantile, StreamingSketch  # noqa: F401
