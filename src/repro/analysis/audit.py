"""Invariant auditing: fail loudly when observability lies.

The :class:`InvariantAuditor` is an opt-in ProbeBus sink
(``run_experiment(config, audit=True)``) that cross-checks the telemetry
stream and the simulation's own accounting:

- **Phase ordering** — every request's ``request.span`` phases must be
  monotone in both pipeline order and time; ``dropped`` is terminal and
  only legal straight after ``dma``.
- **C-state pairing** — per (domain, core): ``enter`` only while awake,
  ``promote`` only while asleep, ``wake`` only while asleep and naming
  the state actually occupied.
- **Residency conservation** — each core's power-meter residencies must
  sum exactly to the simulated time span (every nanosecond is metered in
  exactly one power mode).
- **Energy integrals** — per-mode energies must sum to the meter total,
  the package report must equal the sum of its cores, and fixed-power
  C-states (C3/C6) must satisfy ``energy == power × residency``.
- **Attribution conservation** — when an
  :class:`~repro.analysis.attribution.AttributionSink` runs alongside,
  its per-request components must sum to the measured RTT within 1 ns.
- **Energy-attribution conservation** — when the run carries an
  :class:`~repro.analysis.energy.EnergyAttribution`, its telescoping
  components must sum to the EnergyReport integral within ±1 µJ.

Any violation raises :class:`AuditError` from
:meth:`InvariantAuditor.finish` (called by ``Cluster.collect``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.telemetry.events import CStateTransition, RequestPhase

#: Pipeline order of the non-terminal span phases.
PHASE_ORDER = {"arrival": 0, "dma": 1, "delivered": 2, "service": 3, "reply": 4}

#: Relative float tolerance for energy-sum identities (accumulation
#: order differs between the checked quantities).
_REL_TOL = 1e-9


class AuditError(AssertionError):
    """The telemetry stream or the simulation accounting is inconsistent."""

    def __init__(self, violations: List[str]):
        self.violations = violations
        preview = "\n  - ".join(violations[:10])
        more = f"\n  (+{len(violations) - 10} more)" if len(violations) > 10 else ""
        super().__init__(
            f"{len(violations)} invariant violation(s):\n  - {preview}{more}"
        )


class InvariantAuditor:
    """Streaming invariant checks over the probe stream."""

    def __init__(self, max_violations: int = 100):
        self.max_violations = max_violations
        self.violations: List[str] = []
        self.spans_checked = 0
        self._open: Dict[str, Tuple[int, int]] = {}      # span -> (order, t)
        self._asleep: Dict[Tuple[str, int], str] = {}    # (domain, core) -> state

    def attach(self, telemetry) -> None:
        bus = telemetry.probes
        bus.subscribe("request.span", self._on_span)
        bus.subscribe("cpu.cstate", self._on_cstate)

    def _note(self, message: str) -> None:
        if len(self.violations) < self.max_violations:
            self.violations.append(message)

    # -- streaming checks --------------------------------------------------

    def _on_span(self, event: RequestPhase) -> None:
        span_id = event.span_id
        prev = self._open.get(span_id)
        if event.phase == "dropped":
            if prev is None:
                self._note(f"{span_id}: dropped without arrival")
            elif prev[0] > PHASE_ORDER["dma"]:
                self._note(f"{span_id}: dropped after delivery")
            self._open.pop(span_id, None)
            return
        order = PHASE_ORDER.get(event.phase)
        if order is None:
            self._note(f"{span_id}: unknown phase {event.phase!r}")
            return
        if order == 0:
            if prev is not None:
                self._note(f"{span_id}: duplicate arrival")
            self._open[span_id] = (0, event.t_ns)
            return
        if prev is None:
            self._note(f"{span_id}: {event.phase} without arrival")
            self._open[span_id] = (order, event.t_ns)
            return
        if order <= prev[0]:
            self._note(
                f"{span_id}: phase {event.phase} out of order "
                f"(already past order {prev[0]})"
            )
        if event.t_ns < prev[1]:
            self._note(
                f"{span_id}: time went backwards at {event.phase} "
                f"({event.t_ns} < {prev[1]})"
            )
        if event.phase == "reply":
            self.spans_checked += 1
            del self._open[span_id]
        else:
            self._open[span_id] = (order, event.t_ns)

    def _on_cstate(self, event: CStateTransition) -> None:
        key = (event.domain, event.core_id)
        current = self._asleep.get(key)
        where = f"{event.domain}/core{event.core_id}"
        if event.phase == "enter":
            if current is not None:
                self._note(f"{where}: entered {event.state} while in {current}")
            self._asleep[key] = event.state
        elif event.phase == "promote":
            if current is None:
                self._note(f"{where}: promoted to {event.state} while awake")
            self._asleep[key] = event.state
        elif event.phase == "wake":
            if current is None:
                self._note(f"{where}: woke without a matching enter")
            else:
                if event.state != current:
                    self._note(
                        f"{where}: woke from {event.state} but was in {current}"
                    )
                del self._asleep[key]
            if event.exit_latency_ns < 0:
                self._note(f"{where}: negative exit latency on wake")
        else:
            self._note(f"{where}: unknown cstate phase {event.phase!r}")

    # -- end-of-run checks -------------------------------------------------

    def check_cluster(self, cluster) -> None:
        """Residency and energy conservation against the live cluster."""
        now = cluster.sim.now
        package = cluster.server.package
        model_config = package.power_model.config
        fixed_power = {"C3": model_config.c3_static_w, "C6": model_config.c6_static_w}
        core_sum = 0.0
        for core in package.cores:
            report = core.meter.report()
            where = f"core{core.core_id}"
            residency = sum(report.residency_ns.values())
            if residency != now:
                self._note(
                    f"{where}: residencies sum to {residency} ns over a "
                    f"{now} ns run"
                )
            mode_sum = sum(report.energy_by_mode_j.values())
            if abs(report.energy_j - mode_sum) > _REL_TOL * max(1.0, abs(report.energy_j)):
                self._note(
                    f"{where}: per-mode energies sum to {mode_sum!r} J but "
                    f"total is {report.energy_j!r} J"
                )
            for mode, power_w in fixed_power.items():
                mode_ns = report.residency_ns.get(mode, 0)
                expected_j = power_w * mode_ns * 1e-9
                actual_j = report.energy_by_mode_j.get(mode, 0.0)
                if abs(actual_j - expected_j) > _REL_TOL * max(1.0, abs(expected_j)):
                    self._note(
                        f"{where}: {mode} energy {actual_j!r} J != "
                        f"power x residency {expected_j!r} J"
                    )
            core_sum += report.energy_j
        package_report = package.energy_report()
        if abs(package_report.energy_j - core_sum) > _REL_TOL * max(1.0, core_sum):
            self._note(
                f"package energy {package_report.energy_j!r} J != sum of "
                f"cores {core_sum!r} J"
            )

    def check_attribution(self, sink) -> None:
        """Adopt conservation violations recorded by an AttributionSink."""
        for message in sink.conservation_violations:
            self._note(f"attribution: {message}")

    def check_energy_attribution(self, attribution) -> None:
        """Energy decomposition conservation: the telescoping components
        (active + ramp + wake + floor + wasted_shallow) must sum to the
        EnergyReport integral within ±1 µJ, and no component that is
        non-negative by construction may go negative."""
        from repro.analysis.energy import CONSERVATION_TOL_J

        error = attribution.conservation_error_j
        if abs(error) > CONSERVATION_TOL_J:
            self._note(
                f"energy: components sum to {attribution.components_sum_j!r} J "
                f"but the integral is {attribution.total_j!r} J "
                f"(error {error:+.3e} J > ±1 µJ)"
            )
        if attribution.wasted_shallow_j < -CONSERVATION_TOL_J:
            self._note(
                f"energy: negative wasted-shallow "
                f"{attribution.wasted_shallow_j!r} J"
            )
        for state, joules in attribution.floor_j_by_state.items():
            if joules < -CONSERVATION_TOL_J:
                self._note(f"energy: negative {state} idle floor {joules!r} J")

    def finish(self, cluster=None, attribution=None, energy_attribution=None) -> None:
        """Run the end-of-run checks; raise on any recorded violation."""
        if cluster is not None:
            self.check_cluster(cluster)
        if attribution is not None:
            self.check_attribution(attribution)
        if energy_attribution is not None:
            self.check_energy_attribution(energy_attribution)
        if self.violations:
            raise AuditError(list(self.violations))
