"""O(1)-memory streaming percentile sketches.

Two estimators, both bounded-memory regardless of stream length:

- :class:`P2Quantile` — the classic P² algorithm (Jain & Chlamtac, CACM
  1985): five markers tracking a *single* quantile, strictly O(1).
- :class:`StreamingSketch` — a t-digest-style merging sketch (Dunning &
  Ertl): a bounded set of centroids sized by a ``q(1-q)`` scale function,
  so resolution concentrates at the tails — exactly where tail-latency
  attribution needs it.  Supports arbitrary quantiles, exact
  count/mean/min/max, and lossless-ish :meth:`StreamingSketch.merge` for
  combining per-worker sketches.

These replace store-all-samples aggregation where a full run's latency
population would otherwise be held in memory (see
``Cluster(..., streaming_latency=True)`` and
:meth:`repro.metrics.latency.LatencyStats.from_sketch`).
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Tuple


class P2Quantile:
    """Single-quantile P² estimator: five markers, no stored samples.

    ``q`` is the target quantile as a fraction in (0, 1), e.g. 0.99.
    Until five observations arrive the exact order statistics are used.
    """

    __slots__ = ("q", "_n", "_heights", "_pos", "_inc")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError("q must be a fraction in (0, 1)")
        self.q = q
        self._n = 0
        self._heights: List[float] = []
        self._pos: List[float] = []
        # Desired-position increments for the five markers.
        self._inc = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    @property
    def count(self) -> int:
        return self._n

    def add(self, x: float) -> None:
        x = float(x)
        if self._n < 5:
            bisect.insort(self._heights, x)
            self._n += 1
            if self._n == 5:
                self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
            return
        h, pos = self._heights, self._pos
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and not (h[k] <= x < h[k + 1]):
                k += 1
        self._n += 1
        for i in range(k + 1, 5):
            pos[i] += 1.0
        n = self._n
        for i in (1, 2, 3):
            desired = 1.0 + (n - 1) * self._inc[i]
            delta = desired - pos[i]
            if (delta >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                delta <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                sign = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, sign)
                if not (h[i - 1] < candidate < h[i + 1]):
                    candidate = self._linear(i, sign)
                h[i] = candidate
                pos[i] += sign

    def _parabolic(self, i: int, sign: float) -> float:
        h, pos = self._heights, self._pos
        return h[i] + sign / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + sign)
            * (h[i + 1] - h[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - sign)
            * (h[i] - h[i - 1])
            / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, sign: float) -> float:
        h, pos = self._heights, self._pos
        j = i + int(sign)
        return h[i] + sign * (h[j] - h[i]) / (pos[j] - pos[i])

    @property
    def value(self) -> float:
        """Current estimate of the target quantile."""
        if self._n == 0:
            return float("nan")
        if self._n < 5:
            # Exact from the sorted prefix (nearest-rank interpolation).
            rank = self.q * (self._n - 1)
            lo = int(rank)
            hi = min(lo + 1, self._n - 1)
            frac = rank - lo
            return self._heights[lo] * (1.0 - frac) + self._heights[hi] * frac
        return self._heights[2]


class StreamingSketch:
    """Mergeable t-digest-style quantile sketch with exact moments.

    Memory is bounded by ``max_centroids`` + the insertion buffer; count,
    mean, min and max are exact, quantiles are approximate with relative
    rank error shrinking toward the tails (the ``q(1-q)`` size limit keeps
    tail centroids near weight 1).
    """

    def __init__(self, max_centroids: int = 128, buffer_size: int = 512):
        if max_centroids < 8:
            raise ValueError("max_centroids must be at least 8")
        self.max_centroids = max_centroids
        self.buffer_size = buffer_size
        self._centroids: List[Tuple[float, float]] = []  # (mean, weight), sorted
        self._buffer: List[float] = []
        self.count = 0
        self._sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    # -- ingestion ---------------------------------------------------------

    def add(self, x: float) -> None:
        x = float(x)
        self.count += 1
        self._sum += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        self._buffer.append(x)
        if len(self._buffer) >= self.buffer_size:
            self._flush()

    def extend(self, values: Iterable[float]) -> None:
        for x in values:
            self.add(x)

    def merge(self, other: "StreamingSketch") -> None:
        """Fold ``other``'s population into this sketch."""
        self._flush()
        other._flush()
        self.count += other.count
        self._sum += other._sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        merged = sorted(self._centroids + other._centroids)
        self._centroids = self._compress(merged)

    def _flush(self) -> None:
        if not self._buffer:
            return
        points = [(x, 1.0) for x in sorted(self._buffer)]
        self._buffer = []
        merged = sorted(self._centroids + points)
        self._centroids = self._compress(merged)

    def _compress(self, points: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
        total = sum(w for _, w in points)
        if total <= 0:
            return []
        # The q(1-q) scale function alone admits O(log n) centroids (the
        # per-centroid budget shrinks below 1 at the tails); re-compress
        # with a doubled scale until the hard budget holds.
        scale = 1.0
        while True:
            out = self._one_pass(points, total, scale)
            if len(out) <= self.max_centroids:
                return out
            points = out
            scale *= 2.0

    def _one_pass(
        self, points: List[Tuple[float, float]], total: float, scale: float
    ) -> List[Tuple[float, float]]:
        out: List[Tuple[float, float]] = []
        cur_mean, cur_w = points[0]
        cum = 0.0
        for mean, w in points[1:]:
            q = (cum + (cur_w + w) / 2.0) / total
            limit = max(
                1.0, scale * 4.0 * total * q * (1.0 - q) / self.max_centroids
            )
            if cur_w + w <= limit:
                merged_w = cur_w + w
                cur_mean = (cur_mean * cur_w + mean * w) / merged_w
                cur_w = merged_w
            else:
                out.append((cur_mean, cur_w))
                cum += cur_w
                cur_mean, cur_w = mean, w
        out.append((cur_mean, cur_w))
        return out

    # -- queries ------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``q`` in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be within [0, 100]")
        if self.count == 0:
            return float("nan")
        self._flush()
        if q <= 0.0 or self.count == 1:
            return self.min
        if q >= 100.0:
            return self.max
        # Anchor points: (cumulative rank at centroid midpoint, mean),
        # with min/max pinning the extremes.
        anchors: List[Tuple[float, float]] = [(0.0, self.min)]
        cum = 0.0
        for mean, w in self._centroids:
            anchors.append((cum + w / 2.0, mean))
            cum += w
        anchors.append((float(self.count), self.max))
        target = q / 100.0 * self.count
        for (r0, v0), (r1, v1) in zip(anchors, anchors[1:]):
            if target <= r1:
                if r1 == r0:
                    return v1
                frac = (target - r0) / (r1 - r0)
                return v0 + frac * (v1 - v0)
        return self.max

    def centroid_count(self) -> int:
        self._flush()
        return len(self._centroids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingSketch(count={self.count}, centroids="
            f"{len(self._centroids)}+{len(self._buffer)} buffered)"
        )
