"""Rendering attribution results as blame tables.

Pure formatting: takes :class:`~repro.analysis.attribution.AttributionReport`
objects (per policy) and renders the paper-style tail-blame tables
("at p99 under ond.idle, X% of latency is wake+ramp; under NCAP, Y%").
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.attribution import COMPONENTS, AttributionReport
from repro.metrics.report import format_table


def _share_cell(share: float) -> str:
    return f"{100.0 * share:.1f}%"


def format_tail_table(
    results: Sequence[Tuple[str, AttributionReport]],
    tail: str = "p99",
    title: str = "",
) -> str:
    """One tail's blame table: rows = policies, columns = components."""
    headers = ["policy", f"{tail} (ms)"] + list(COMPONENTS) + ["wake+ramp"]
    rows: List[List[str]] = []
    for policy, report in results:
        entry = report.tails.get(tail)
        if entry is None:
            rows.append([policy, "-"] + ["-"] * (len(COMPONENTS) + 1))
            continue
        row = [policy, f"{entry.threshold_ns / 1e6:.3f}"]
        row += [_share_cell(entry.shares.get(name, 0.0)) for name in COMPONENTS]
        row.append(_share_cell(entry.wake_ramp_share))
        rows.append(row)
    return format_table(headers, rows, title=title or f"Latency blame at {tail}")


def format_mean_table(
    results: Sequence[Tuple[str, AttributionReport]],
    title: str = "Mean latency decomposition (us)",
) -> str:
    """Mean per-component table in microseconds (all requests)."""
    headers = ["policy", "requests", "mean (us)"] + list(COMPONENTS)
    rows: List[List[str]] = []
    for policy, report in results:
        row = [policy, str(report.count), f"{report.mean_total_ns / 1e3:.2f}"]
        row += [
            f"{report.component_mean_ns.get(name, float('nan')) / 1e3:.2f}"
            for name in COMPONENTS
        ]
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_attribution_report(
    results: Sequence[Tuple[str, AttributionReport]],
    title: str = "Critical-path attribution",
    tails: Sequence[str] = ("p95", "p99"),
) -> str:
    """The full report: mean decomposition plus one table per tail."""
    sections = [format_mean_table(results)]
    for tail in tails:
        sections.append(format_tail_table(results, tail=tail))
    pm_lines: List[str] = []
    for policy, report in results:
        p99 = report.tails.get("p99")
        if p99 is not None:
            pm_lines.append(
                f"  {policy:<12} wake+ramp = {100 * p99.wake_ramp_share:.1f}% "
                f"of p99 ({p99.threshold_ns / 1e6:.3f} ms)"
            )
    body = "\n\n".join(sections)
    summary = "\n".join(pm_lines)
    return f"{title}\n\n{body}\n\nPower-management blame at the tail:\n{summary}\n"


def flat_attribution_rows(report: AttributionReport) -> List[List[str]]:
    """Record-style rows (name, value) for exports and debugging."""
    flat: Dict[str, float] = report.to_flat_dict()
    return [[key, f"{value:.3f}"] for key, value in sorted(flat.items())]
