"""Per-request critical-path attribution: blame every nanosecond.

The :class:`AttributionSink` subscribes to the ProbeBus and joins each
request's ``request.span`` phase markers with the ``request.account``
execution account and with the concurrent C-state and IRQ events on the
serving cores.  Each completed request's end-to-end latency decomposes
into named, non-overlapping components that sum to the measured RTT
**exactly** (the auditor enforces ±1 ns):

========== =============================================================
wire       client → server wire propagation + switch/link queueing
dma        NIC ring wait: wire arrival → rx descriptor DMA complete
coalesce   interrupt-moderation delay: DMA complete → NIC hardirq
wake       C-state exit latency overlapping the request (rx-side on the
           SoftIRQ core + run-queue-side on the serving cores)
kernel     hardirq/SoftIRQ stack processing: remainder of DMA → socket
queue      run-queue wait of the service and response jobs, minus wake
service    ideal service time: retired cycles re-cost at F_max
ramp       DVFS penalty: wall-clock slowdown from sub-nominal frequency
           (cpu_ns - cycles/F_max) plus PLL-relock halts
preempt    time the request's jobs sat preempted by kernel work
io         off-CPU I/O phase (Apache disk; zero for Memcached)
tx         reply → client receipt (kernel tx already billed in service)
========== =============================================================

Aggregation is O(1)-memory: per-component :class:`StreamingSketch`\\ es
plus a bounded top-K heap of the slowest requests, from which tail
(p95/p99) blame tables are computed.  Per-request records are retained
only on request (``keep_records=True``, for tests and deep dives).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.sketch import StreamingSketch
from repro.telemetry.events import (
    CStateTransition,
    IrqDelivered,
    RequestAccounting,
    RequestPhase,
)

#: Component names, in pipeline order (presentation order for tables).
COMPONENTS = (
    "wire", "dma", "coalesce", "wake", "kernel", "queue",
    "service", "ramp", "preempt", "io", "tx",
)

#: Components the paper blames on power management (Figures 2 and 7):
#: C-state exit latency and DVFS ramp/slowdown.
PM_COMPONENTS = ("wake", "ramp")


@dataclass
class RequestAttribution:
    """One request's fully decomposed end-to-end latency."""

    src: str
    req_id: int
    send_ns: int
    total_ns: int
    components: Dict[str, float]

    @property
    def span_id(self) -> str:
        return f"{self.src}/{self.req_id}"

    def share(self, name: str) -> float:
        return self.components[name] / self.total_ns if self.total_ns else 0.0


@dataclass
class TailAttribution:
    """Mean component blame over the requests at/above one percentile."""

    percentile: float
    threshold_ns: float          # latency at the percentile
    count: int                   # tail-set size the means were taken over
    mean_total_ns: float
    component_ns: Dict[str, float]
    shares: Dict[str, float]     # component_ns / mean_total_ns

    @property
    def wake_ramp_share(self) -> float:
        """The paper's causal quantity: power-management blame share."""
        return sum(self.shares.get(c, 0.0) for c in PM_COMPONENTS)


@dataclass
class AttributionReport:
    """Per-policy attribution summary (picklable, record-serializable)."""

    count: int
    mean_total_ns: float
    component_mean_ns: Dict[str, float]
    tails: Dict[str, TailAttribution] = field(default_factory=dict)
    unmatched: int = 0

    def to_flat_dict(self) -> Dict[str, float]:
        """Flatten to ``str -> float`` for :class:`ResultRecord` (v3)."""
        flat: Dict[str, float] = {
            "count": float(self.count),
            "unmatched": float(self.unmatched),
            "mean.total_ns": self.mean_total_ns,
        }
        for name, value in self.component_mean_ns.items():
            flat[f"mean.{name}_ns"] = value
        for label, tail in self.tails.items():
            flat[f"{label}.threshold_ns"] = tail.threshold_ns
            flat[f"{label}.mean_total_ns"] = tail.mean_total_ns
            flat[f"{label}.count"] = float(tail.count)
            for name, value in tail.component_ns.items():
                flat[f"{label}.{name}_ns"] = value
            flat[f"{label}.wake_ramp_share"] = tail.wake_ramp_share
        return flat


class _OpenSpan:
    """Server-side request state between wire arrival and reply."""

    __slots__ = ("arrival_ns", "dma_ns", "delivered_ns", "rx_core")

    def __init__(self, arrival_ns: int):
        self.arrival_ns = arrival_ns
        self.dma_ns: Optional[int] = None
        self.delivered_ns: Optional[int] = None
        self.rx_core: int = 0


class _ServerRecord:
    """Finished server-side decomposition awaiting the client RTT join."""

    __slots__ = ("arrival_ns", "reply_ns", "components")

    def __init__(self, arrival_ns: int, reply_ns: int, components: Dict[str, float]):
        self.arrival_ns = arrival_ns
        self.reply_ns = reply_ns
        self.components = components


class AttributionSink:
    """ProbeBus sink building per-request critical-path attributions.

    Attach via ``run_experiment(config, sinks=[AttributionSink()])`` (the
    cluster fills in ``f_max_hz`` and the measurement window), or attach
    to a bare :class:`~repro.telemetry.Telemetry` and call
    :meth:`on_client_rtt` yourself when driving events by hand.
    """

    #: Prune per-core event timelines every this many finalized requests.
    PRUNE_EVERY = 256

    def __init__(
        self,
        f_max_hz: Optional[float] = None,
        keep_records: bool = False,
        top_k: int = 4096,
        measure_window: Optional[Tuple[int, int]] = None,
        conservation_tol_ns: float = 1.0,
    ):
        self.f_max_hz = f_max_hz
        self.keep_records = keep_records
        self.top_k = top_k
        self.measure_window = measure_window
        self.conservation_tol_ns = conservation_tol_ns

        self.count = 0
        self.unmatched_rtts = 0
        self.records: List[RequestAttribution] = []
        self.conservation_violations: List[str] = []
        self.total_sketch = StreamingSketch()
        self.component_sketches: Dict[str, StreamingSketch] = {
            name: StreamingSketch() for name in COMPONENTS
        }

        self._spans: Dict[str, _OpenSpan] = {}
        self._done: Dict[Tuple[str, int], _ServerRecord] = {}
        self._waking: Dict[int, List[Tuple[int, int]]] = {}  # closed intervals
        self._irqs: Dict[int, List[int]] = {}                # nic hardirq times
        self._heap: List[Tuple[int, int, RequestAttribution]] = []
        self._seq = 0
        self._since_prune = 0

    # -- wiring ------------------------------------------------------------

    def attach(self, telemetry) -> None:
        bus = telemetry.probes
        bus.subscribe("request.span", self._on_span)
        bus.subscribe("request.account", self._on_account)
        bus.subscribe("cpu.cstate", self._on_cstate)
        bus.subscribe("irq.delivered", self._on_irq)

    # -- event intake ------------------------------------------------------

    def _on_cstate(self, event: CStateTransition) -> None:
        if event.phase == "wake" and event.exit_latency_ns > 0:
            self._waking.setdefault(event.core_id, []).append(
                (event.t_ns - event.exit_latency_ns, event.t_ns)
            )

    def _on_irq(self, event: IrqDelivered) -> None:
        if event.kind == "hardirq" and event.name == "nic-irq":
            self._irqs.setdefault(event.core_id, []).append(event.t_ns)

    def _on_span(self, event: RequestPhase) -> None:
        phase = event.phase
        if phase == "arrival":
            self._spans[event.span_id] = _OpenSpan(event.t_ns)
            return
        span = self._spans.get(event.span_id)
        if span is None:
            return
        if phase == "dma":
            span.dma_ns = event.t_ns
        elif phase == "delivered":
            span.delivered_ns = event.t_ns
            if event.core is not None:
                span.rx_core = event.core
        elif phase == "dropped":
            del self._spans[event.span_id]

    def _on_account(self, event: RequestAccounting) -> None:
        span = self._spans.pop(event.span_id, None)
        if span is None or span.dma_ns is None or span.delivered_ns is None:
            return
        if self.f_max_hz is None:
            raise RuntimeError(
                "AttributionSink.f_max_hz is unset — the cluster normally "
                "fills it in; set it explicitly for standalone use"
            )
        dma_t, delivered = span.dma_ns, span.delivered_ns
        comp: Dict[str, float] = {}

        comp["dma"] = float(dma_t - span.arrival_ns)
        # Interrupt-moderation delay: first NIC hardirq on the rx core in
        # [dma, delivered].  A batch delivered without a fresh interrupt
        # (NAPI re-poll) has zero coalescing delay.
        irq_t = self._first_irq(span.rx_core, dma_t, delivered)
        comp["coalesce"] = float(irq_t - dma_t) if irq_t is not None else 0.0
        # Rx-side C-state exit latency: WAKING time on the rx core after
        # the interrupt (the wake the interrupt itself triggered).
        rx_from = irq_t if irq_t is not None else dma_t
        wake_rx = self._waking_overlap(span.rx_core, rx_from, delivered)
        comp["kernel"] = float(delivered - dma_t) - comp["coalesce"] - wake_rx

        # Run-queue wait of both jobs, with queue-side wakes split out.
        wake_q = self._waking_overlap(
            event.core, delivered, event.svc_start_ns
        ) + self._waking_overlap(
            event.resp_core, event.resp_enqueue_ns, event.resp_start_ns
        )
        comp["wake"] = wake_rx + wake_q
        comp["queue"] = (
            float(event.svc_start_ns - delivered)
            + float(event.resp_start_ns - event.resp_enqueue_ns)
            - wake_q
        )

        # On-CPU time: ideal service at F_max; everything slower is ramp.
        # Event times are integer ns while cycles are exact, so the ideal
        # time can exceed the measured on-CPU time by sub-ns quantization;
        # clamp so ramp stays non-negative (the remainder is service).
        on_cpu = float(event.cpu_ns + event.stall_ns)
        comp["service"] = min(event.cycles / self.f_max_hz * 1e9, on_cpu)
        comp["ramp"] = on_cpu - comp["service"]
        # Preemption: span wall time of both jobs minus on-CPU and stalls.
        job_span = float(
            (event.svc_done_ns - event.svc_start_ns)
            + (event.t_ns - event.resp_start_ns)
        )
        comp["preempt"] = job_span - float(event.cpu_ns + event.stall_ns)
        comp["io"] = float(event.resp_enqueue_ns - event.svc_done_ns)

        key = (event.src, event.req_id if event.req_id is not None else -1)
        self._done[key] = _ServerRecord(span.arrival_ns, event.t_ns, comp)
        self._since_prune += 1
        if self._since_prune >= self.PRUNE_EVERY:
            self._prune(event.t_ns)

    # -- client join -------------------------------------------------------

    def on_client_rtt(self, src: str, req_id: int, send_ns: int, rtt_ns: int) -> None:
        """Join a client-observed RTT with the server-side decomposition."""
        rec = self._done.pop((src, req_id), None)
        if rec is None:
            self.unmatched_rtts += 1
            return
        window = self.measure_window
        if window is not None and not (window[0] <= send_ns < window[1]):
            return
        comp = rec.components
        comp["wire"] = float(rec.arrival_ns - send_ns)
        comp["tx"] = float(send_ns + rtt_ns - rec.reply_ns)
        total = rtt_ns

        delta = total - sum(comp.values())
        if abs(delta) > self.conservation_tol_ns and (
            len(self.conservation_violations) < 25
        ):
            self.conservation_violations.append(
                f"{src}/{req_id}: components sum to {total - delta:.3f} ns "
                f"but measured RTT is {total} ns (delta {delta:+.3f})"
            )

        record = RequestAttribution(
            src=src, req_id=req_id, send_ns=send_ns,
            total_ns=total, components=comp,
        )
        self.count += 1
        self.total_sketch.add(total)
        for name in COMPONENTS:
            self.component_sketches[name].add(comp[name])
        if self.keep_records:
            self.records.append(record)
        self._seq += 1
        entry = (total, self._seq, record)
        if len(self._heap) < self.top_k:
            heapq.heappush(self._heap, entry)
        elif entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)

    # -- per-core timeline helpers -----------------------------------------

    def _first_irq(self, core: int, start: int, end: int) -> Optional[int]:
        for t in self._irqs.get(core, ()):
            if start <= t <= end:
                return t
        return None

    def _waking_overlap(self, core: Optional[int], start: int, end: int) -> float:
        if core is None or end <= start:
            return 0.0
        total = 0
        for lo, hi in self._waking.get(core, ()):
            if hi <= start:
                continue
            if lo >= end:
                break
            total += min(hi, end) - max(lo, start)
        return float(total)

    def _prune(self, now_ns: int) -> None:
        """Drop per-core events older than every open request."""
        self._since_prune = 0
        horizon = now_ns
        for span in self._spans.values():
            if span.arrival_ns < horizon:
                horizon = span.arrival_ns
        for core, intervals in self._waking.items():
            self._waking[core] = [iv for iv in intervals if iv[1] >= horizon]
        for core, times in self._irqs.items():
            self._irqs[core] = [t for t in times if t >= horizon]

    # -- reporting ---------------------------------------------------------

    def tail(self, percentile: float) -> Optional[TailAttribution]:
        """Blame means over the requests at/above ``percentile``.

        Computed from the top-K heap; if the tail set is larger than the
        retained K, the means cover the K slowest requests only (a deeper,
        strictly-within-tail subset).
        """
        if self.count == 0:
            return None
        threshold = self.total_sketch.quantile(percentile)
        entries = [rec for total, _, rec in self._heap if total >= threshold]
        if not entries:
            entries = [max(self._heap)[2]]
        mean_total = sum(r.total_ns for r in entries) / len(entries)
        component_ns = {
            name: sum(r.components[name] for r in entries) / len(entries)
            for name in COMPONENTS
        }
        shares = {
            name: (value / mean_total if mean_total else 0.0)
            for name, value in component_ns.items()
        }
        return TailAttribution(
            percentile=percentile,
            threshold_ns=threshold,
            count=len(entries),
            mean_total_ns=mean_total,
            component_ns=component_ns,
            shares=shares,
        )

    def summary(self, percentiles: Tuple[float, ...] = (50.0, 95.0, 99.0)) -> AttributionReport:
        """The per-policy report: overall means plus tail blame tables."""
        if self.count == 0:
            return AttributionReport(
                count=0, mean_total_ns=float("nan"),
                component_mean_ns={}, tails={}, unmatched=self.unmatched_rtts,
            )
        component_mean = {
            name: sketch.mean for name, sketch in self.component_sketches.items()
        }
        tails: Dict[str, TailAttribution] = {}
        for p in percentiles:
            tail = self.tail(p)
            if tail is not None:
                tails[f"p{p:g}"] = tail
        return AttributionReport(
            count=self.count,
            mean_total_ns=self.total_sketch.mean,
            component_mean_ns=component_mean,
            tails=tails,
            unmatched=self.unmatched_rtts,
        )
