"""Cross-run comparison: RunSets, paired diffs, significance gates.

Every other analysis module observes a *single* run; this one observes a
*set* of runs.  A :class:`RunSet` loads and indexes many
:class:`~repro.harness.record.ResultRecord` objects — from an in-memory
sweep, an exported JSON array, or a sweep cache directory — and aligns
them on the config axes (app, policy, offered load, seed).  From an
aligned set, :func:`compare` computes paired run-to-run diffs along one
axis (normally ``policy``): percentile deltas, energy and
joules-per-request deltas, energy-attribution component deltas (PR 9),
and counter drift — each with an uncertainty half-width and a
significance gate, so *"NCAP beats ond.idle's p99 by X ± Y"* is a
computed, audited statement instead of prose.

Uncertainty model
-----------------
Records carry percentile summaries, not populations, so confidence
intervals come from the classic distribution-free order-statistic bound:
the rank of the empirical ``q``-quantile over ``n`` samples has standard
error ``sqrt(n * q * (1 - q))``.  :func:`percentile_ci` maps the
``± z``-rank window through the record's percentile anchors (the exact
p50/p90/p95/p99/max for stored runs, the streaming-sketch anchors for
``streaming_latency=`` runs) back to latency values.  A paired delta is
*significant* when it exceeds the root-sum-square of the two runs' CI
half-widths.

Sketch error bound
------------------
Runs aggregated through the PR 3 :class:`~repro.analysis.sketch.
StreamingSketch` answer percentiles from bounded centroids.  The
``q(1-q)`` scale function keeps the centroid straddling quantile ``q``
below roughly ``4 * n * q * (1 - q) / max_centroids`` samples, so a
sketch percentile lands within that many ranks of the exact order
statistic.  :func:`sketch_rank_halfwidth` exposes this documented bound;
the paired-diff tests hold the sketch-vs-exact agreement to it.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.report import format_table

if TYPE_CHECKING:  # break the analysis <-> harness import cycle
    from repro.harness.record import ResultRecord

#: The config axes a RunSet aligns on, in grouping order.
AXES = ("app", "policy", "target_rps", "seed")

#: Scalar record metrics diffed by :func:`compare`, with display labels.
DIFF_METRICS: Tuple[Tuple[str, str], ...] = (
    ("p50_ns", "p50"),
    ("p95_ns", "p95"),
    ("p99_ns", "p99"),
    ("energy_j", "energy"),
    ("joules_per_request", "J/req"),
    ("avg_power_w", "power"),
)

#: Percentile metrics that carry an order-statistic CI.
_PERCENTILE_Q = {"p50_ns": 50.0, "p95_ns": 95.0, "p99_ns": 99.0}


def load_label(target_rps: float) -> str:
    """Compact display label for a load axis value (``24000.0`` → ``24K``)."""
    if target_rps >= 1000 and float(target_rps) % 1000 == 0:
        return f"{target_rps / 1000:.0f}K"
    return f"{target_rps:g}"


def joules_per_request(record: ResultRecord) -> float:
    """Energy per completed request — the frontier's x-axis."""
    if record.responses_received <= 0:
        return float("nan")
    return record.energy_j / record.responses_received


def sketch_rank_halfwidth(
    count: int, q: float, max_centroids: int = 128
) -> float:
    """Documented rank-error bound of a streaming-sketch ``q``-percentile.

    ``q`` is in [0, 100].  The bound is the maximum centroid weight the
    ``q(1-q)`` scale function admits around quantile ``q`` (at least one
    sample): a sketch percentile interpolates between centroid midpoints,
    so it stays within this many ranks of the exact order statistic.
    """
    frac = q / 100.0
    return max(1.0, 4.0 * count * frac * (1.0 - frac) / max_centroids)


def percentile_ci(
    record: ResultRecord, q: float, z: float = 1.96
) -> Tuple[float, float]:
    """Distribution-free CI for a record's ``q``-percentile (``q`` in [0, 100]).

    The rank window ``n*q ± z*sqrt(n*q*(1-q))`` is mapped back to latency
    values through the record's percentile anchors.  Records keep no
    anchors below p50, so windows reaching under the median clamp there —
    conservative for the tail percentiles this gate exists for.
    """
    n = record.latency_count
    if n <= 0:
        return (float("nan"), float("nan"))
    frac = q / 100.0
    half_rank = z * math.sqrt(n * frac * (1.0 - frac))
    lo_q = max(0.0, (n * frac - half_rank) / n) * 100.0
    hi_q = min(1.0, (n * frac + half_rank) / n) * 100.0
    latency = record.latency
    return (latency.percentile(lo_q), latency.percentile(hi_q))


# -- RunSet ------------------------------------------------------------------


def _axis_key(record: ResultRecord) -> Tuple:
    return (record.app, record.target_rps, record.policy, record.seed)


class RunSet:
    """An indexed set of result records, aligned on the config axes."""

    def __init__(self, records: Iterable[ResultRecord]):
        self.records: List[ResultRecord] = sorted(
            records, key=lambda r: _axis_key(r) + (r.config_hash,)
        )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -- loading ----------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[ResultRecord]) -> "RunSet":
        return cls(records)

    @classmethod
    def from_json(cls, path: str) -> "RunSet":
        """Load an array exported by ``repro sweep --out`` /
        :func:`repro.metrics.export.export_result_records`."""
        from repro.metrics.export import load_result_records

        return cls(load_result_records(path))

    @classmethod
    def from_cache_dir(cls, directory: str) -> "RunSet":
        """Index every readable record in a sweep cache directory.

        Entries that fail to parse (stale schema, corrupt JSON, temp
        files) are skipped, mirroring the cache's own miss semantics.
        """
        from repro.harness.record import ResultRecord

        records = []
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".json") or name.startswith("."):
                continue
            try:
                with open(
                    os.path.join(directory, name), "r", encoding="utf-8"
                ) as fh:
                    data = json.load(fh)
                records.append(ResultRecord.from_json_dict(data))
            except (OSError, ValueError, TypeError):
                continue
        return cls(records)

    # -- indexing ---------------------------------------------------------

    def axis_values(self, axis: str) -> List:
        """Sorted distinct values along one of :data:`AXES`."""
        if axis not in AXES:
            raise KeyError(f"unknown axis {axis!r}; choose from {AXES}")
        return sorted({getattr(r, axis) for r in self.records})

    def select(self, **filters) -> "RunSet":
        """The sub-set matching every given axis value."""
        for axis in filters:
            if axis not in AXES:
                raise KeyError(f"unknown axis {axis!r}; choose from {AXES}")
        return RunSet(
            r for r in self.records
            if all(getattr(r, axis) == value for axis, value in filters.items())
        )

    def get(self, **filters) -> ResultRecord:
        """Exactly one record matching the filters (KeyError otherwise)."""
        matches = self.select(**filters).records
        if len(matches) != 1:
            raise KeyError(
                f"{len(matches)} records match {filters!r} (need exactly 1)"
            )
        return matches[0]

    def groups(self, axis: str) -> List[Tuple[Tuple, Dict]]:
        """Group records by every axis *except* ``axis``.

        Returns ``[(other_axes_key, {axis_value: record})]`` in sorted
        key order; duplicate coordinates keep the first record (the set
        is sorted, so this is deterministic).
        """
        if axis not in AXES:
            raise KeyError(f"unknown axis {axis!r}; choose from {AXES}")
        others = tuple(a for a in AXES if a != axis)
        grouped: Dict[Tuple, Dict] = {}
        for record in self.records:
            key = tuple(getattr(record, a) for a in others)
            grouped.setdefault(key, {}).setdefault(
                getattr(record, axis), record
            )
        return sorted(grouped.items())


# -- paired diffs ------------------------------------------------------------


@dataclass
class MetricDelta:
    """One metric's paired difference (candidate minus baseline)."""

    metric: str
    base: float
    cand: float
    ci_halfwidth: float = 0.0

    @property
    def delta(self) -> float:
        return self.cand - self.base

    @property
    def rel(self) -> float:
        """Relative change vs the baseline (nan when the base is 0)."""
        return self.delta / self.base if self.base else float("nan")

    @property
    def significant(self) -> bool:
        """True when the delta clears the combined uncertainty."""
        return abs(self.delta) > self.ci_halfwidth


@dataclass
class PairedDiff:
    """One baseline-vs-candidate comparison at a fixed grid coordinate."""

    app: str
    target_rps: float
    seed: int
    axis: str
    base_label: str
    cand_label: str
    metrics: Dict[str, MetricDelta] = field(default_factory=dict)
    #: Energy-attribution component deltas (PR 9), present when both
    #: records carry an ``energy_attribution`` payload.
    energy_components: Dict[str, MetricDelta] = field(default_factory=dict)
    #: Counters whose values drifted, sorted by descending |relative
    #: drift| then name; capped at ``compare(..., max_counters=)``.
    counter_drift: List[MetricDelta] = field(default_factory=list)

    @property
    def coordinate(self) -> str:
        return f"{self.app}@{load_label(self.target_rps)} seed {self.seed}"


def diff_records(
    base: ResultRecord,
    cand: ResultRecord,
    axis: str = "policy",
    max_counters: int = 8,
) -> PairedDiff:
    """Pair two records into a :class:`PairedDiff` with uncertainty."""
    diff = PairedDiff(
        app=cand.app,
        target_rps=cand.target_rps,
        seed=cand.seed,
        axis=axis,
        base_label=str(getattr(base, axis)),
        cand_label=str(getattr(cand, axis)),
    )
    for metric, _ in DIFF_METRICS:
        if metric == "joules_per_request":
            base_v, cand_v = joules_per_request(base), joules_per_request(cand)
        else:
            base_v, cand_v = getattr(base, metric), getattr(cand, metric)
        halfwidth = 0.0
        q = _PERCENTILE_Q.get(metric)
        if q is not None:
            lo_b, hi_b = percentile_ci(base, q)
            lo_c, hi_c = percentile_ci(cand, q)
            halfwidth = math.hypot((hi_b - lo_b) / 2.0, (hi_c - lo_c) / 2.0)
        diff.metrics[metric] = MetricDelta(metric, base_v, cand_v, halfwidth)
    base_attr = base.energy_attribution_report()
    cand_attr = cand.energy_attribution_report()
    if base_attr is not None and cand_attr is not None:
        from repro.analysis.energy import ENERGY_COMPONENTS

        for name in ("total",) + ENERGY_COMPONENTS:
            if name == "total":
                base_v, cand_v = base_attr.total_j, cand_attr.total_j
            else:
                base_v = base_attr.component_j(name)
                cand_v = cand_attr.component_j(name)
            diff.energy_components[name] = MetricDelta(name, base_v, cand_v)
    drift = []
    for key in set(base.counters) | set(cand.counters):
        b = base.counters.get(key, 0.0)
        c = cand.counters.get(key, 0.0)
        if b != c:
            drift.append(MetricDelta(key, b, c))
    drift.sort(key=lambda d: (-abs(d.rel) if d.base else -math.inf, d.metric))
    diff.counter_drift = drift[:max_counters]
    return diff


def compare(
    runset: RunSet,
    baseline,
    axis: str = "policy",
    max_counters: int = 8,
) -> List[PairedDiff]:
    """Paired diffs of every run against the ``baseline`` axis value.

    Records are grouped on all axes except ``axis``; within each group
    holding the baseline, every other axis value is paired against it.
    Groups without the baseline value are skipped.
    """
    diffs: List[PairedDiff] = []
    for _, by_value in runset.groups(axis):
        base = by_value.get(baseline)
        if base is None:
            continue
        for value in sorted(v for v in by_value if v != baseline):
            diffs.append(
                diff_records(base, by_value[value], axis, max_counters)
            )
    return diffs


# -- reports -----------------------------------------------------------------


def _fmt_ms(value_ns: float) -> str:
    return f"{value_ns / 1e6:.3f}"


def format_compare_report(
    diffs: Sequence[PairedDiff], title: Optional[str] = None
) -> str:
    """Paired-diff table: one row per comparison, significance-gated.

    A trailing ``*`` marks percentile deltas that clear the combined
    order-statistic CI; ``~`` marks deltas inside it (statistically
    indistinguishable at this run length).
    """
    if not diffs:
        return "no paired runs to compare"
    rows = []
    for diff in diffs:
        p99 = diff.metrics["p99_ns"]
        jpr = diff.metrics["joules_per_request"]
        energy = diff.metrics["energy_j"]
        gate = "*" if p99.significant else "~"
        wasted = diff.energy_components.get("wasted_shallow")
        rows.append([
            diff.app,
            load_label(diff.target_rps),
            diff.seed,
            f"{diff.cand_label} vs {diff.base_label}",
            f"{p99.delta / 1e6:+.3f} ± {p99.ci_halfwidth / 1e6:.3f} {gate}",
            f"{100 * p99.rel:+.1f}%",
            f"{1e3 * jpr.delta:+.4f}",
            f"{energy.delta:+.3f}",
            f"{wasted.delta:+.3f}" if wasted is not None else "-",
            len(diff.counter_drift),
        ])
    axis = diffs[0].axis
    return format_table(
        ["app", "load", "seed", axis, "Δp99 (ms, ±CI)", "Δp99 %",
         "ΔmJ/req", "ΔJ", "Δwasted (J)", "drift"],
        rows,
        title=title or f"Paired diffs along '{axis}' "
                       f"(* significant, ~ within CI)",
    )


def format_runset_summary(
    runset: RunSet, title: Optional[str] = None
) -> str:
    """One row per record: config axes, p50/p99, joules/request.

    The human-readable sweep summary (``repro sweep --summary``) — sweep
    output without opening the records.
    """
    rows = []
    for r in runset:
        rows.append([
            r.app,
            r.policy,
            load_label(r.target_rps),
            r.seed,
            round(r.p50_ns / 1e6, 3),
            round(r.p99_ns / 1e6, 3),
            f"{1e3 * joules_per_request(r):.4f}",
            round(r.energy_j, 3),
            "met" if r.meets_sla else "VIOLATED",
        ])
    return format_table(
        ["app", "policy", "load", "seed", "p50 (ms)", "p99 (ms)",
         "mJ/req", "energy (J)", "SLA"],
        rows,
        title=title or f"Run set — {len(runset)} records",
    )
