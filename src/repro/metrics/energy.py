"""Energy accounting over measurement windows."""

from __future__ import annotations

from repro.cpu.energy import EnergyReport


def energy_delta(start: EnergyReport, end: EnergyReport) -> EnergyReport:
    """Energy/residency accumulated between two snapshots of the same meter.

    :class:`PowerMeter` reports are cumulative, so a measurement window is
    simply the difference of its end and start snapshots.
    """
    delta = EnergyReport(energy_j=end.energy_j - start.energy_j)
    for key, value in end.residency_ns.items():
        diff = value - start.residency_ns.get(key, 0)
        if diff:
            delta.residency_ns[key] = diff
    for key, value in end.energy_by_mode_j.items():
        diff = value - start.energy_by_mode_j.get(key, 0.0)
        if abs(diff) > 1e-15:
            delta.energy_by_mode_j[key] = diff
    return delta


def average_power_w(report: EnergyReport, window_ns: int) -> float:
    """Mean power over the window the report covers."""
    if window_ns <= 0:
        raise ValueError("window must be positive")
    return report.energy_j / (window_ns * 1e-9)
