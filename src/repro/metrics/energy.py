"""Energy accounting over measurement windows."""

from __future__ import annotations

from repro.cpu.energy import EnergyReport


def energy_delta(start: EnergyReport, end: EnergyReport) -> EnergyReport:
    """Energy/residency accumulated between two snapshots of the same meter.

    :class:`PowerMeter` reports are cumulative, so a measurement window is
    simply the difference of its end and start snapshots.
    """
    delta = EnergyReport(energy_j=end.energy_j - start.energy_j)
    for key, value in end.residency_ns.items():
        diff = value - start.residency_ns.get(key, 0)
        if diff:
            delta.residency_ns[key] = diff
    for key, value in end.energy_by_mode_j.items():
        diff = value - start.energy_by_mode_j.get(key, 0.0)
        if abs(diff) > 1e-15:
            delta.energy_by_mode_j[key] = diff
    return delta


def average_power_w(report: EnergyReport, window_ns: int) -> float:
    """Mean power over the window the report covers."""
    if window_ns <= 0:
        raise ValueError("window must be positive")
    return report.energy_j / (window_ns * 1e-9)


#: Meter modes a core occupies while idle (C0 polling plus the C-states),
#: i.e. everything that is neither RUN, a DVFS stall, nor a transition.
IDLE_MODES = ("idle", "C1", "C3", "C6")


def idle_energy_j(report: EnergyReport) -> float:
    """Joules the report spent in idle modes (C0 poll + C-states)."""
    return sum(report.energy_by_mode_j.get(key, 0.0) for key in IDLE_MODES)


def mode_conservation_error_j(report: EnergyReport) -> float:
    """Signed error between the per-mode energy split and the integral.

    Zero up to float rounding for any single-meter (or merged) report;
    the energy-attribution conservation invariant builds on this.
    """
    return sum(report.energy_by_mode_j.values()) - report.energy_j
