"""Metrics: latency percentiles, energy windows, traces, text reports."""

from repro.metrics.energy import average_power_w, energy_delta
from repro.metrics.latency import LatencyStats
from repro.metrics.report import format_series, format_table, sparkline
from repro.metrics.timeseries import (
    UtilizationSampler,
    bandwidth_series_mbps,
    normalized_series,
)

__all__ = [
    "average_power_w",
    "energy_delta",
    "LatencyStats",
    "format_series",
    "format_table",
    "sparkline",
    "UtilizationSampler",
    "bandwidth_series_mbps",
    "normalized_series",
]
