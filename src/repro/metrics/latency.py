"""Latency statistics: percentiles, SLA normalization."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


@dataclass
class LatencyStats:
    """Percentile summary of a set of request latencies (ns)."""

    count: int
    mean_ns: float
    p50_ns: float
    p90_ns: float
    p95_ns: float
    p99_ns: float
    max_ns: float

    @classmethod
    def from_values(cls, values_ns: Sequence[float]) -> "LatencyStats":
        if len(values_ns) == 0:
            return cls(0, float("nan"), float("nan"), float("nan"),
                       float("nan"), float("nan"), float("nan"))
        arr = np.asarray(values_ns, dtype=np.float64)
        p50, p90, p95, p99 = np.percentile(arr, [50, 90, 95, 99])
        return cls(
            count=int(arr.size),
            mean_ns=float(arr.mean()),
            p50_ns=float(p50),
            p90_ns=float(p90),
            p95_ns=float(p95),
            p99_ns=float(p99),
            max_ns=float(arr.max()),
        )

    def percentile(self, q: float) -> float:
        """Convenience accessor for the canned percentiles."""
        table = {50: self.p50_ns, 90: self.p90_ns, 95: self.p95_ns, 99: self.p99_ns}
        if q not in table:
            raise KeyError(f"percentile {q} not precomputed")
        return table[q]

    def normalized_to(self, sla_ns: int) -> Dict[str, float]:
        """Percentiles as fractions of the SLA (the paper's presentation)."""
        if sla_ns <= 0:
            raise ValueError("SLA must be positive")
        return {
            "p50": self.p50_ns / sla_ns,
            "p90": self.p90_ns / sla_ns,
            "p95": self.p95_ns / sla_ns,
            "p99": self.p99_ns / sla_ns,
        }

    def meets_sla(self, sla_ns: int) -> bool:
        """SLA check on the 95th percentile (the paper's criterion)."""
        return self.count > 0 and self.p95_ns <= sla_ns
