"""Latency statistics: percentiles, SLA normalization."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np


@dataclass
class LatencyStats:
    """Percentile summary of a set of request latencies (ns)."""

    count: int
    mean_ns: float
    p50_ns: float
    p90_ns: float
    p95_ns: float
    p99_ns: float
    max_ns: float
    #: Streaming sketch of the full population when one was available
    #: (``from_values`` builds one; ``from_sketch`` keeps the original).
    #: Enables arbitrary :meth:`percentile` queries; not part of the
    #: stats' identity (excluded from equality) and absent on instances
    #: rebuilt from serialized records.
    sketch: Optional[object] = field(default=None, compare=False, repr=False)

    @classmethod
    def from_values(cls, values_ns: Sequence[float]) -> "LatencyStats":
        if len(values_ns) == 0:
            return cls(0, float("nan"), float("nan"), float("nan"),
                       float("nan"), float("nan"), float("nan"))
        from repro.analysis.sketch import StreamingSketch

        arr = np.asarray(values_ns, dtype=np.float64)
        p50, p90, p95, p99 = np.percentile(arr, [50, 90, 95, 99])
        sketch = StreamingSketch()
        sketch.extend(arr.tolist())
        return cls(
            count=int(arr.size),
            mean_ns=float(arr.mean()),
            p50_ns=float(p50),
            p90_ns=float(p90),
            p95_ns=float(p95),
            p99_ns=float(p99),
            max_ns=float(arr.max()),
            sketch=sketch,
        )

    @classmethod
    def from_sketch(cls, sketch) -> "LatencyStats":
        """Build from a streaming sketch (O(1)-memory aggregation path).

        Count, mean, and max are exact; percentiles carry the sketch's
        approximation error (tightest at the tails).
        """
        if sketch.count == 0:
            return cls(0, float("nan"), float("nan"), float("nan"),
                       float("nan"), float("nan"), float("nan"))
        return cls(
            count=sketch.count,
            mean_ns=float(sketch.mean),
            p50_ns=float(sketch.quantile(50)),
            p90_ns=float(sketch.quantile(90)),
            p95_ns=float(sketch.quantile(95)),
            p99_ns=float(sketch.quantile(99)),
            max_ns=float(sketch.max),
            sketch=sketch,
        )

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (``q`` in [0, 100]).

        The canned percentiles (50/90/95/99) are returned directly; any
        other ``q`` is answered by the attached sketch when present, and
        otherwise by monotone interpolation over the canned anchors (with
        ``q`` below 50 clamped to p50 — records do not retain the lower
        half of the distribution).
        """
        table = {50: self.p50_ns, 90: self.p90_ns, 95: self.p95_ns, 99: self.p99_ns}
        key = int(q) if float(q).is_integer() else None
        if key in table:
            return table[key]
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} outside [0, 100]")
        if self.count == 0:
            return float("nan")
        if self.sketch is not None:
            return float(self.sketch.quantile(q))
        anchors = [(50.0, self.p50_ns), (90.0, self.p90_ns),
                   (95.0, self.p95_ns), (99.0, self.p99_ns),
                   (100.0, self.max_ns)]
        if q <= 50.0:
            return self.p50_ns
        for (q0, v0), (q1, v1) in zip(anchors, anchors[1:]):
            if q <= q1:
                frac = (q - q0) / (q1 - q0)
                return v0 + frac * (v1 - v0)
        return self.max_ns

    def normalized_to(self, sla_ns: int) -> Dict[str, float]:
        """Percentiles as fractions of the SLA (the paper's presentation)."""
        if sla_ns <= 0:
            raise ValueError("SLA must be positive")
        return {
            "p50": self.p50_ns / sla_ns,
            "p90": self.p90_ns / sla_ns,
            "p95": self.p95_ns / sla_ns,
            "p99": self.p99_ns / sla_ns,
        }

    def meets_sla(self, sla_ns: int) -> bool:
        """SLA check on the 95th percentile (the paper's criterion)."""
        return self.count > 0 and self.p95_ns <= sla_ns
