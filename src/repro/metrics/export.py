"""Trace export: dump recorded channels to CSV for external plotting.

The benchmark suite prints sparkline reports, but anyone regenerating the
paper's figures in a plotting tool needs the raw series.  These helpers
write event channels (step functions) and counter channels (binned rates)
to plain CSV files.
"""

from __future__ import annotations

import csv
import os
from typing import Iterable, List, Optional, Sequence

from repro.sim.trace import TraceRecorder


def export_event_channel(
    trace: TraceRecorder, channel: str, path: str
) -> int:
    """Write one event channel as ``time_ns,value`` rows; returns row count."""
    ch = trace.event_channel(channel)
    _ensure_dir(path)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time_ns", "value"])
        for t, v in zip(ch.times, ch.values):
            writer.writerow([t, v])
    return len(ch.times)


def export_counter_channel(
    trace: TraceRecorder,
    channel: str,
    path: str,
    start_ns: int,
    end_ns: int,
    bin_ns: int,
) -> int:
    """Write a counter channel as per-bin ``bin_start_ns,amount`` rows."""
    ch = trace.counter_channel(channel)
    bins = ch.binned(start_ns, end_ns, bin_ns)
    _ensure_dir(path)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["bin_start_ns", "amount"])
        for i, amount in enumerate(bins):
            writer.writerow([start_ns + i * bin_ns, amount])
    return len(bins)


def export_figure4_bundle(
    trace: TraceRecorder,
    directory: str,
    start_ns: int,
    end_ns: int,
    bin_ns: int,
    node: str = "server",
    core_ids: Sequence[int] = (0, 1, 2, 3),
) -> List[str]:
    """Export everything a Figure 4 plot needs; returns written paths."""
    paths = []
    for channel, kind in (
        (f"{node}.rx_bytes", "counter"),
        (f"{node}.tx_bytes", "counter"),
        (f"{node}.cpu.util", "event"),
        (f"{node}.cpu.freq_ghz", "event"),
    ):
        path = os.path.join(directory, channel.replace(".", "_") + ".csv")
        if kind == "counter":
            export_counter_channel(trace, channel, path, start_ns, end_ns, bin_ns)
        else:
            export_event_channel(trace, channel, path)
        paths.append(path)
    for core_id in core_ids:
        channel = f"{node}.core{core_id}.cstate"
        if trace.has_channel(channel):
            path = os.path.join(directory, channel.replace(".", "_") + ".csv")
            export_event_channel(trace, channel, path)
            paths.append(path)
    return paths


def _ensure_dir(path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
