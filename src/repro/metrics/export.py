"""Trace and result export: dump recorded data for external tooling.

The benchmark suite prints sparkline reports, but anyone regenerating the
paper's figures in a plotting tool needs the raw series.  These helpers
write event channels (step functions) and counter channels (binned rates)
to plain CSV files, and round-trip harness :class:`ResultRecord` lists
through JSON (``export_result_records`` / ``load_result_records``).
"""

from __future__ import annotations

import csv
import json
import os
from typing import TYPE_CHECKING, Iterable, List, Sequence

from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.record import ResultRecord


def export_event_channel(
    trace: TraceRecorder, channel: str, path: str
) -> int:
    """Write one event channel as ``time_ns,value`` rows; returns row count."""
    ch = trace.event_channel(channel)
    _ensure_dir(path)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time_ns", "value"])
        for t, v in zip(ch.times, ch.values):
            writer.writerow([t, v])
    return len(ch.times)


def export_counter_channel(
    trace: TraceRecorder,
    channel: str,
    path: str,
    start_ns: int,
    end_ns: int,
    bin_ns: int,
) -> int:
    """Write a counter channel as per-bin ``bin_start_ns,amount`` rows."""
    ch = trace.counter_channel(channel)
    bins = ch.binned(start_ns, end_ns, bin_ns)
    _ensure_dir(path)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["bin_start_ns", "amount"])
        for i, amount in enumerate(bins):
            writer.writerow([start_ns + i * bin_ns, amount])
    return len(bins)


def export_figure4_bundle(
    trace: TraceRecorder,
    directory: str,
    start_ns: int,
    end_ns: int,
    bin_ns: int,
    node: str = "server",
    core_ids: Sequence[int] = (0, 1, 2, 3),
) -> List[str]:
    """Export everything a Figure 4 plot needs; returns written paths."""
    paths = []
    for channel, kind in (
        (f"{node}.rx_bytes", "counter"),
        (f"{node}.tx_bytes", "counter"),
        (f"{node}.cpu.util", "event"),
        (f"{node}.cpu.freq_ghz", "event"),
    ):
        path = os.path.join(directory, channel.replace(".", "_") + ".csv")
        if kind == "counter":
            export_counter_channel(trace, channel, path, start_ns, end_ns, bin_ns)
        else:
            export_event_channel(trace, channel, path)
        paths.append(path)
    for core_id in core_ids:
        channel = f"{node}.core{core_id}.cstate"
        if trace.has_channel(channel):
            path = os.path.join(directory, channel.replace(".", "_") + ".csv")
            export_event_channel(trace, channel, path)
            paths.append(path)
    return paths


def export_chrome_trace(sink, path: str) -> int:
    """Write a :class:`repro.telemetry.ChromeTraceSink` as Chrome-trace JSON.

    The output loads directly in Perfetto / ``chrome://tracing``.  Returns
    the number of trace events written.
    """
    _ensure_dir(path)
    return sink.write(path)


def export_result_records(
    records: Iterable["ResultRecord"], path: str
) -> str:
    """Write harness result records as a JSON array; returns ``path``.

    The file is self-describing (each record carries its schema version)
    and reloadable with :func:`load_result_records`.
    """
    _ensure_dir(path)
    payload = [record.to_json_dict() for record in records]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def load_result_records(path: str) -> List["ResultRecord"]:
    """Read a JSON array written by :func:`export_result_records`."""
    from repro.harness.record import ResultRecord

    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, list):
        raise ValueError(f"{path}: expected a JSON array of result records")
    return [ResultRecord.from_json_dict(entry) for entry in payload]


def _ensure_dir(path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
