"""Time-series sampling helpers for Figure 4 / 8 / 9 style traces.

:class:`UtilizationSampler` is deprecated: it survives as a thin wrapper
over the flight recorder
(:class:`~repro.telemetry.recorder.TimeSeriesRecorder`), which samples
the same utilization bins through
:func:`repro.cluster.recording.utilization_source` — plus everything
else — with bounded memory and idempotent start/stop.  The wrapper also
fixes the old double-schedule bug: ``stop()`` used to leave its queued
sampling callback alive, so ``start()`` before that callback fired
stacked a second sampling chain on top of the first.
"""

from __future__ import annotations

import warnings
from typing import List, Sequence, Tuple

from repro.cpu.package import ClockDomain
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder
from repro.sim.units import MS


class UtilizationSampler:
    """Deprecated: use a :class:`~repro.telemetry.recorder.TimeSeriesRecorder`
    (see :func:`repro.cluster.recording.build_server_recorder`).

    Periodically samples mean core utilization into a trace channel.
    Pure instrumentation: sampling costs no simulated CPU time.  Kept as
    a compatibility shim over the recorder; bins are bit-identical with
    the original implementation.
    """

    def __init__(
        self,
        sim: Simulator,
        package: ClockDomain,
        trace: TraceRecorder,
        bin_ns: int = 1 * MS,
        channel: str = "cpu.util",
    ):
        warnings.warn(
            "UtilizationSampler is deprecated; use TimeSeriesRecorder "
            "(repro.cluster.recording.build_server_recorder) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.cluster.recording import utilization_source
        from repro.telemetry.recorder import TimeSeriesRecorder

        self.bin_ns = bin_ns
        self._package = package
        self._source_state = utilization_source(package, bin_ns)
        self._recorder = TimeSeriesRecorder(sim, interval_ns=bin_ns)
        self._recorder.add_source(
            "cpu.util",
            self._source_state,
            tap=trace.event_channel(channel).record,
        )

    def start(self) -> None:
        """Idempotent; re-snapshots the busy baseline like the original."""
        if not self._recorder.running:
            self._source_state.reset()
        self._recorder.start()

    def stop(self) -> None:
        self._recorder.stop()


def bandwidth_series_mbps(
    trace: TraceRecorder,
    channel: str,
    start_ns: int,
    end_ns: int,
    bin_ns: int = 1 * MS,
) -> List[Tuple[int, float]]:
    """Per-bin bandwidth (Mb/s) from a byte-counter channel."""
    counter = trace.counter_channel(channel)
    return [
        (t, rate_bytes_per_s * 8 / 1e6)
        for t, rate_bytes_per_s in counter.rate_series(start_ns, end_ns, bin_ns)
    ]


def normalized_series(
    series: Sequence[Tuple[int, float]]
) -> List[Tuple[int, float]]:
    """Normalize a series to its own maximum (the paper's BW plots)."""
    peak = max((v for _, v in series), default=0.0)
    if peak <= 0:
        return [(t, 0.0) for t, _ in series]
    return [(t, v / peak) for t, v in series]
