"""Time-series sampling helpers for Figure 4 / 8 / 9 style traces."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.cpu.package import ClockDomain
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder
from repro.sim.units import MS


class UtilizationSampler:
    """Periodically samples mean core utilization into a trace channel.

    Pure instrumentation: sampling costs no simulated CPU time.
    """

    def __init__(
        self,
        sim: Simulator,
        package: ClockDomain,
        trace: TraceRecorder,
        bin_ns: int = 1 * MS,
        channel: str = "cpu.util",
    ):
        self._sim = sim
        self._package = package
        self._channel = trace.event_channel(channel)
        self.bin_ns = bin_ns
        self._last_busy = package.busy_ns_per_core()
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._last_busy = self._package.busy_ns_per_core()
        self._sim.schedule(self.bin_ns, self._sample)

    def stop(self) -> None:
        self._running = False

    def _sample(self) -> None:
        if not self._running:
            return
        busy = self._package.busy_ns_per_core()
        deltas = [b - last for b, last in zip(busy, self._last_busy)]
        self._last_busy = busy
        mean_util = sum(deltas) / (len(deltas) * self.bin_ns)
        self._channel.record(self._sim.now, min(1.0, mean_util))
        self._sim.schedule(self.bin_ns, self._sample)


def bandwidth_series_mbps(
    trace: TraceRecorder,
    channel: str,
    start_ns: int,
    end_ns: int,
    bin_ns: int = 1 * MS,
) -> List[Tuple[int, float]]:
    """Per-bin bandwidth (Mb/s) from a byte-counter channel."""
    counter = trace.counter_channel(channel)
    return [
        (t, rate_bytes_per_s * 8 / 1e6)
        for t, rate_bytes_per_s in counter.rate_series(start_ns, end_ns, bin_ns)
    ]


def normalized_series(
    series: Sequence[Tuple[int, float]]
) -> List[Tuple[int, float]]:
    """Normalize a series to its own maximum (the paper's BW plots)."""
    peak = max((v for _, v in series), default=0.0)
    if peak <= 0:
        return [(t, 0.0) for t, _ in series]
    return [(t, v / peak) for t, v in series]
