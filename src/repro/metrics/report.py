"""Plain-text rendering of experiment results (tables and sparklines).

The benchmark harness is headless; these helpers print the same rows and
series the paper's tables and figures report, so a run's output can be
compared against the paper by eye (and recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


_SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A unicode sparkline of a series, resampled to ``width`` columns."""
    if not values:
        return ""
    values = list(values)
    if len(values) > width:
        stride = len(values) / width
        values = [
            max(values[int(i * stride): max(int(i * stride) + 1, int((i + 1) * stride))])
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK_CHARS[1] * len(values)
    out = []
    for v in values:
        idx = 1 + round((v - lo) / span * (len(_SPARK_CHARS) - 2))
        out.append(_SPARK_CHARS[idx])
    return "".join(out)


def format_series(
    name: str, series: Sequence[Tuple[int, float]], width: int = 60
) -> str:
    """Label + sparkline + range annotation for a (time, value) series."""
    values = [v for _, v in series]
    if not values:
        return f"{name}: (empty)"
    return (
        f"{name:>12}: {sparkline(values, width)}  "
        f"[min={min(values):.3g}, max={max(values):.3g}]"
    )
