"""Apache model: an I/O-intensive HTTP server.

Section 6 of the paper: "Apache is an I/O-intensive database application
that frequently retrieves a large amount of data from a storage device",
with a mean response time of ~1.7 ms — an order of magnitude above
Memcached — and responses well beyond one MTU (multi-segment trains that
feed NCAP's TxBytesCounter).

The model: moderate parse/process cycles, a disk phase (page-cache hits
are nearly free; misses pay an exponential disk latency), and a lognormal
response-size distribution around ~12 kB.  Costs are calibrated so a
4-core 3.1 GHz server saturates near the paper's 68 K RPS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import ServerApp
from repro.net.packet import Frame
from repro.sim.units import US


@dataclass(frozen=True)
class ApacheProfile:
    """Tunable cost/shape parameters of the Apache model."""

    service_cycles: float = 60_000.0
    response_base_cycles: float = 12_000.0
    response_cycles_per_kb: float = 1_200.0
    cache_hit_ratio: float = 0.70
    cache_hit_latency_ns: int = 25 * US
    disk_latency_mean_ns: int = 800 * US
    response_size_median_bytes: int = 11_000
    response_size_sigma: float = 0.55
    response_size_min: int = 1_000
    response_size_max: int = 64_000


class ApacheApp(ServerApp):
    """The Apache-like OLDI server."""

    def __init__(self, *args, profile: ApacheProfile = ApacheProfile(), **kwargs):
        super().__init__(*args, **kwargs)
        self.profile = profile
        self.cache_hits = 0
        self.cache_misses = 0

    def service_cycles(self, frame: Frame) -> float:
        return self.profile.service_cycles

    def io_latency_ns(self, frame: Frame) -> int:
        p = self.profile
        if self._rng.random() < p.cache_hit_ratio:
            self.cache_hits += 1
            return p.cache_hit_latency_ns
        self.cache_misses += 1
        return round(self._rng.expovariate(1.0 / p.disk_latency_mean_ns))

    def response_bytes(self, frame: Frame) -> int:
        p = self.profile
        size = round(self._rng.lognormvariate(0.0, p.response_size_sigma) * p.response_size_median_bytes)
        return max(p.response_size_min, min(p.response_size_max, size))

    def response_cycles(self, frame: Frame, response_bytes: int) -> float:
        p = self.profile
        return p.response_base_cycles + p.response_cycles_per_kb * response_bytes / 1000.0
