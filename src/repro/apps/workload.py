"""Load-level presets (Section 6 of the paper).

The paper evaluates three load levels per application:

- Apache:    low = 24 K, medium = 45 K, high = 66 K RPS
  (maximum sustained ~68 K RPS; SLA = 41 ms, the 95th-percentile latency
  of the ``perf`` policy at the latency-load curve's inflexion point);
- Memcached: low = 35 K, medium = 127 K, high = 138 K RPS
  (maximum sustained ~143 K RPS; SLA = 3 ms).

Load is spread over ``n_clients`` open-loop clients, each emitting bursts:
``burst_period = n_clients * burst_size / target_rps``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.units import MS

try:  # numpy is optional: the list fallback is bit-identical, just slower
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the base image
    _np = None

#: Below this burst size the numpy round-trip costs more than it saves.
_VECTORIZE_MIN_BURST = 32


@dataclass(frozen=True)
class LoadLevel:
    """One (application, load) evaluation point."""

    app: str               # "apache" | "memcached"
    name: str              # "low" | "medium" | "high"
    target_rps: float
    sla_ns: int


#: SLAs the paper measured at the inflexion point of its latency-load
#: curves (Section 6): 41 ms for Apache, 3 ms for Memcached.
PAPER_APACHE_SLA_NS = 41 * MS
PAPER_MEMCACHED_SLA_NS = 3 * MS

#: SLAs of this reproduction, derived with the same methodology on our
#: substrate (95th-percentile latency of the ``perf`` policy at the
#: latency-load inflexion — see benchmarks/bench_fig7_latency_load.py).
#: Our Memcached knee lands at ~143 K RPS with p95 ~3 ms, matching the
#: paper; our Apache knee is at ~68 K RPS with p95 ~16-21 ms, so the
#: reproduction SLA is 18 ms (the paper's testbed measured 41 ms there).
APACHE_SLA_NS = 18 * MS
MEMCACHED_SLA_NS = 3 * MS

#: Per-client burst sizes.  The paper quotes "e.g., 200 requests per burst";
#: Memcached uses a smaller burst so that one aggregated burst drains well
#: inside its 3 ms SLA through the single-queue NIC rx path (with 200 the
#: rx SoftIRQ serialization alone would exceed the SLA at *any* load, which
#: contradicts the paper's latency-load curve).
DEFAULT_BURST_SIZE = {"apache": 200, "memcached": 75}

LOAD_LEVELS: Dict[str, Dict[str, LoadLevel]] = {
    "apache": {
        "low": LoadLevel("apache", "low", 24_000, APACHE_SLA_NS),
        "medium": LoadLevel("apache", "medium", 45_000, APACHE_SLA_NS),
        "high": LoadLevel("apache", "high", 66_000, APACHE_SLA_NS),
    },
    "memcached": {
        "low": LoadLevel("memcached", "low", 35_000, MEMCACHED_SLA_NS),
        "medium": LoadLevel("memcached", "medium", 127_000, MEMCACHED_SLA_NS),
        "high": LoadLevel("memcached", "high", 138_000, MEMCACHED_SLA_NS),
    },
}


def load_level(app: str, name: str) -> LoadLevel:
    """Look up a preset load level."""
    try:
        return LOAD_LEVELS[app][name]
    except KeyError:
        raise KeyError(f"unknown load level {app!r}/{name!r}") from None


def burst_period_ns(target_rps: float, n_clients: int, burst_size: int) -> int:
    """Burst period giving ``target_rps`` aggregate across the clients."""
    if target_rps <= 0:
        raise ValueError("target_rps must be positive")
    if n_clients < 1 or burst_size < 1:
        raise ValueError("n_clients and burst_size must be at least 1")
    return max(1, round(n_clients * burst_size / target_rps * 1e9))


def burst_arrival_times(now_ns: int, burst_size: int, gap_ns: int) -> List[int]:
    """Arrival timestamps for one burst: ``now + i*gap`` for each request.

    Materialized in a single numpy op for real burst sizes (the paper's
    clients emit ~200 requests per burst) and fed to the kernel's bulk
    ``schedule_many`` entrypoint; the list-comprehension fallback is
    bit-identical.  Timestamps are plain Python ints either way.
    """
    if burst_size < 1:
        raise ValueError("burst_size must be at least 1")
    if _np is not None and burst_size >= _VECTORIZE_MIN_BURST:
        return (
            now_ns + gap_ns * _np.arange(burst_size, dtype=_np.int64)
        ).tolist()
    return [now_ns + i * gap_ns for i in range(burst_size)]


def generate_load_shares(profile: str, n_servers: int) -> Tuple[float, ...]:
    """Generate a normalized per-server load-share vector.

    Hand-written share tuples do not scale past a handful of servers, so
    datacenter-sized configs name a profile instead:

    - ``"uniform"`` — every server gets ``1/n``;
    - ``"zipf:<s>"`` — server ``i`` (0-based) gets weight ``1/(i+1)**s``,
      the skewed rank-frequency shape of the paper's Section 7 load
      imbalance argument (``s > 0``; larger ``s`` = more skew).

    The result always sums to 1.0 (up to float rounding) and every share
    is strictly positive.
    """
    if n_servers < 1:
        raise ValueError("n_servers must be at least 1")
    if profile == "uniform":
        weights = [1.0] * n_servers
    elif profile.startswith("zipf:"):
        try:
            s = float(profile.split(":", 1)[1])
        except ValueError:
            raise ValueError(
                f"bad zipf exponent in load-share profile {profile!r}"
            ) from None
        if s <= 0:
            raise ValueError("zipf exponent must be positive")
        weights = [1.0 / (i + 1) ** s for i in range(n_servers)]
    else:
        raise ValueError(
            f"unknown load-share profile {profile!r}; "
            "expected 'uniform' or 'zipf:<s>'"
        )
    total = sum(weights)
    return tuple(w / total for w in weights)


def default_burst_size(app: str) -> int:
    """The per-client burst size used for ``app`` unless overridden."""
    try:
        return DEFAULT_BURST_SIZE[app]
    except KeyError:
        raise KeyError(app) from None


def sla_for(app: str) -> int:
    """The application's SLA in nanoseconds."""
    if app == "apache":
        return APACHE_SLA_NS
    if app == "memcached":
        return MEMCACHED_SLA_NS
    raise KeyError(app)
