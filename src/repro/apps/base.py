"""Server application base: a request's life after the socket.

A request delivered by the NIC driver becomes a three-phase pipeline, the
shape both OLDI applications in the paper share:

1. **service phase** — CPU cycles to parse and process the request
   (frequency-sensitive: time = cycles / F);
2. **I/O phase** — optional off-CPU latency (disk for Apache; absent for
   Memcached) during which the core is free — this is why Apache's latency
   is less sensitive to F than Memcached's (Section 6);
3. **response phase** — CPU cycles to build the response *plus* the kernel
   transmit cost for its segments, after which the message is handed to
   the NIC.

Subclasses define the per-request costs and the response-size distribution.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.cpu.core import ExecAccount, Job
from repro.net.driver import NICDriver
from repro.net.packet import Frame, make_response, segments_for
from repro.oskernel.netstack import NetStackCosts
from repro.oskernel.scheduler import Scheduler
from repro.sim.kernel import Simulator
from repro.telemetry import (
    RequestAccounting,
    RequestPhase,
    Telemetry,
    ensure_telemetry,
)


class _RequestTrack:
    """Per-request accounting state, live only while the request is open.

    Allocated per request *only* when the ``request.account`` probe has a
    subscriber; carries the two job accounts plus the pipeline timestamps
    the jobs themselves cannot observe.
    """

    __slots__ = ("svc_enqueue_ns", "svc", "svc_done_ns", "resp_enqueue_ns", "resp")

    def __init__(self, svc_enqueue_ns: int):
        self.svc_enqueue_ns = svc_enqueue_ns
        self.svc = ExecAccount()
        self.svc_done_ns = 0
        self.resp_enqueue_ns = 0
        self.resp = ExecAccount()


class ServerApp:
    """Base OLDI server application."""

    def __init__(
        self,
        sim: Simulator,
        scheduler: Scheduler,
        driver: NICDriver,
        costs: NetStackCosts,
        rng: random.Random,
        name: str = "server",
        telemetry: Optional[Telemetry] = None,
        stats_prefix: str = "app",
    ):
        self._sim = sim
        self._scheduler = scheduler
        self._driver = driver
        self._costs = costs
        self._rng = rng
        self.name = name
        if telemetry is None and driver is not None:
            telemetry = driver.telemetry
        self.telemetry = ensure_telemetry(telemetry)
        stats = self.telemetry.scope(stats_prefix)
        self._requests = stats.counter("requests")
        self._responses = stats.counter("responses")
        self._ignored = stats.counter("ignored")
        self._span_probe = self.telemetry.probe("request.span")
        self._account_probe = self.telemetry.probe("request.account")
        #: Optional core affinity for the *next* request's jobs.  The
        #: per-core (multi-queue) node sets this around each delivery so a
        #: flow's processing stays on its RSS queue's core (RFS-style).
        self.affinity_hint: Optional[int] = None
        #: Called with each request's server-observed latency (ns from the
        #: client send timestamp to the response hitting the NIC) — the
        #: feed Pegasus-style slack controllers consume.
        self.latency_listeners: list = []

    # -- bookkeeping (registry-backed) -------------------------------------

    @property
    def requests_received(self) -> int:
        return int(self._requests.value)

    @property
    def responses_sent(self) -> int:
        return int(self._responses.value)

    @property
    def non_requests_ignored(self) -> int:
        return int(self._ignored.value)

    # -- workload shape (override in subclasses) ---------------------------

    def service_cycles(self, frame: Frame) -> float:
        """CPU cycles for phase 1 (parse + process)."""
        raise NotImplementedError

    def io_latency_ns(self, frame: Frame) -> int:
        """Off-CPU latency for phase 2 (0 = no I/O phase)."""
        raise NotImplementedError

    def response_bytes(self, frame: Frame) -> int:
        """Response payload size."""
        raise NotImplementedError

    def response_cycles(self, frame: Frame, response_bytes: int) -> float:
        """CPU cycles for phase 3, excluding kernel transmit cost."""
        raise NotImplementedError

    # -- request pipeline -----------------------------------------------------

    def on_packet(self, frame: Frame) -> None:
        """Socket delivery point — wire as ``NICDriver.packet_sink``."""
        if frame.kind != "request":
            self._ignored.inc()
            return
        self._requests.inc()
        hint = self.affinity_hint
        if self._span_probe.enabled:
            self._span_probe.emit(
                RequestPhase(self._sim.now, frame.src, frame.req_id, "service", hint)
            )
        track = _RequestTrack(self._sim.now) if self._account_probe.enabled else None
        job = Job(
            self.service_cycles(frame),
            on_complete=lambda: self._after_service(frame, hint, track),
            name="service",
        )
        if track is not None:
            job.account = track.svc
        self._scheduler.enqueue(job, core_hint=hint)

    def _after_service(
        self, frame: Frame, hint: Optional[int], track: Optional[_RequestTrack]
    ) -> None:
        if track is not None:
            track.svc_done_ns = self._sim.now
        io_ns = self.io_latency_ns(frame)
        if io_ns > 0:
            self._sim.schedule(io_ns, self._after_io, frame, hint, track)
        else:
            self._after_io(frame, hint, track)

    def _after_io(
        self, frame: Frame, hint: Optional[int], track: Optional[_RequestTrack]
    ) -> None:
        size = self.response_bytes(frame)
        cycles = self.response_cycles(frame, size)
        cycles += self._costs.tx_message_cycles(segments_for(size))
        job = Job(
            cycles,
            on_complete=lambda: self._send_response(frame, size, track),
            name="response",
        )
        if track is not None:
            track.resp_enqueue_ns = self._sim.now
            job.account = track.resp
        self._scheduler.enqueue(job, core_hint=hint)

    def _send_response(
        self, frame: Frame, size: int, track: Optional[_RequestTrack]
    ) -> None:
        self._responses.inc()
        if self._span_probe.enabled:
            self._span_probe.emit(
                RequestPhase(
                    self._sim.now, frame.src, frame.req_id, "reply",
                    track.svc.first_core if track is not None else None,
                )
            )
        if track is not None and self._account_probe.enabled:
            now = self._sim.now
            self._account_probe.emit(
                RequestAccounting(
                    t_ns=now,
                    src=frame.src,
                    req_id=frame.req_id,
                    core=track.svc.first_core,
                    resp_core=track.resp.first_core,
                    svc_enqueue_ns=track.svc_enqueue_ns,
                    svc_start_ns=track.svc.first_start_ns or 0,
                    svc_done_ns=track.svc_done_ns,
                    resp_enqueue_ns=track.resp_enqueue_ns,
                    resp_start_ns=track.resp.first_start_ns or 0,
                    cpu_ns=track.svc.cpu_ns + track.resp.cpu_ns,
                    cycles=track.svc.cycles + track.resp.cycles,
                    stall_ns=track.svc.stall_ns + track.resp.stall_ns,
                )
            )
        for listener in self.latency_listeners:
            listener(self._sim.now - frame.created_ns)
        self._driver.transmit(
            make_response(
                self.name,
                frame.src,
                payload_bytes=size,
                req_id=frame.req_id,
                created_ns=self._sim.now,
            )
        )
