"""Time-varying load patterns.

The paper's Section 3 stresses that "the rate of network packets is
inherently unpredictable ... it can suddenly increase and decrease after
it stays at a low level for a long period".  These patterns generate that
behaviour at experiment scale: a step change, a diurnal (sinusoidal)
swing, and a flash-crowd spike.  :class:`VariableRateClient` re-times its
bursts against the pattern so the aggregate offered load follows it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from repro.apps.client import OpenLoopClient


class LoadPattern(Protocol):
    """Offered load as a function of simulated time."""

    def rps_at(self, t_ns: int) -> float:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class ConstantPattern:
    rps: float

    def rps_at(self, t_ns: int) -> float:
        return self.rps


@dataclass(frozen=True)
class StepPattern:
    """Low load, then a sudden sustained jump at ``step_at_ns``."""

    rps_before: float
    rps_after: float
    step_at_ns: int

    def rps_at(self, t_ns: int) -> float:
        return self.rps_after if t_ns >= self.step_at_ns else self.rps_before


@dataclass(frozen=True)
class DiurnalPattern:
    """A day compressed into ``period_ns``: sinusoid between base and peak."""

    base_rps: float
    peak_rps: float
    period_ns: int
    phase: float = 0.0

    def rps_at(self, t_ns: int) -> float:
        mid = (self.base_rps + self.peak_rps) / 2
        amp = (self.peak_rps - self.base_rps) / 2
        return mid + amp * math.sin(2 * math.pi * t_ns / self.period_ns + self.phase)


@dataclass(frozen=True)
class SpikePattern:
    """A flash crowd: base load with a rectangular spike."""

    base_rps: float
    spike_rps: float
    spike_start_ns: int
    spike_len_ns: int

    def rps_at(self, t_ns: int) -> float:
        if self.spike_start_ns <= t_ns < self.spike_start_ns + self.spike_len_ns:
            return self.spike_rps
        return self.base_rps


class VariableRateClient(OpenLoopClient):
    """An open-loop burst client whose period tracks a load pattern.

    ``share`` is this client's fraction of the pattern's aggregate load
    (1/n_clients in the usual symmetric setup).
    """

    def __init__(self, *args, pattern: LoadPattern, share: float = 1.0, **kwargs):
        super().__init__(*args, **kwargs)
        if share <= 0:
            raise ValueError("share must be positive")
        self.pattern = pattern
        self.share = share

    def _emit_burst(self) -> None:
        if not self._running:
            return
        rps = max(1.0, self.pattern.rps_at(self._sim.now) * self.share)
        self.burst_period_ns = max(1, round(self.burst_size / rps * 1e9))
        super()._emit_burst()
