"""Open-loop bursty clients (Section 5 of the paper).

The paper modifies the Apache and Memcached clients to be **open-loop**:
requests are emitted on a schedule, never gated on responses, avoiding the
client-side queueing bias and inter-burst dependencies that Treadmill
identifies as evaluation pitfalls.  Each client periodically emits a burst
of requests (e.g. 200 per burst), with the period set by the target load.

Clients are deliberately lightweight network endpoints (no CPU/power
model): the paper instruments them only for request round-trip times.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, List, Optional, Tuple

from repro.apps.workload import burst_arrival_times
from repro.net.link import LinkPort
from repro.net.packet import Frame, make_http_request, make_memcached_request
from repro.sim.kernel import Event, Simulator

_req_ids = itertools.count(1)


def reset_request_ids(start: int = 1) -> None:
    """Restart the process-global request-id counter.

    Request ids are globally unique so traces from concurrent nodes never
    collide, which means they depend on how many requests the process has
    already created.  Tools that need bit-identical output across runs
    (golden-trace tests, ``repro trace``) reset the counter first.
    """
    global _req_ids
    _req_ids = itertools.count(start)


def http_request_factory(client: str, server: str) -> Callable[[int], Frame]:
    """Factory producing HTTP GETs (the Apache workload)."""

    def make(created_ns: int) -> Frame:
        return make_http_request(
            client, server, method="GET", req_id=next(_req_ids), created_ns=created_ns
        )

    return make


def memcached_request_factory(
    client: str, server: str, rng: Optional[random.Random] = None, keyspace: int = 100_000
) -> Callable[[int], Frame]:
    """Factory producing Memcached gets over a keyspace."""
    rng = rng or random.Random(0)

    def make(created_ns: int) -> Frame:
        key = f"key:{rng.randrange(keyspace)}"
        return make_memcached_request(
            client, server, command="get", key=key,
            req_id=next(_req_ids), created_ns=created_ns,
        )

    return make


class OpenLoopClient:
    """A bursty open-loop traffic source and RTT recorder."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        request_factory: Callable[[int], Frame],
        burst_size: int = 100,
        burst_period_ns: int = 10_000_000,
        intra_burst_gap_ns: int = 1_000,
        jitter_rng: Optional[random.Random] = None,
        jitter_fraction: float = 0.0,
        retain_rtts: bool = True,
        measure_window: Optional[Tuple[int, int]] = None,
    ):
        if burst_size < 1:
            raise ValueError("burst_size must be at least 1")
        if burst_period_ns <= 0:
            raise ValueError("burst_period_ns must be positive")
        self._sim = sim
        self.name = name
        self._factory = request_factory
        self.burst_size = burst_size
        self.burst_period_ns = burst_period_ns
        self.intra_burst_gap_ns = intra_burst_gap_ns
        self._jitter_rng = jitter_rng
        self.jitter_fraction = jitter_fraction
        self._port: Optional[LinkPort] = None
        self._running = False
        self._burst_event: Optional[Event] = None

        #: With ``retain_rtts=False`` the per-sample ``rtts`` list stays
        #: empty (O(1) memory for arbitrarily long runs); consumers must
        #: aggregate via ``rtt_listeners`` (e.g. into a streaming sketch)
        #: and window counts come from ``measure_window``.
        self.retain_rtts = retain_rtts
        self.measure_window = measure_window
        self.sent: dict = {}                 # req_id -> send time
        self.rtts: List[Tuple[int, int]] = []  # (send time, rtt)
        #: Called as ``listener(req_id, send_ns, rtt_ns)`` on each response.
        self.rtt_listeners: List[Callable[[int, int, int], None]] = []
        self.requests_sent = 0
        self.responses_received = 0
        self._window_completed = 0

    # -- wiring -----------------------------------------------------------

    def attach_port(self, port: LinkPort) -> None:
        self._port = port

    def receive_frame(self, frame: Frame) -> None:
        """Link delivery point (we are a NetDevice)."""
        if frame.kind != "response" or frame.req_id is None:
            return
        send_ns = self.sent.pop(frame.req_id, None)
        if send_ns is None:
            return
        self.responses_received += 1
        rtt_ns = self._sim.now - send_ns
        if self.retain_rtts:
            self.rtts.append((send_ns, rtt_ns))
        window = self.measure_window
        if window is not None and window[0] <= send_ns < window[1]:
            self._window_completed += 1
        for listener in self.rtt_listeners:
            listener(frame.req_id, send_ns, rtt_ns)

    # -- traffic generation ---------------------------------------------------

    def start(self, initial_delay_ns: int = 0) -> None:
        if self._running:
            return
        self._running = True
        self._burst_event = self._sim.schedule(initial_delay_ns, self._emit_burst)

    def stop(self) -> None:
        self._running = False

    def _emit_burst(self) -> None:
        """Emit one burst and re-arm.

        The burst's arrival times are materialized in one vectorized
        call and handed to the kernel's bulk entrypoints: a zero-gap
        burst becomes a single same-timestamp batch entry, a spread
        burst one ``schedule_many`` call.  Sequence-number consumption
        is identical to the equivalent loop of ``schedule`` calls, so
        emission order (and request ids) are bit-identical to the
        scalar path.  The periodic re-arm reuses this burst's just-fired
        event via ``reschedule`` instead of allocating a fresh one.
        """
        if not self._running:
            return
        sim = self._sim
        size = self.burst_size
        if size == 1:
            sim.schedule(0, self._emit_one)
        elif self.intra_burst_gap_ns == 0:
            sim.schedule_batch(0, size, self._emit_one)
        else:
            sim.schedule_many(
                burst_arrival_times(sim.now, size, self.intra_burst_gap_ns),
                self._emit_one,
            )
        period = self.burst_period_ns
        if self._jitter_rng is not None and self.jitter_fraction > 0:
            spread = self.jitter_fraction * period
            period = max(1, round(period + self._jitter_rng.uniform(-spread, spread)))
        self._burst_event = sim.reschedule(self._burst_event, period)

    def _emit_one(self) -> None:
        if not self._running:
            return
        assert self._port is not None, "client has no attached link port"
        frame = self._factory(self._sim.now)
        self.sent[frame.req_id] = self._sim.now
        self.requests_sent += 1
        self._port.send(frame)

    # -- results ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return len(self.sent)

    def rtts_in_window(self, start_ns: int, end_ns: int) -> List[int]:
        """RTTs of requests *sent* within [start, end)."""
        if not self.retain_rtts:
            raise RuntimeError(
                "per-request RTTs were not retained (retain_rtts=False); "
                "aggregate via rtt_listeners instead"
            )
        return [rtt for send, rtt in self.rtts if start_ns <= send < end_ns]

    def sent_in_window(self, start_ns: int, end_ns: int) -> int:
        if not self.retain_rtts:
            if self.measure_window != (start_ns, end_ns):
                raise RuntimeError(
                    "sent_in_window without retained RTTs requires the "
                    "window fixed at construction (measure_window)"
                )
            pending = sum(
                1 for send in self.sent.values() if start_ns <= send < end_ns
            )
            return self._window_completed + pending
        completed = sum(1 for send, _ in self.rtts if start_ns <= send < end_ns)
        pending = sum(1 for send in self.sent.values() if start_ns <= send < end_ns)
        return completed + pending
