"""Memcached model: a RAM key-value store.

Section 6 of the paper: "Memcached is a key-value store application that
retrieves mostly small values from the main memory of the server", so its
response time tracks core frequency closely (no off-CPU phase to hide
behind), its mean response time is ~0.6 ms, and its maximum sustained load
is 2.1x Apache's (143 K vs 68 K RPS).

The model: small all-CPU service cost, no I/O phase, and an
Atikoglu-et-al.-style small-value size distribution (most values well
under one MTU, so responses are single packets).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import ServerApp
from repro.net.packet import Frame


@dataclass(frozen=True)
class MemcachedProfile:
    """Tunable cost/shape parameters of the Memcached model."""

    service_cycles: float = 55_000.0
    response_base_cycles: float = 9_000.0
    response_cycles_per_kb: float = 1_000.0
    value_size_median_bytes: int = 330
    value_size_sigma: float = 0.80
    value_size_min: int = 60
    value_size_max: int = 4_000


class MemcachedApp(ServerApp):
    """The Memcached-like OLDI server."""

    def __init__(self, *args, profile: MemcachedProfile = MemcachedProfile(), **kwargs):
        super().__init__(*args, **kwargs)
        self.profile = profile

    def service_cycles(self, frame: Frame) -> float:
        return self.profile.service_cycles

    def io_latency_ns(self, frame: Frame) -> int:
        return 0  # values come from main memory

    def response_bytes(self, frame: Frame) -> int:
        p = self.profile
        size = round(self._rng.lognormvariate(0.0, p.value_size_sigma) * p.value_size_median_bytes)
        return max(p.value_size_min, min(p.value_size_max, size))

    def response_cycles(self, frame: Frame, response_bytes: int) -> float:
        p = self.profile
        return p.response_base_cycles + p.response_cycles_per_kb * response_bytes / 1000.0
