"""Application substrate: OLDI server models and open-loop clients."""

from repro.apps.apache import ApacheApp, ApacheProfile
from repro.apps.base import ServerApp
from repro.apps.client import (
    OpenLoopClient,
    http_request_factory,
    memcached_request_factory,
)
from repro.apps.memcached import MemcachedApp, MemcachedProfile
from repro.apps.workload import (
    APACHE_SLA_NS,
    LOAD_LEVELS,
    MEMCACHED_SLA_NS,
    LoadLevel,
    burst_period_ns,
    load_level,
    sla_for,
)

__all__ = [
    "ApacheApp",
    "ApacheProfile",
    "ServerApp",
    "OpenLoopClient",
    "http_request_factory",
    "memcached_request_factory",
    "MemcachedApp",
    "MemcachedProfile",
    "APACHE_SLA_NS",
    "LOAD_LEVELS",
    "MEMCACHED_SLA_NS",
    "LoadLevel",
    "burst_period_ns",
    "load_level",
    "sla_for",
]
