"""ResultRecord JSON round-trips, in memory and through metrics.export."""

import pytest

from repro.harness import RECORD_SCHEMA_VERSION, ResultRecord
from repro.harness.runner import execute_spec
from repro.harness.spec import RunSpec
from repro.harness.settings import RunSettings
from repro.metrics.export import export_result_records, load_result_records
from repro.sim.units import MS

TINY = RunSettings(warmup_ns=5 * MS, measure_ns=40 * MS, drain_ns=30 * MS, seed=2)


@pytest.fixture(scope="module")
def record():
    return execute_spec(
        RunSpec(app="apache", policy="ncap.cons", target_rps=24_000, seed=2,
                settings=TINY)
    )


class TestJsonDict:
    def test_round_trip_equality(self, record):
        clone = ResultRecord.from_json_dict(record.to_json_dict())
        assert clone == record

    def test_from_cache_excluded_from_json_and_equality(self, record):
        data = record.to_json_dict()
        assert "from_cache" not in data
        assert data["schema"] == RECORD_SCHEMA_VERSION
        clone = ResultRecord.from_json_dict(data)
        clone.from_cache = True
        assert clone == record

    def test_schema_mismatch_rejected(self, record):
        data = record.to_json_dict()
        data["schema"] = RECORD_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            ResultRecord.from_json_dict(data)

    def test_unknown_field_rejected(self, record):
        data = record.to_json_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            ResultRecord.from_json_dict(data)


class TestSchemaV3:
    def test_plain_run_has_empty_attribution(self, record):
        assert record.attribution == {}
        assert record.to_json_dict()["attribution"] == {}

    def test_v2_payload_rejected(self, record):
        data = record.to_json_dict()
        data["schema"] = 2
        del data["attribution"]  # v2 records predate the field
        with pytest.raises(ValueError, match="schema 2"):
            ResultRecord.from_json_dict(data)

    def test_attributed_run_round_trips(self):
        from repro.analysis.attribution import AttributionSink
        from repro.cluster.simulation import ExperimentConfig, run_experiment
        from repro.harness.hashing import config_hash

        config = ExperimentConfig.from_settings(
            TINY, app="apache", policy="ond.idle", target_rps=24_000.0
        )
        result = run_experiment(config, sinks=[AttributionSink()])
        record = ResultRecord.from_result(
            result, config_hash=config_hash(config), seed=config.seed
        )
        assert record.attribution["count"] > 0
        assert "p99.wake_ramp_share" in record.attribution
        assert "mean.wake_ns" in record.attribution
        clone = ResultRecord.from_json_dict(record.to_json_dict())
        assert clone == record
        assert clone.attribution == record.attribution


class TestSchemaV4:
    def test_plain_run_has_empty_timeseries(self, record):
        assert record.timeseries == {}
        assert record.to_json_dict()["timeseries"] == {}
        assert record.timeseries_bundle() is None

    def test_v3_payload_rejected(self, record):
        data = record.to_json_dict()
        data["schema"] = 3
        del data["timeseries"]  # v3 records predate the field
        with pytest.raises(ValueError, match="schema 3"):
            ResultRecord.from_json_dict(data)

    def test_v3_cache_entry_invalidated_with_one_warning(
        self, record, tmp_path, caplog
    ):
        import json
        import logging

        from repro.harness.cache import ResultCache

        cache = ResultCache(str(tmp_path))
        path = cache.put(record)
        # Rewrite the entry as its v3 ancestor.
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        data["schema"] = 3
        del data["timeseries"]
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(data, fh)
        with caplog.at_level(logging.WARNING, logger="repro.harness.cache"):
            assert cache.get(record.config_hash) is None
            assert cache.get(record.config_hash) is None  # warn only once
        warnings = [r for r in caplog.records if "older record schemas" in r.message]
        assert len(warnings) == 1
        assert cache.misses == 2

    def test_recorded_run_round_trips(self):
        from repro.cluster.simulation import ExperimentConfig, run_experiment
        from repro.harness.hashing import config_hash

        config = ExperimentConfig.from_settings(
            TINY, app="apache", policy="ond.idle", target_rps=24_000.0
        )
        result = run_experiment(config, record_timeseries="coarse")
        record = ResultRecord.from_result(
            result, config_hash=config_hash(config), seed=config.seed
        )
        assert record.timeseries["interval_ns"] == 1 * MS
        clone = ResultRecord.from_json_dict(record.to_json_dict())
        assert clone == record
        bundle = clone.timeseries_bundle()
        assert bundle is not None
        assert "cpu.util" in bundle
        assert bundle.to_json_dict() == record.timeseries


class TestSchemaV5:
    def test_plain_run_has_empty_profile(self, record):
        assert record.profile == {}
        assert record.to_json_dict()["profile"] == {}
        assert record.loop_profile() is None

    def test_v4_payload_rejected(self, record):
        data = record.to_json_dict()
        data["schema"] = 4
        del data["profile"]  # v4 records predate the field
        with pytest.raises(ValueError, match="schema 4"):
            ResultRecord.from_json_dict(data)

    def test_profiled_run_round_trips(self):
        from repro.cluster.simulation import ExperimentConfig, run_experiment
        from repro.harness.hashing import config_hash

        config = ExperimentConfig.from_settings(
            TINY, app="apache", policy="ond.idle", target_rps=24_000.0
        )
        result = run_experiment(config, profile=True)
        record = ResultRecord.from_result(
            result, config_hash=config_hash(config), seed=config.seed
        )
        assert record.profile["events"] > 0
        assert record.profile["handlers"]
        clone = ResultRecord.from_json_dict(record.to_json_dict())
        assert clone == record
        profile = clone.loop_profile()
        assert profile is not None
        assert profile.events == record.profile["events"]
        assert profile.to_json_dict() == record.profile


class TestSchemaV6:
    def test_plain_run_has_empty_fleet(self, record):
        assert record.fleet == {}
        assert record.to_json_dict()["fleet"] == {}
        assert record.fleet_trace_bundle() is None

    def test_v5_payload_rejected(self, record):
        data = record.to_json_dict()
        data["schema"] = 5
        del data["fleet"]  # v5 records predate the field
        with pytest.raises(ValueError, match="schema 5"):
            ResultRecord.from_json_dict(data)

    def test_v5_cache_entry_invalidated_with_one_warning(
        self, record, tmp_path, caplog
    ):
        import json
        import logging

        from repro.harness.cache import ResultCache

        cache = ResultCache(str(tmp_path))
        path = cache.put(record)
        # Rewrite the entry as its v5 ancestor.
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        data["schema"] = 5
        del data["fleet"]
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(data, fh)
        with caplog.at_level(logging.WARNING, logger="repro.harness.cache"):
            assert cache.get(record.config_hash) is None
            assert cache.get(record.config_hash) is None  # warn only once
        warnings = [r for r in caplog.records if "older record schemas" in r.message]
        assert len(warnings) == 1
        assert cache.misses == 2

    def test_traced_fleet_run_round_trips(self):
        from repro.cluster.datacenter import DatacenterConfig, run_datacenter
        from repro.cluster.frontend import FrontendConfig

        config = DatacenterConfig(
            app="memcached",
            n_servers=2,
            n_shards=2,
            load_shares="uniform",
            total_rps=40_000.0,
            seed=7,
            warmup_ns=2 * MS,
            measure_ns=8 * MS,
            drain_ns=5 * MS,
            frontend=FrontendConfig(
                n_users=1_000, spray="po2", burst_size=40,
                intra_burst_gap_ns=1_000, dispatch_latency_ns=1 * MS,
            ),
        )
        result = run_datacenter(config, jobs=1, trace_requests=32)
        record = result.record
        assert record.fleet["trace"]["sampling"]["sample_every"] == 32
        assert record.fleet["trace"]["traces"]
        clone = ResultRecord.from_json_dict(record.to_json_dict())
        assert clone == record
        bundle = clone.fleet_trace_bundle()
        assert bundle is not None
        assert len(bundle) == len(record.fleet["trace"]["traces"])
        assert bundle.to_json_dict() == record.fleet["trace"]


class TestViews:
    def test_latency_and_energy_rebuild(self, record):
        assert record.latency.p95_ns == record.p95_ns
        assert record.latency.count == record.latency_count
        assert record.energy.energy_j == record.energy_j
        assert record.energy.residency_ns == record.residency_ns

    def test_normalized_latency_uses_sla(self, record):
        normalized = record.normalized_latency
        assert normalized["p95"] == pytest.approx(record.p95_ns / record.sla_ns)


class TestExportHelpers:
    def test_file_round_trip(self, record, tmp_path):
        path = str(tmp_path / "out" / "records.json")
        assert export_result_records([record, record], path) == path
        loaded = load_result_records(path)
        assert loaded == [record, record]

    def test_non_array_payload_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}", encoding="utf-8")
        with pytest.raises(ValueError, match="array"):
            load_result_records(str(path))
