"""BenchSuite runner, BENCH payload schema, and baseline gating."""

import copy
import json
import os

import pytest

from repro.harness.bench import (
    BENCH_SCHEMA_VERSION,
    BenchScenario,
    BenchSuite,
    ScenarioStats,
    baseline_path,
    compare_to_baseline,
    format_check_report,
    format_suite_report,
    load_bench_json,
    run_suite,
    validate_bench_payload,
    write_bench_json,
)
from repro.harness.suites import SUITES, get_suite
from repro.sim import Simulator


def _tiny_scenario(profiler):
    sim = Simulator()
    if profiler is not None:
        sim.set_profiler(profiler)
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < 500:
            sim.schedule(10, tick)

    sim.schedule(0, tick)
    sim.run()
    return ScenarioStats(
        events=sim.events_executed,
        sim_ns=sim.now,
        counters={"ticks": count[0]},
    )


TINY_SUITE = BenchSuite(
    name="tiny",
    description="synthetic",
    scenarios=(BenchScenario("tick_chain", _tiny_scenario, "500 events"),),
    repeats=3,
)


@pytest.fixture(scope="module")
def payload():
    return run_suite(TINY_SUITE)


class TestRunSuite:
    def test_payload_validates(self, payload):
        validate_bench_payload(payload)
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert payload["suite"] == "tiny"

    def test_scenario_metrics(self, payload):
        entry = payload["scenarios"]["tick_chain"]
        assert entry["events"] == 500
        assert entry["sim_ns"] == 4_990
        assert entry["counters"] == {"ticks": 500}
        wall = entry["wall_s"]
        assert len(wall["samples"]) == 3
        assert wall["min"] <= wall["median"]
        assert entry["events_per_sec"] > 0
        assert entry["peak_rss_bytes"] > 0

    def test_profiled_attribution_included(self, payload):
        entry = payload["scenarios"]["tick_chain"]
        assert entry["top_handlers"]
        top = entry["top_handlers"][0]
        assert top["calls"] == 500
        assert top["share"] > 0.5
        profile = entry["profile"]
        assert profile["attributed_wall_ns"] == pytest.approx(
            profile["loop_wall_ns"], rel=0.01
        )

    def test_no_profile_mode(self):
        payload = run_suite(TINY_SUITE, repeats=1, profile=False)
        entry = payload["scenarios"]["tick_chain"]
        assert entry["top_handlers"] == []
        assert entry["profile"] == {}

    def test_report_renders_from_payload(self, payload):
        text = format_suite_report(payload)
        assert "tick_chain" in text
        assert "top handlers" in text


class TestPayloadIO:
    def test_write_and_load_round_trip(self, payload, tmp_path):
        path = str(tmp_path / "BENCH_tiny.json")
        assert write_bench_json(payload, path) == path
        assert load_bench_json(path) == json.loads(json.dumps(payload))

    def test_invalid_payload_rejected(self, payload):
        bad = copy.deepcopy(payload)
        bad["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            validate_bench_payload(bad)
        bad = copy.deepcopy(payload)
        del bad["scenarios"]["tick_chain"]["wall_s"]
        with pytest.raises(ValueError, match="wall_s"):
            validate_bench_payload(bad)
        bad = copy.deepcopy(payload)
        bad["scenarios"]["tick_chain"]["wall_s"]["min"] = float("nan")
        with pytest.raises(ValueError, match="wall_s.min"):
            validate_bench_payload(bad)

    def test_baseline_path_layout(self):
        expected = os.path.join("benchmarks", "baselines", "micro.json")
        assert baseline_path("micro").endswith(expected)


def _slowed(payload, factor):
    slow = copy.deepcopy(payload)
    wall = slow["scenarios"]["tick_chain"]["wall_s"]
    wall["median"] *= factor
    wall["min"] *= factor
    wall["samples"] = [s * factor for s in wall["samples"]]
    return slow


class TestBaselineCheck:
    def test_unmodified_rerun_passes(self, payload):
        check = compare_to_baseline(payload, copy.deepcopy(payload))
        assert check.ok
        assert check.regressions == []

    def test_injected_20pct_slowdown_flagged(self, payload):
        check = compare_to_baseline(_slowed(payload, 1.20), payload)
        assert not check.ok
        assert any("wall_s.min" in r for r in check.regressions)
        assert "REGRESSION" in format_check_report(check)

    def test_slowdown_within_tolerance_passes(self, payload):
        assert compare_to_baseline(_slowed(payload, 1.10), payload).ok

    def test_improvement_noted_not_flagged(self, payload):
        check = compare_to_baseline(_slowed(payload, 0.5), payload)
        assert check.ok
        assert check.improvements

    def test_tolerance_scale_relaxes_gate(self, payload):
        assert compare_to_baseline(
            _slowed(payload, 1.25), payload, tolerance_scale=3.0
        ).ok

    def test_baseline_tolerance_override(self, payload):
        baseline = copy.deepcopy(payload)
        baseline["tolerances"] = {"wall_s.min": 0.50}
        assert compare_to_baseline(_slowed(payload, 1.25), baseline).ok
        baseline["tolerances"] = {"wall_s.min": 0.01}
        assert not compare_to_baseline(_slowed(payload, 1.05), baseline).ok

    def test_missing_scenario_is_regression(self, payload):
        candidate = copy.deepcopy(payload)
        candidate["scenarios"]["other"] = candidate["scenarios"].pop("tick_chain")
        check = compare_to_baseline(candidate, payload)
        assert not check.ok
        assert any("missing" in r for r in check.regressions)
        assert any("new scenario" in n for n in check.notes)

    def test_counter_drift_is_a_note_not_a_regression(self, payload):
        candidate = copy.deepcopy(payload)
        candidate["scenarios"]["tick_chain"]["counters"]["ticks"] = 501
        candidate["scenarios"]["tick_chain"]["events"] = 501
        check = compare_to_baseline(candidate, payload)
        assert check.ok
        assert any("ticks" in n for n in check.notes)
        assert any("functional change" in n for n in check.notes)

    def test_suite_mismatch_rejected(self, payload):
        other = copy.deepcopy(payload)
        other["suite"] = "other"
        with pytest.raises(ValueError, match="suite mismatch"):
            compare_to_baseline(other, payload)


class TestDeclaredSuites:
    def test_registry(self):
        assert "micro" in SUITES
        assert "telemetry" in SUITES
        assert get_suite("micro").scenarios
        with pytest.raises(KeyError, match="unknown bench suite"):
            get_suite("nope")

    def test_micro_scenario_names(self):
        names = [s.name for s in get_suite("micro").scenarios]
        assert names == [
            "event_kernel", "cancel_churn", "chained_timers", "burst_fanout",
            "nic_rx_path", "small_cluster",
        ]
