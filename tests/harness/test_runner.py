"""Runner determinism, process-pool parity, and the on-disk cache."""

import json
import os

import pytest

from repro.harness import (
    JOBS_ENV,
    ResultCache,
    RunSettings,
    SweepSpec,
    resolve_jobs,
    run_sweep,
)
from repro.harness.runner import Runner
from repro.sim.units import MS

TINY = RunSettings(warmup_ns=5 * MS, measure_ns=40 * MS, drain_ns=30 * MS, seed=2)

SWEEP = SweepSpec(
    apps=("apache",),
    policies=("perf",),
    loads=(24_000, 30_000, 36_000),
    settings=TINY,
)


def record_json(records):
    return json.dumps(
        [r.to_json_dict() for r in records], sort_keys=True
    )


class TestDeterminism:
    def test_pool_matches_serial_bit_for_bit(self):
        """The acceptance bar: parallel == serial, byte-identical JSON."""
        serial = run_sweep(SWEEP, jobs=1)
        pooled = run_sweep(SWEEP, jobs=2)
        assert len(serial) == 3
        assert record_json(serial) == record_json(pooled)
        # Order follows the spec list, not completion order.
        assert [r.target_rps for r in serial] == [24_000.0, 30_000.0, 36_000.0]

    def test_cache_second_run_identical(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        first = run_sweep(SWEEP, jobs=1, cache=cache)
        assert cache.stores == 3 and cache.hits == 0

        cache2 = ResultCache(str(tmp_path / "cache"))
        second = run_sweep(SWEEP, jobs=1, cache=cache2)
        assert cache2.hits == 3 and cache2.stores == 0
        assert all(r.from_cache for r in second)
        assert not any(r.from_cache for r in first)
        # from_cache is bookkeeping, not data: records compare equal and
        # serialize identically.
        assert second == first
        assert record_json(second) == record_json(first)


class TestRunnerMechanics:
    def test_progress_hook_sees_every_point(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        events = []
        runner = Runner(jobs=1, cache=cache, progress=events.append)
        specs = SWEEP.expand()
        runner.run(specs)
        assert [e.index for e in events] == [0, 1, 2]
        assert all(e.total == 3 and not e.cached for e in events)

        events.clear()
        Runner(jobs=1, cache=cache, progress=events.append).run(specs)
        assert all(e.cached for e in events)

    def test_map_preserves_item_order(self):
        runner = Runner(jobs=2)
        assert runner.map(abs, [-3, 1, -2]) == [3, 1, 2]

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        records = run_sweep(SWEEP.expand()[:1], jobs=1, cache=cache)
        path = cache.path_for(records[0].config_hash)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        fresh = ResultCache(str(tmp_path))
        assert fresh.get(records[0].config_hash) is None
        assert fresh.misses == 1


class TestSchemaInvalidation:
    def seed_stale_entries(self, cache, records, schema):
        """Rewrite cached entries as if written by an older schema."""
        for record in records:
            path = cache.path_for(record.config_hash)
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            data["schema"] = schema
            data.pop("attribution", None)  # v2 records predate the field
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(data, fh)

    def test_stale_schema_is_miss_with_one_counted_warning(
        self, tmp_path, caplog
    ):
        cache = ResultCache(str(tmp_path))
        records = run_sweep(SWEEP, jobs=1, cache=cache)
        self.seed_stale_entries(cache, records, schema=2)

        fresh = ResultCache(str(tmp_path))
        with caplog.at_level("WARNING", logger="repro.harness.cache"):
            for record in records:
                assert fresh.get(record.config_hash) is None
        assert fresh.misses == len(records)
        warnings = [r for r in caplog.records if "older record schemas"
                    in r.getMessage()]
        assert len(warnings) == 1  # once per cache, not once per entry
        assert f"{len(records)} entries" in warnings[0].getMessage()

    def test_warning_deduped_across_cache_instances(self, tmp_path, caplog):
        # Sweeps build a ResultCache per runner over the same directory;
        # the dedupe is per (cache dir, old version) per process, so a
        # second instance (or a re-run in the same process) stays silent.
        cache = ResultCache(str(tmp_path))
        records = run_sweep(SWEEP, jobs=1, cache=cache)
        self.seed_stale_entries(cache, records, schema=2)

        with caplog.at_level("WARNING", logger="repro.harness.cache"):
            for _ in range(3):
                fresh = ResultCache(str(tmp_path))
                for record in records:
                    assert fresh.get(record.config_hash) is None
        warnings = [r for r in caplog.records if "older record schemas"
                    in r.getMessage()]
        assert len(warnings) == 1
        assert "first seen: v2" in warnings[0].getMessage()

        # A different old version in the same directory is new information.
        self.seed_stale_entries(cache, records, schema=3)
        with caplog.at_level("WARNING", logger="repro.harness.cache"):
            again = ResultCache(str(tmp_path))
            assert again.get(records[0].config_hash) is None
        assert any("first seen: v3" in r.getMessage()
                   for r in caplog.records)

    def test_current_schema_does_not_warn(self, tmp_path, caplog):
        cache = ResultCache(str(tmp_path))
        records = run_sweep(SWEEP.expand()[:1], jobs=1, cache=cache)
        fresh = ResultCache(str(tmp_path))
        with caplog.at_level("WARNING", logger="repro.harness.cache"):
            assert fresh.get(records[0].config_hash) is not None
        assert not [r for r in caplog.records
                    if "older record schemas" in r.getMessage()]


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs() == 5

    def test_cpu_count_default(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "lots")
        with pytest.raises(ValueError):
            resolve_jobs()

    def test_floor_of_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1
